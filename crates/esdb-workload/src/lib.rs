//! Workload generation for ESDB-RS (paper §6.1).
//!
//! The paper's benchmark "generates random workloads based on the template
//! of our transaction logs", sampling tenant IDs from a Zipf distribution
//! with skewness factor θ ∈ {0, 0.5, 1, 1.5, 2} (θ=1 ≈ production).
//!
//! * [`trace::TraceGenerator`] — the write-workload stream: Zipf tenant
//!   sampling, auto-increment record IDs, *hotspot remap events* (Fig. 14
//!   changes "the mapping between the tenant IDs and Zipf sampling
//!   results" mid-run), and rate schedules with spikes (Fig. 19's festival
//!   kickoff).
//! * [`docs::DocGenerator`] — materializes full transaction-log documents
//!   (status/group/province/title + Zipf-sampled sub-attributes) for the
//!   real-engine experiments (Fig. 17/18).
//! * [`queries::QueryGenerator`] — the paper's query template: tenant +
//!   time-range plus 3–10 random column filters, `LIMIT 100` (§6.3).

pub mod docs;
pub mod queries;
pub mod trace;

pub use docs::DocGenerator;
pub use queries::QueryGenerator;
pub use trace::{RateSchedule, TraceGenerator, WriteEvent};
