//! Full transaction-log document generation for the real-engine
//! experiments (Fig. 17/18).
//!
//! Mirrors the paper's simulated rows: structured columns (status, group,
//! buyer, amount, province, full-text auction title) plus an "attributes"
//! column whose ~1500 sub-attribute names are sampled from Zipf(θ=1) —
//! "top 30 sub-attributes appear in about 50% of both write and query
//! workloads" (§6.3.3). Each row samples `attrs_per_doc` sub-attributes
//! (the paper uses 20).

use crate::trace::WriteEvent;
use esdb_common::zipf::ZipfSampler;
use esdb_doc::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PROVINCES: &[&str] = &[
    "zhejiang",
    "jiangsu",
    "guangdong",
    "shanghai",
    "beijing",
    "sichuan",
    "fujian",
    "shandong",
];

const TITLE_WORDS: &[&str] = &[
    "rust",
    "java",
    "python",
    "book",
    "hardcover",
    "phone",
    "case",
    "shirt",
    "cotton",
    "shoes",
    "running",
    "coffee",
    "beans",
    "organic",
    "laptop",
    "stand",
    "aluminum",
    "lamp",
    "desk",
    "usb",
    "cable",
    "fast",
    "charging",
    "notebook",
    "paper",
    "pen",
    "set",
    "gift",
    "box",
    "watch",
    "strap",
    "leather",
    "bag",
    "travel",
    "bottle",
    "thermal",
    "snack",
    "spicy",
];

/// Materializes documents from [`WriteEvent`]s.
#[derive(Debug)]
pub struct DocGenerator {
    rng: StdRng,
    attr_zipf: ZipfSampler,
    n_attrs: usize,
    attrs_per_doc: usize,
}

impl DocGenerator {
    /// Generator with `n_attrs` distinct sub-attribute names (paper: 1500),
    /// `attrs_per_doc` sampled per row (paper: 20), Zipf(θ=1).
    pub fn new(n_attrs: usize, attrs_per_doc: usize, seed: u64) -> Self {
        DocGenerator {
            rng: StdRng::seed_from_u64(seed),
            attr_zipf: ZipfSampler::new(n_attrs, 1.0),
            n_attrs,
            attrs_per_doc,
        }
    }

    /// Number of distinct sub-attribute names.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The canonical name of sub-attribute rank `r` (1-based).
    pub fn attr_name(rank: usize) -> String {
        format!("attr_{rank:04}")
    }

    /// Samples a sub-attribute name from the Zipf popularity distribution
    /// (used for both writes and query filters, matching §6.3.3).
    pub fn sample_attr_name(&mut self) -> String {
        Self::attr_name(self.attr_zipf.sample(&mut self.rng))
    }

    /// Builds the full document for a write event.
    pub fn materialize(&mut self, ev: &WriteEvent) -> Document {
        let n_title = self.rng.random_range(3..8);
        let mut title = String::new();
        for i in 0..n_title {
            if i > 0 {
                title.push(' ');
            }
            title.push_str(TITLE_WORDS[self.rng.random_range(0..TITLE_WORDS.len())]);
        }
        let mut b = Document::builder(ev.tenant, ev.record, ev.created_at)
            .field("status", self.rng.random_range(0..3) as i64)
            .field("group", self.rng.random_range(0..1_000) as i64)
            .field("buyer_id", self.rng.random_range(0..1_000_000) as i64)
            .field(
                "amount",
                esdb_doc::FieldValue::Float((self.rng.random_range(100..1_000_000) as f64) / 100.0),
            )
            .field(
                "province",
                PROVINCES[self.rng.random_range(0..PROVINCES.len())],
            )
            .field("auction_title", title);
        for _ in 0..self.attrs_per_doc {
            let name = self.sample_attr_name();
            let value = format!("v{}", self.rng.random_range(0..16));
            b = b.attr(name, value);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};

    fn ev(r: u64) -> WriteEvent {
        WriteEvent {
            tenant: TenantId(7),
            record: RecordId(r),
            created_at: 1_000 + r,
            bytes: 512,
        }
    }

    #[test]
    fn documents_follow_template() {
        let mut g = DocGenerator::new(1_500, 20, 1);
        let d = g.materialize(&ev(1));
        assert_eq!(d.tenant_id, TenantId(7));
        assert!(d.get("status").is_some());
        assert!(d.get("auction_title").is_some());
        assert_eq!(d.attrs().len(), 20);
    }

    #[test]
    fn attr_popularity_is_skewed() {
        let mut g = DocGenerator::new(1_500, 1, 2);
        let mut top30 = 0usize;
        const N: usize = 20_000;
        for i in 0..N {
            let d = g.materialize(&ev(i as u64));
            let name = &d.attrs()[0].0;
            let rank: usize = name.trim_start_matches("attr_").parse().unwrap();
            if rank <= 30 {
                top30 += 1;
            }
        }
        let share = top30 as f64 / N as f64;
        // Paper: top 30 of 1500 cover ~50% under Zipf(1).
        assert!(share > 0.4 && share < 0.62, "top-30 share {share}");
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = DocGenerator::new(100, 5, 42);
        let mut b = DocGenerator::new(100, 5, 42);
        assert_eq!(a.materialize(&ev(1)), b.materialize(&ev(1)));
    }
}
