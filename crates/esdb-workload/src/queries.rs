//! Query-workload generation (paper §6.3).
//!
//! The paper's template: "retrieving transaction logs of a tenant in a
//! time period", with "multiple filters appended after the predicates of
//! tenant ID and time range. (The number of involved columns is randomly
//! chosen from 3 to 10.)", plus `LIMIT 100`. Fig. 18 appends one Zipf-
//! sampled sub-attribute filter.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{TenantId, TimestampMs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates SQL query strings following the paper's template.
#[derive(Debug)]
pub struct QueryGenerator {
    rng: StdRng,
    attr_zipf: ZipfSampler,
    /// Append a sub-attribute filter (Fig. 18 experiment)?
    pub with_attr_filter: bool,
}

impl QueryGenerator {
    /// Generator with `n_attrs` sub-attribute names for the optional
    /// attribute filter.
    pub fn new(n_attrs: usize, seed: u64) -> Self {
        QueryGenerator {
            rng: StdRng::seed_from_u64(seed),
            attr_zipf: ZipfSampler::new(n_attrs.max(1), 1.0),
            with_attr_filter: false,
        }
    }

    /// The paper's base template for a tenant and time window.
    pub fn base_template(tenant: TenantId, from: TimestampMs, to: TimestampMs) -> String {
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {} \
             AND created_time BETWEEN {from} AND {to}",
            tenant.raw()
        )
    }

    /// One random query for `tenant` over `[from, to]`: base template plus
    /// extra filters on *distinct* columns, so total involved columns land
    /// in the paper's 3..=10 range without self-contradictory predicates.
    pub fn generate(&mut self, tenant: TenantId, from: TimestampMs, to: TimestampMs) -> String {
        let mut sql = Self::base_template(tenant, from, to);
        // Candidate filters, one per column.
        let mut candidates: Vec<String> = vec![
            format!("status = {}", self.rng.random_range(0..3)),
            if self.rng.random_range(0..2) == 0 {
                format!("group = {}", self.rng.random_range(0..1_000))
            } else {
                format!(
                    "group IN ({}, {}, {})",
                    self.rng.random_range(0..1_000),
                    self.rng.random_range(0..1_000),
                    self.rng.random_range(0..1_000)
                )
            },
            format!(
                "province = '{}'",
                ["zhejiang", "jiangsu", "guangdong", "shanghai"][self.rng.random_range(0..4usize)]
            ),
            // Selective tail of the buyer-id space (5–30%).
            format!("buyer_id >= {}", self.rng.random_range(700_000..950_000)),
            // Full-text.
            format!(
                "MATCH(auction_title, '{}')",
                ["rust", "book", "phone", "coffee", "laptop"][self.rng.random_range(0..5usize)]
            ),
        ];
        // Shuffle and take 1..=6 distinct extra columns.
        for i in (1..candidates.len()).rev() {
            let j = self.rng.random_range(0..=i);
            candidates.swap(i, j);
        }
        let extra = self.rng.random_range(1..=candidates.len());
        for filter in candidates.drain(..extra) {
            sql.push_str(" AND ");
            sql.push_str(&filter);
        }
        if self.with_attr_filter {
            let rank = self.attr_zipf.sample(&mut self.rng);
            sql.push_str(&format!(
                " AND ATTR('{}') = 'v{}'",
                crate::docs::DocGenerator::attr_name(rank),
                self.rng.random_range(0..16)
            ));
        }
        sql.push_str(" LIMIT 100");
        sql
    }

    /// The Fig. 18 probe: the bare template plus one Zipf-sampled
    /// sub-attribute filter (no other column filters) — without an attr
    /// index, the engine must post-filter the tenant's whole time window.
    pub fn generate_attr_probe(
        &mut self,
        tenant: TenantId,
        from: TimestampMs,
        to: TimestampMs,
    ) -> String {
        let rank = self.attr_zipf.sample(&mut self.rng);
        format!(
            "{} AND ATTR('{}') = 'v{}' LIMIT 100",
            Self::base_template(tenant, from, to),
            crate::docs::DocGenerator::attr_name(rank),
            self.rng.random_range(0..16)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_queries_parse() {
        let mut g = QueryGenerator::new(1_500, 1);
        for i in 0..50 {
            let sql = g.generate(TenantId(i), 1_000, 2_000);
            assert!(sql.contains("LIMIT 100"));
            assert!(sql.contains(&format!("tenant_id = {i}")));
        }
    }

    #[test]
    fn attr_filter_toggles() {
        let mut g = QueryGenerator::new(1_500, 2);
        g.with_attr_filter = true;
        let sql = g.generate(TenantId(1), 0, 10);
        assert!(sql.contains("ATTR('attr_"), "{sql}");
        g.with_attr_filter = false;
        let sql = g.generate(TenantId(1), 0, 10);
        assert!(!sql.contains("ATTR("), "{sql}");
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = QueryGenerator::new(100, 7);
        let mut b = QueryGenerator::new(100, 7);
        assert_eq!(
            a.generate(TenantId(1), 0, 10),
            b.generate(TenantId(1), 0, 10)
        );
    }
}
