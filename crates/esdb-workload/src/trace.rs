//! Write-workload trace generation.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId, TimestampMs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated write: the routing triple the cluster simulator routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEvent {
    /// Tenant (`k1`).
    pub tenant: TenantId,
    /// Record (`k2`) — auto-increment unique.
    pub record: RecordId,
    /// Creation time (`tc`).
    pub created_at: TimestampMs,
    /// Approximate row bytes (for storage accounting).
    pub bytes: u32,
}

/// A piecewise-constant rate schedule (ops/sec over time), used for the
/// festival-kickoff spike of Fig. 19.
#[derive(Debug, Clone)]
pub struct RateSchedule {
    /// `(from_ms, ops_per_sec)` steps, sorted by time; rate before the
    /// first step is the first step's rate.
    steps: Vec<(TimestampMs, f64)>,
}

impl RateSchedule {
    /// A constant rate.
    pub fn constant(ops_per_sec: f64) -> Self {
        RateSchedule {
            steps: vec![(0, ops_per_sec)],
        }
    }

    /// Builds from explicit steps (must be non-empty, sorted by time).
    pub fn steps(steps: Vec<(TimestampMs, f64)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "steps must be sorted by time"
        );
        RateSchedule { steps }
    }

    /// The rate in effect at `t`.
    pub fn rate_at(&self, t: TimestampMs) -> f64 {
        let idx = self.steps.partition_point(|&(from, _)| from <= t);
        if idx == 0 {
            self.steps[0].1
        } else {
            self.steps[idx - 1].1
        }
    }
}

/// Generates the write stream: Zipf-skewed tenants, scheduled rates,
/// hotspot remaps.
#[derive(Debug)]
pub struct TraceGenerator {
    zipf: ZipfSampler,
    rng: StdRng,
    rate: RateSchedule,
    next_record: u64,
    /// rank → tenant id mapping; remapping this moves the hotspots
    /// (Fig. 14).
    rank_to_tenant: Vec<u64>,
    /// Fractional ops carried between ticks so long-run rate is exact.
    carry: f64,
    /// Mean row bytes.
    row_bytes: u32,
    /// Added to every emitted tenant id (lets an overlay generator emit
    /// tenants disjoint from a base generator's).
    tenant_offset: u64,
}

impl TraceGenerator {
    /// A generator over `n_tenants` tenants with skew `theta`, seeded
    /// deterministically.
    pub fn new(n_tenants: usize, theta: f64, rate: RateSchedule, seed: u64) -> Self {
        let rank_to_tenant: Vec<u64> = (0..n_tenants as u64).collect();
        TraceGenerator {
            zipf: ZipfSampler::new(n_tenants, theta),
            rng: StdRng::seed_from_u64(seed),
            rate,
            next_record: 0,
            rank_to_tenant,
            carry: 0.0,
            row_bytes: 512,
            tenant_offset: 0,
        }
    }

    /// Offsets the generator's id spaces so two generators can coexist
    /// without colliding: emitted tenants become `tenant + tenant_offset`
    /// and record ids continue from `first_record`. Used to overlay a
    /// "hotspot group" stream on top of a base stream (Fig. 14).
    pub fn with_offsets(mut self, tenant_offset: u64, first_record: u64) -> Self {
        self.tenant_offset = tenant_offset;
        self.next_record = first_record;
        self
    }

    /// Number of tenants.
    pub fn n_tenants(&self) -> usize {
        self.rank_to_tenant.len()
    }

    /// The tenant currently mapped to Zipf rank `rank` (1-based).
    pub fn tenant_of_rank(&self, rank: usize) -> TenantId {
        TenantId(self.rank_to_tenant[rank - 1] + self.tenant_offset)
    }

    /// Remaps ranks to tenants with a fresh shuffle — "changing the mapping
    /// between the tenant IDs and Zipf sampling results" (Fig. 14): new
    /// tenants become the hot ones.
    pub fn remap_hotspots(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..self.rank_to_tenant.len()).rev() {
            let j = rng.random_range(0..=i);
            self.rank_to_tenant.swap(i, j);
        }
    }

    /// Generates the writes for the tick `[now, now + dt_ms)`, with
    /// creation times uniformly spread over the tick.
    pub fn tick(&mut self, now: TimestampMs, dt_ms: u64) -> Vec<WriteEvent> {
        let rate = self.rate.rate_at(now);
        let exact = rate * dt_ms as f64 / 1_000.0 + self.carry;
        let count = exact.floor() as usize;
        self.carry = exact - count as f64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = self.zipf.sample(&mut self.rng);
            let tenant = self.rank_to_tenant[rank - 1] + self.tenant_offset;
            let record = self.next_record;
            self.next_record += 1;
            let offset = self.rng.random_range(0..dt_ms.max(1));
            out.push(WriteEvent {
                tenant: TenantId(tenant),
                record: RecordId(record),
                created_at: now + offset,
                bytes: self.row_bytes,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_schedule_steps() {
        let s = RateSchedule::steps(vec![(0, 100.0), (1_000, 500.0), (2_000, 50.0)]);
        assert_eq!(s.rate_at(0), 100.0);
        assert_eq!(s.rate_at(999), 100.0);
        assert_eq!(s.rate_at(1_000), 500.0);
        assert_eq!(s.rate_at(5_000), 50.0);
    }

    #[test]
    fn tick_produces_requested_rate() {
        let mut g = TraceGenerator::new(1_000, 1.0, RateSchedule::constant(10_000.0), 1);
        let mut total = 0usize;
        for t in 0..10u64 {
            total += g.tick(t * 100, 100).len();
        }
        // 10 ticks of 100 ms at 10k/s = 10_000 ops (exact thanks to carry).
        assert_eq!(total, 10_000);
    }

    #[test]
    fn record_ids_unique_and_increasing() {
        let mut g = TraceGenerator::new(100, 1.0, RateSchedule::constant(1_000.0), 2);
        let a = g.tick(0, 1_000);
        let b = g.tick(1_000, 1_000);
        let last_a = a.last().unwrap().record.raw();
        assert!(b.first().unwrap().record.raw() > last_a);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|e| e.record.raw()).collect();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn created_times_inside_tick() {
        let mut g = TraceGenerator::new(100, 1.0, RateSchedule::constant(5_000.0), 3);
        for e in g.tick(2_000, 500) {
            assert!((2_000..2_500).contains(&e.created_at));
        }
    }

    #[test]
    fn zipf_skew_shows_in_trace() {
        let mut g = TraceGenerator::new(10_000, 1.0, RateSchedule::constant(100_000.0), 4);
        let events = g.tick(0, 1_000);
        let mut counts = std::collections::HashMap::new();
        for e in &events {
            *counts.entry(e.tenant).or_insert(0u64) += 1;
        }
        let top = g.tenant_of_rank(1);
        let top_count = counts[&top] as f64 / events.len() as f64;
        // Zipf(1) over 10k: rank-1 mass ≈ 1/H(10000) ≈ 0.102.
        assert!(
            top_count > 0.07 && top_count < 0.14,
            "top share {top_count}"
        );
    }

    #[test]
    fn remap_moves_hotspots() {
        let mut g = TraceGenerator::new(10_000, 1.0, RateSchedule::constant(50_000.0), 5);
        let before = g.tenant_of_rank(1);
        g.remap_hotspots(99);
        let after = g.tenant_of_rank(1);
        assert_ne!(before, after, "rank-1 tenant should change (10k tenants)");
        // Stream still works and favors the new hotspot.
        let events = g.tick(0, 1_000);
        let hot = events.iter().filter(|e| e.tenant == after).count();
        let old = events.iter().filter(|e| e.tenant == before).count();
        assert!(hot > old, "new hotspot {hot} vs old {old}");
    }

    #[test]
    fn offsets_shift_id_spaces() {
        let mut g = TraceGenerator::new(10, 0.0, RateSchedule::constant(1_000.0), 1)
            .with_offsets(1_000_000, 5_000);
        let events = g.tick(0, 100);
        assert!(!events.is_empty());
        for e in &events {
            assert!(e.tenant.raw() >= 1_000_000);
            assert!(e.record.raw() >= 5_000);
        }
        assert!(g.tenant_of_rank(1).raw() >= 1_000_000);
    }

    #[test]
    fn theta_zero_is_flat() {
        let mut g = TraceGenerator::new(100, 0.0, RateSchedule::constant(100_000.0), 6);
        let events = g.tick(0, 1_000);
        let mut counts = std::collections::HashMap::new();
        for e in &events {
            *counts.entry(e.tenant).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(
            max / min < 2.0,
            "uniform workload should be flat: {max}/{min}"
        );
    }
}
