//! Migration segment shipping: physical hand-off of one tenant's rows.
//!
//! When a dynamic-hashing rule widens a hot tenant's shard span, rows
//! written *before* the rule still sit at their historical placement.
//! ESDB's answer (paper §5.2 idiom, reused here for migration instead of
//! replication) is to ship **fully built segments**, not logical writes:
//! the destination adopts an already-indexed artifact and pays zero
//! indexing CPU. This module is the pure build step of that hand-off —
//! given pinned source snapshots it computes, per destination shard, one
//! synthetic segment holding exactly the rows whose placement changes
//! under the new span, plus the per-source row lists the coordinator must
//! tombstone at cutover.
//!
//! The function is deliberately side-effect free (no engine access, no
//! clocks): the coordinator pins snapshots, calls [`build_handoff`], and
//! decides separately when the results become visible. That keeps the
//! expensive export/index work outside every engine lock and makes the
//! hand-off trivially abortable — dropping the plan undoes it.

use esdb_common::fastmap::{fast_map, fast_set, FastMap, FastSet};
use esdb_common::{TenantId, TimestampMs};
use esdb_doc::{CollectionSchema, Document};
use esdb_index::builder::build_segment;
use esdb_index::{Analyzer, Segment};
use esdb_storage::ShardSnapshot;
use std::sync::Arc;

/// One destination shard's payload: a fully built segment ready for
/// `ShardEngine::adopt_segment`, plus accounting for the journal.
pub struct Shipment {
    /// Destination shard index.
    pub dest: u32,
    /// Synthetic segment holding every migrating row bound for `dest`.
    /// Built with id 0; the adopting engine re-identifies it.
    pub segment: Segment,
    /// Rows in the segment.
    pub rows: u64,
    /// Approximate payload bytes (document heap size).
    pub bytes: u64,
}

/// Rows exported off one source shard, identified by their routing
/// triple so the coordinator can issue tombstoning deletes at cutover.
pub struct ExportedRows {
    /// Source shard index the rows were read from.
    pub source: u32,
    /// `(record_id, created_at)` of every row that left this shard.
    pub rows: Vec<(u64, TimestampMs)>,
}

/// The full hand-off computed from a set of pinned source snapshots.
pub struct HandoffPlan {
    /// One shipment per destination shard that gains rows (sorted by dest).
    pub shipments: Vec<Shipment>,
    /// Per-source row lists to tombstone once destinations are durable.
    pub exported: Vec<ExportedRows>,
    /// Total rows changing placement.
    pub rows_total: u64,
    /// Total approximate bytes shipped.
    pub bytes_total: u64,
}

/// Builds the hand-off for `tenant` under a new placement function.
///
/// `sources` are `(shard_index, pinned snapshot)` pairs covering the
/// tenant's *old* span. A row migrates iff it belongs to `tenant`, was
/// created at or before `cutoff` (rows after the rule timestamp already
/// route by the new span and never need to move), and `placement`
/// assigns it a shard different from the one it currently lives on.
/// Rows are deduplicated by record id with first-seen-wins, mirroring
/// snapshot lookup order, so a row can never ship twice.
pub fn build_handoff(
    sources: &[(u32, Arc<ShardSnapshot>)],
    schema: &CollectionSchema,
    indexed_attrs: &FastSet<String>,
    tenant: TenantId,
    cutoff: TimestampMs,
    placement: &dyn Fn(&Document) -> u32,
) -> HandoffPlan {
    let analyzer = Analyzer::default();
    let mut by_dest: FastMap<u32, Vec<Document>> = fast_map();
    let mut exported: Vec<ExportedRows> = Vec::new();
    let mut seen: FastSet<u64> = fast_set();
    let mut rows_total = 0u64;
    let mut bytes_total = 0u64;

    for (source, snap) in sources {
        let mut moved: Vec<(u64, TimestampMs)> = Vec::new();
        for seg in snap.segments() {
            for (_, doc) in seg.live_docs() {
                if doc.tenant_id != tenant || doc.created_at > cutoff {
                    continue;
                }
                let rid = doc.record_id.raw();
                if !seen.insert(rid) {
                    continue;
                }
                let dest = placement(doc);
                if dest == *source {
                    continue;
                }
                rows_total += 1;
                bytes_total += doc.approx_size() as u64;
                moved.push((rid, doc.created_at));
                by_dest.entry(dest).or_default().push(doc.clone());
            }
        }
        if !moved.is_empty() {
            exported.push(ExportedRows {
                source: *source,
                rows: moved,
            });
        }
    }

    let mut shipments: Vec<Shipment> = by_dest
        .into_iter()
        .map(|(dest, docs)| {
            let rows = docs.len() as u64;
            let bytes: u64 = docs.iter().map(|d| d.approx_size() as u64).sum();
            let segment = build_segment(0, docs, schema, &analyzer, indexed_attrs, 1 << 20);
            Shipment {
                dest,
                segment,
                rows,
                bytes,
            }
        })
        .collect();
    shipments.sort_by_key(|s| s.dest);

    HandoffPlan {
        shipments,
        exported,
        rows_total,
        bytes_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::RecordId;
    use esdb_storage::{ShardConfig, ShardEngine};

    fn doc(tenant: u64, record: u64, at: TimestampMs) -> Document {
        Document::builder(TenantId(tenant), RecordId(record), at)
            .field("auction_title", format!("r{record}"))
            .build()
    }

    fn snapshot_of(name: &str, docs: Vec<Document>) -> Arc<ShardSnapshot> {
        let dir = std::env::temp_dir().join(format!("esdb-ship-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut eng =
            ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(dir)).unwrap();
        for d in docs {
            eng.apply(&esdb_doc::WriteOp::insert(d)).unwrap();
        }
        eng.refresh();
        eng.pin_snapshot()
    }

    #[test]
    fn handoff_filters_by_tenant_cutoff_and_placement() {
        let hot = TenantId(7);
        let snap = snapshot_of(
            "filter",
            vec![
                doc(7, 1, 100), // moves → dest 3
                doc(7, 2, 100), // stays (placement == source)
                doc(7, 3, 999), // after cutoff: never ships
                doc(8, 4, 100), // other tenant: never ships
            ],
        );
        let schema = CollectionSchema::transaction_logs();
        let plan = build_handoff(&[(0, snap)], &schema, &fast_set(), hot, 500, &|d| {
            if d.record_id.raw() == 1 {
                3
            } else {
                0
            }
        });
        assert_eq!(plan.rows_total, 1);
        assert_eq!(plan.shipments.len(), 1);
        assert_eq!(plan.shipments[0].dest, 3);
        assert_eq!(plan.shipments[0].rows, 1);
        assert_eq!(plan.shipments[0].segment.live_count(), 1);
        assert_eq!(plan.exported.len(), 1);
        assert_eq!(plan.exported[0].source, 0);
        assert_eq!(plan.exported[0].rows, vec![(1, 100)]);
        assert!(plan.bytes_total > 0);
    }

    #[test]
    fn handoff_dedups_rows_across_sources() {
        let hot = TenantId(7);
        let a = snapshot_of("dedup-a", vec![doc(7, 1, 100)]);
        let b = snapshot_of("dedup-b", vec![doc(7, 1, 100)]);
        let schema = CollectionSchema::transaction_logs();
        let plan = build_handoff(&[(0, a), (1, b)], &schema, &fast_set(), hot, 500, &|_| 3);
        assert_eq!(plan.rows_total, 1);
        assert_eq!(plan.exported.len(), 1);
        assert_eq!(plan.exported[0].source, 0);
    }
}
