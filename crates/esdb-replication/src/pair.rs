//! A primary/replica pair under logical or physical replication.

use crate::diff::{segment_diff, SegmentDiff, SnapshotInfo};
use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{Clock, Result, SharedClock, TimestampMs};
use esdb_doc::{CollectionSchema, WriteOp};
use esdb_index::{Segment, SegmentId};
use esdb_storage::{ShardConfig, ShardEngine, ShardSnapshot};
use esdb_telemetry::{EventKind, Journal, Labels, NO_PARENT};
use std::sync::Arc;

/// Which replication scheme the pair runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Elasticsearch default: the replica re-executes every write.
    Logical,
    /// ESDB §5.2: translog sync + segment shipping.
    Physical {
        /// Whether merged segments are pre-replicated on their own path.
        pre_replicate_merges: bool,
    },
}

/// Accounting used by the Fig. 15 harness and the ablation benches.
#[derive(Debug, Clone, Default)]
pub struct ReplicationMetrics {
    /// Index-executions performed by the primary.
    pub primary_index_ops: u64,
    /// Index-executions performed by the replica (≈0 under physical).
    pub replica_index_ops: u64,
    /// Translog entries forwarded to the replica.
    pub translog_entries_synced: u64,
    /// Bytes of segment data shipped to the replica.
    pub segment_bytes_shipped: u64,
    /// Segments shipped via the quick-incremental path.
    pub segments_shipped_incremental: u64,
    /// Segments shipped via the pre-replication path.
    pub segments_shipped_prereplicated: u64,
    /// Writes that failed on the primary (never applied anywhere).
    pub primary_write_errors: u64,
    /// Writes that applied on the primary but failed to reach the
    /// replica — the divergence a resync must repair.
    pub replica_write_errors: u64,
    /// Per-segment visibility delay (replica visible − primary visible), ms.
    pub visibility_delays_ms: Vec<u64>,
}

impl ReplicationMetrics {
    /// Mean visibility delay, ms.
    pub fn mean_visibility_delay_ms(&self) -> f64 {
        if self.visibility_delays_ms.is_empty() {
            0.0
        } else {
            self.visibility_delays_ms.iter().sum::<u64>() as f64
                / self.visibility_delays_ms.len() as f64
        }
    }

    /// Total index executions across primary and replica — the CPU proxy
    /// for Fig. 15(b).
    pub fn total_index_ops(&self) -> u64 {
        self.primary_index_ops + self.replica_index_ops
    }
}

/// A primary with one replica (the paper's deployment: "each shard has one
/// replica" §3).
pub struct ReplicatedPair {
    mode: ReplicationMode,
    clock: SharedClock,
    primary: ShardEngine,
    /// Logical mode: a full engine that re-executes writes.
    replica_engine: Option<ShardEngine>,
    /// Physical mode: installed segment copies, keyed by id. Shipping is
    /// an `Arc` share of the primary's sealed segment — the in-process
    /// stand-in for copying immutable segment files.
    replica_segments: FastMap<SegmentId, Arc<Segment>>,
    /// Physical mode: the replica's translog mirror (for promotion).
    replica_translog: Vec<WriteOp>,
    /// When each segment became visible on the primary.
    visible_on_primary: FastMap<SegmentId, TimestampMs>,
    /// Segments currently locked on the primary for an in-flight
    /// replication (Fig. 9 steps 3/6).
    locked: Vec<SegmentId>,
    next_snapshot_id: u64,
    metrics: ReplicationMetrics,
    /// Flight-recorder journal plus the `(shard, primary node)` identity
    /// this pair's promotion events report; `None` journals nothing.
    journal: Option<(Arc<Journal>, u32, u32)>,
}

impl ReplicatedPair {
    /// Opens a pair rooted at `dir` (primary in `dir/primary`, logical
    /// replica in `dir/replica`).
    pub fn open(
        schema: CollectionSchema,
        dir: impl Into<std::path::PathBuf>,
        mode: ReplicationMode,
        clock: SharedClock,
    ) -> Result<Self> {
        let dir = dir.into();
        let primary = ShardEngine::open(schema.clone(), ShardConfig::new(dir.join("primary")))?;
        let replica_engine = match mode {
            ReplicationMode::Logical => Some(ShardEngine::open(
                schema,
                ShardConfig::new(dir.join("replica")),
            )?),
            ReplicationMode::Physical { .. } => None,
        };
        Ok(ReplicatedPair {
            mode,
            clock,
            primary,
            replica_engine,
            replica_segments: fast_map(),
            replica_translog: Vec::new(),
            visible_on_primary: fast_map(),
            locked: Vec::new(),
            next_snapshot_id: 1,
            metrics: ReplicationMetrics::default(),
            journal: None,
        })
    }

    /// Attaches the flight-recorder journal: replica promotions emit a
    /// causally-chained `promotion_started` → `translog_replayed` →
    /// `promotion_completed` sequence labeled with this pair's `shard`
    /// and the `primary_node` a promotion takes over from.
    pub fn with_journal(mut self, journal: Arc<Journal>, shard: u32, primary_node: u32) -> Self {
        self.journal = Some((journal, shard, primary_node));
        self
    }

    /// The replication mode.
    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    /// Applies a write on the primary and forwards per the mode. The
    /// forward is the *real-time synchronization* of Fig. 9 — it happens on
    /// the write path, not at refresh.
    pub fn write(&mut self, op: &WriteOp) -> Result<()> {
        if let Err(e) = self.primary.apply(op) {
            // Counted, then surfaced: a failed primary write was never
            // acknowledged and reached neither copy.
            self.metrics.primary_write_errors += 1;
            return Err(e);
        }
        self.metrics.primary_index_ops += 1;
        match self.mode {
            ReplicationMode::Logical => {
                // Replica re-executes: translog + full indexing.
                if let Err(e) = self
                    .replica_engine
                    .as_mut()
                    .expect("logical mode has a replica engine")
                    .apply(op)
                {
                    // The primary holds the op but the replica diverged —
                    // counted so a resync can be triggered, then surfaced.
                    self.metrics.replica_write_errors += 1;
                    return Err(e);
                }
                self.metrics.replica_index_ops += 1;
                self.metrics.translog_entries_synced += 1;
            }
            ReplicationMode::Physical { .. } => {
                // Translog-only: appended, never executed.
                self.replica_translog.push(op.clone());
                self.metrics.translog_entries_synced += 1;
            }
        }
        Ok(())
    }

    /// Refreshes the primary (and, under logical replication, the replica),
    /// then runs quick incremental replication under physical mode.
    pub fn refresh(&mut self) -> Result<Option<SegmentId>> {
        let new_seg = self.primary.refresh();
        if let Some(id) = new_seg {
            self.visible_on_primary.insert(id, self.clock.now());
        }
        match self.mode {
            ReplicationMode::Logical => {
                self.replica_engine
                    .as_mut()
                    .expect("logical mode has a replica engine")
                    .refresh();
            }
            ReplicationMode::Physical { .. } => {
                self.replicate_incremental();
            }
        }
        Ok(new_seg)
    }

    /// Quick incremental replication (Fig. 9 steps 1–6): snapshot, lock,
    /// diff, ship, unlock. Always uses the *latest* snapshot, so a fast
    /// refresh cadence cannot wedge replication behind stale state.
    fn replicate_incremental(&mut self) -> SegmentDiff {
        let snapshot = SnapshotInfo {
            snapshot_id: self.next_snapshot_id,
            segments: self
                .primary
                .segments()
                .iter()
                .map(|s| (s.id, s.size_bytes()))
                .collect(),
        };
        self.next_snapshot_id += 1;

        // Step 3: lock the snapshot's segments on the primary.
        self.locked = snapshot.ids().collect();

        let local: Vec<SegmentId> = self.replica_segments.keys().copied().collect();
        let diff = segment_diff(&snapshot, &local);
        for &id in &diff.to_fetch {
            if let Some(seg) = self.primary.segments().iter().find(|s| s.id == id) {
                self.metrics.segment_bytes_shipped += seg.size_bytes() as u64;
                self.metrics.segments_shipped_incremental += 1;
                self.install_on_replica(Arc::clone(seg));
            }
        }
        for id in &diff.to_delete {
            self.replica_segments.remove(id);
        }

        // Step 6: replication finished — unlock.
        self.locked.clear();
        diff
    }

    fn install_on_replica(&mut self, seg: Arc<Segment>) {
        let now = self.clock.now();
        if let Some(&vis) = self.visible_on_primary.get(&seg.id) {
            self.metrics
                .visibility_delays_ms
                .push(now.saturating_sub(vis));
        }
        self.replica_segments.insert(seg.id, seg);
    }

    /// Runs the merge policy on the primary; under physical replication
    /// with pre-replication enabled, the merged segment ships immediately
    /// (Fig. 9 "Pre-replication of Merged Segments").
    pub fn maybe_merge(&mut self) -> Option<SegmentId> {
        let merged = self.primary.maybe_merge()?;
        self.visible_on_primary.insert(merged, self.clock.now());
        match self.mode {
            ReplicationMode::Logical => {
                self.replica_engine
                    .as_mut()
                    .expect("logical mode has a replica engine")
                    .maybe_merge();
            }
            ReplicationMode::Physical {
                pre_replicate_merges,
            } => {
                if pre_replicate_merges {
                    if let Some(seg) = self.primary.segments().iter().find(|s| s.id == merged) {
                        self.metrics.segment_bytes_shipped += seg.size_bytes() as u64;
                        self.metrics.segments_shipped_prereplicated += 1;
                        let seg = Arc::clone(seg);
                        self.install_on_replica(seg);
                    }
                }
            }
        }
        Some(merged)
    }

    /// The primary engine.
    pub fn primary(&self) -> &ShardEngine {
        &self.primary
    }

    /// Mutable access to the primary engine.
    pub fn primary_mut(&mut self) -> &mut ShardEngine {
        &mut self.primary
    }

    /// Pins the primary's published point-in-time snapshot — the normal
    /// read path. Lock-free: the view stays valid and answers
    /// identically regardless of concurrent writes, refreshes, or
    /// merges on the pair.
    pub fn read_snapshot(&self) -> Arc<ShardSnapshot> {
        self.primary.pin_snapshot()
    }

    /// Pins a point-in-time view served by the *survivor* when the
    /// primary is unavailable (degraded reads, §5.2): under logical
    /// replication this is the replica engine's published snapshot;
    /// under physical replication the installed segment copies are
    /// frozen into a snapshot directly. Either way the returned view is
    /// immutable — queries against it run lock-free and keep answering
    /// identically even as replication later installs or retires
    /// segments.
    pub fn degraded_read_snapshot(&self) -> Arc<ShardSnapshot> {
        match self.mode {
            ReplicationMode::Logical => self
                .replica_engine
                .as_ref()
                .expect("logical mode has a replica engine")
                .pin_snapshot(),
            ReplicationMode::Physical { .. } => {
                let mut segs: Vec<Arc<Segment>> =
                    self.replica_segments.values().map(Arc::clone).collect();
                segs.sort_unstable_by_key(|s| s.id);
                // Snapshot ids advance with every replication pass, so
                // successive degraded views carry monotone generations.
                Arc::new(ShardSnapshot::from_segments(segs, self.next_snapshot_id))
            }
        }
    }

    /// Live docs visible on the replica.
    pub fn replica_live_docs(&self) -> usize {
        match self.mode {
            ReplicationMode::Logical => {
                self.replica_engine
                    .as_ref()
                    .expect("logical mode has a replica engine")
                    .stats()
                    .live_docs
            }
            ReplicationMode::Physical { .. } => {
                self.replica_segments.values().map(|s| s.live_count()).sum()
            }
        }
    }

    /// Segment ids installed on the replica (physical mode).
    pub fn replica_segment_ids(&self) -> Vec<SegmentId> {
        let mut v: Vec<SegmentId> = self.replica_segments.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether an incremental replication currently holds segment locks.
    pub fn has_locked_segments(&self) -> bool {
        !self.locked.is_empty()
    }

    /// Replication metrics.
    pub fn metrics(&self) -> &ReplicationMetrics {
        &self.metrics
    }

    /// Promotes the physical replica: replays its translog mirror into a
    /// fresh engine (what a primary/replica switch does with the synced
    /// translog, §5.2 "all replicas are able to recover the data locally").
    pub fn promote_replica(&self, dir: impl Into<std::path::PathBuf>) -> Result<ShardEngine> {
        let t0 = self.clock.now();
        let ops = self.replica_translog.len() as u64;
        let start_seq = self.journal.as_ref().map(|(j, shard, node)| {
            j.emit(
                EventKind::PromotionStarted {
                    shard: *shard,
                    crashed_node: *node,
                },
                Labels::shard(*shard),
                NO_PARENT,
            )
        });
        let mut engine =
            ShardEngine::open(self.primary.schema().clone(), ShardConfig::new(dir.into()))?;
        for op in &self.replica_translog {
            engine.apply(op)?;
        }
        engine.refresh();
        if let (Some((j, shard, _)), Some(start_seq)) = (&self.journal, start_seq) {
            let replay_seq = j.emit(
                EventKind::TranslogReplayed { shard: *shard, ops },
                Labels::shard(*shard),
                start_seq,
            );
            j.emit(
                EventKind::PromotionCompleted {
                    shard: *shard,
                    replayed_ops: ops,
                    latency_ms: self.clock.now().saturating_sub(t0),
                },
                Labels::shard(*shard),
                replay_seq,
            );
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};
    use esdb_doc::Document;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-repl-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn doc(r: u64) -> WriteOp {
        WriteOp::insert(
            Document::builder(TenantId(1), RecordId(r), 100 + r)
                .field("status", (r % 2) as i64)
                .field("auction_title", format!("thing {r}"))
                .build(),
        )
    }

    fn pair(name: &str, mode: ReplicationMode) -> ReplicatedPair {
        let (clock, _driver) = SharedClock::manual(0);
        ReplicatedPair::open(
            CollectionSchema::transaction_logs(),
            tmpdir(name),
            mode,
            clock,
        )
        .unwrap()
    }

    #[test]
    fn logical_replica_executes_everything() {
        let mut p = pair("logical", ReplicationMode::Logical);
        for r in 0..20 {
            p.write(&doc(r)).unwrap();
        }
        p.refresh().unwrap();
        assert_eq!(p.replica_live_docs(), 20);
        // CPU doubled: replica executed as many index ops as the primary.
        assert_eq!(p.metrics().replica_index_ops, p.metrics().primary_index_ops);
    }

    #[test]
    fn physical_replica_converges_without_executing() {
        let mut p = pair(
            "physical",
            ReplicationMode::Physical {
                pre_replicate_merges: true,
            },
        );
        for r in 0..20 {
            p.write(&doc(r)).unwrap();
        }
        p.refresh().unwrap();
        assert_eq!(p.replica_live_docs(), 20);
        assert_eq!(p.metrics().replica_index_ops, 0, "replica never indexes");
        assert_eq!(
            p.metrics().translog_entries_synced,
            20,
            "translog synced in real time"
        );
        assert!(p.metrics().segment_bytes_shipped > 0);
        assert!(!p.has_locked_segments(), "locks released after replication");
    }

    #[test]
    fn replica_follows_multiple_refreshes() {
        let mut p = pair(
            "multi",
            ReplicationMode::Physical {
                pre_replicate_merges: false,
            },
        );
        for batch in 0..3 {
            for r in 0..10 {
                p.write(&doc(batch * 10 + r)).unwrap();
            }
            p.refresh().unwrap();
        }
        assert_eq!(p.replica_live_docs(), 30);
        assert_eq!(p.replica_segment_ids().len(), 3);
    }

    #[test]
    fn merge_without_prereplication_ships_in_next_diff() {
        let mut p = pair(
            "merge-diff",
            ReplicationMode::Physical {
                pre_replicate_merges: false,
            },
        );
        for batch in 0..4 {
            for r in 0..10 {
                p.write(&doc(batch * 10 + r)).unwrap();
            }
            p.refresh().unwrap();
        }
        let merged = p
            .maybe_merge()
            .expect("tiered policy merges 4 small segments");
        // Replica still has the 4 old segments until the next refresh cycle.
        assert!(!p.replica_segment_ids().contains(&merged));
        p.refresh().unwrap();
        assert_eq!(p.replica_segment_ids(), vec![merged]);
        assert_eq!(p.replica_live_docs(), 40);
    }

    #[test]
    fn prereplicated_merge_never_in_diff() {
        let mut p = pair(
            "prerepl",
            ReplicationMode::Physical {
                pre_replicate_merges: true,
            },
        );
        for batch in 0..4 {
            for r in 0..10 {
                p.write(&doc(batch * 10 + r)).unwrap();
            }
            p.refresh().unwrap();
        }
        let before = p.metrics().segments_shipped_incremental;
        let merged = p.maybe_merge().unwrap();
        // Shipped eagerly on the pre-replication path.
        assert!(p.replica_segment_ids().contains(&merged));
        assert_eq!(p.metrics().segments_shipped_prereplicated, 1);
        p.refresh().unwrap();
        // The follow-up incremental pass only *deleted* merged-away
        // segments; the merged one was not re-shipped.
        assert_eq!(p.metrics().segments_shipped_incremental, before);
        assert_eq!(p.replica_segment_ids(), vec![merged]);
        assert_eq!(p.replica_live_docs(), 40);
    }

    #[test]
    fn visibility_delay_accounts_clock() {
        let (clock, driver) = SharedClock::manual(0);
        let mut p = ReplicatedPair::open(
            CollectionSchema::transaction_logs(),
            tmpdir("visdelay"),
            ReplicationMode::Physical {
                pre_replicate_merges: false,
            },
            clock,
        )
        .unwrap();
        for r in 0..5 {
            p.write(&doc(r)).unwrap();
        }
        // Refresh makes the segment visible on the primary at t=0; pretend
        // the replication pass runs 250 ms later.
        let id = p.primary_mut().refresh().unwrap();
        p.visible_on_primary.insert(id, 0);
        driver.advance(250);
        p.replicate_incremental();
        assert_eq!(p.metrics().visibility_delays_ms, vec![250]);
        assert!((p.metrics().mean_visibility_delay_ms() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn replica_promotion_recovers_from_translog() {
        let mut p = pair(
            "promote",
            ReplicationMode::Physical {
                pre_replicate_merges: true,
            },
        );
        for r in 0..15 {
            p.write(&doc(r)).unwrap();
        }
        // No refresh at all: data exists only in buffer + translogs.
        let promoted = p.promote_replica(tmpdir("promoted")).unwrap();
        assert_eq!(
            promoted.stats().live_docs,
            15,
            "promotion replays the synced translog"
        );
        assert!(promoted.get_record(14).is_some());
    }

    #[test]
    fn promotion_journals_causally_chained_events() {
        let journal = Arc::new(Journal::new(128));
        let mut p = pair(
            "promote-journal",
            ReplicationMode::Physical {
                pre_replicate_merges: true,
            },
        )
        .with_journal(Arc::clone(&journal), 3, 1);
        for r in 0..9 {
            p.write(&doc(r)).unwrap();
        }
        let promoted = p.promote_replica(tmpdir("promoted-journal")).unwrap();
        assert_eq!(promoted.stats().live_docs, 9);

        let events = journal.tail(16);
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            [
                "promotion_started",
                "translog_replayed",
                "promotion_completed"
            ]
        );
        // Each link in the chain parents the next.
        assert_eq!(events[0].parent_seq, NO_PARENT);
        assert_eq!(events[1].parent_seq, events[0].seq);
        assert_eq!(events[2].parent_seq, events[1].seq);
        match events[1].kind {
            EventKind::TranslogReplayed { shard, ops } => {
                assert_eq!(shard, 3);
                assert_eq!(ops, 9);
            }
            ref other => panic!("expected translog_replayed, got {other:?}"),
        }
        match events[2].kind {
            EventKind::PromotionCompleted {
                shard,
                replayed_ops,
                ..
            } => {
                assert_eq!(shard, 3);
                assert_eq!(replayed_ops, 9);
            }
            ref other => panic!("expected promotion_completed, got {other:?}"),
        }
    }

    #[test]
    fn degraded_reads_pin_survivor_snapshot() {
        let mut p = pair(
            "degraded",
            ReplicationMode::Physical {
                pre_replicate_merges: false,
            },
        );
        for batch in 0..4 {
            for r in 0..10 {
                p.write(&doc(batch * 10 + r)).unwrap();
            }
            p.refresh().unwrap();
        }
        let degraded = p.degraded_read_snapshot();
        assert_eq!(degraded.live_docs(), 40);
        assert!(degraded.get_record(17).is_some());
        // The pinned view must survive the primary merging away its
        // segments and the next replication pass retiring the replica's
        // copies.
        let live: Vec<SegmentId> = p.primary().segments().iter().map(|s| s.id).collect();
        p.primary_mut().force_merge(&live);
        p.refresh().unwrap();
        assert_eq!(
            p.replica_segment_ids().len(),
            1,
            "replica converged to the merged segment"
        );
        assert_eq!(degraded.live_docs(), 40);
        assert_eq!(
            degraded.segments().len(),
            4,
            "pinned view keeps its original segments"
        );
        assert!(degraded.get_record(17).is_some());
        // A fresh pin sees the converged state.
        assert_eq!(p.degraded_read_snapshot().segments().len(), 1);

        // Logical mode: the survivor is the replica engine's snapshot.
        let mut lp = pair("degraded-logical", ReplicationMode::Logical);
        for r in 0..10 {
            lp.write(&doc(r)).unwrap();
        }
        lp.refresh().unwrap();
        let view = lp.degraded_read_snapshot();
        assert_eq!(view.live_docs(), 10);
        assert!(view.get_record(3).is_some());
    }

    #[test]
    fn deletes_propagate_physically() {
        let mut p = pair(
            "deletes",
            ReplicationMode::Physical {
                pre_replicate_merges: false,
            },
        );
        for r in 0..10 {
            p.write(&doc(r)).unwrap();
        }
        p.refresh().unwrap();
        p.write(&WriteOp::delete(TenantId(1), RecordId(3), 0))
            .unwrap();
        // The tombstone reaches the replica with the next shipped state:
        // merge compacts and ships a fresh segment.
        p.primary_mut().refresh();
        let live: Vec<SegmentId> = p.primary().segments().iter().map(|s| s.id).collect();
        p.primary_mut().force_merge(&live);
        p.refresh().unwrap();
        assert_eq!(p.replica_live_docs(), 9);
    }
}
