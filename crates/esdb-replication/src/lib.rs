//! Replication: Elasticsearch-style **logical** replication versus ESDB's
//! **physical** replication (paper §3.3, §5.2, Fig. 9).
//!
//! *Logical* replication forwards every write to the replica, which
//! re-executes it — doubling indexing CPU. ESDB instead ships **segment
//! files**:
//!
//! 1. **Real-time translog synchronization** — every write is appended to
//!    the replica's translog (durability / promotion), but never executed.
//! 2. **Quick incremental replication of refreshed segments** — on refresh
//!    the primary snapshots its segment list; the replica computes the
//!    *segment diff*, requests missing segments, and drops segments the
//!    primary deleted. The primary locks the snapshot's segments for the
//!    duration (Fig. 9 steps 1–6).
//! 3. **Pre-replication of merged segments** — merged segments ship as soon
//!    as the merge finishes, on an independent path, so they never appear
//!    in a segment diff and do not delay refreshed-segment visibility.
//!
//! [`pair::ReplicatedPair`] drives a real primary [`ShardEngine`] and a
//! replica under either mode, with CPU/byte/visibility-delay accounting
//! used by the Fig. 15 harness and the pre-replication ablation.

pub mod diff;
pub mod pair;
pub mod ship;

pub use diff::{segment_diff, SegmentDiff, SnapshotInfo};
pub use pair::{ReplicatedPair, ReplicationMetrics, ReplicationMode};
pub use ship::{build_handoff, ExportedRows, HandoffPlan, Shipment};

// Re-exported so callers of the pair don't need a direct esdb-storage dep.
pub use esdb_storage::ShardEngine;
