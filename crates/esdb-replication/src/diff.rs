//! Segment snapshots and the segment diff (Fig. 9 steps 1–4).

use esdb_index::SegmentId;

/// A snapshot of the primary's segment list, taken at refresh time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Monotone snapshot id.
    pub snapshot_id: u64,
    /// Segments alive in this snapshot, with their byte sizes.
    pub segments: Vec<(SegmentId, usize)>,
}

impl SnapshotInfo {
    /// Segment ids in the snapshot.
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.segments.iter().map(|&(id, _)| id)
    }
}

/// What the replica must fetch and what it must delete to converge on the
/// primary state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentDiff {
    /// Segments present on the primary but missing locally.
    pub to_fetch: Vec<SegmentId>,
    /// Local segments the primary no longer has (merged away / deleted).
    pub to_delete: Vec<SegmentId>,
}

impl SegmentDiff {
    /// Whether the replica is already converged.
    pub fn is_empty(&self) -> bool {
        self.to_fetch.is_empty() && self.to_delete.is_empty()
    }
}

/// Computes the diff between the primary's snapshot and the replica's local
/// segment ids (Fig. 9 step 4: "the replica computes the segment diff
/// according to its local snapshot and the snapshot received from the
/// primary shard").
pub fn segment_diff(primary: &SnapshotInfo, replica_local: &[SegmentId]) -> SegmentDiff {
    let mut to_fetch: Vec<SegmentId> = primary
        .ids()
        .filter(|id| !replica_local.contains(id))
        .collect();
    let mut to_delete: Vec<SegmentId> = replica_local
        .iter()
        .copied()
        .filter(|id| !primary.ids().any(|p| p == *id))
        .collect();
    to_fetch.sort_unstable();
    to_delete.sort_unstable();
    SegmentDiff {
        to_fetch,
        to_delete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(ids: &[u64]) -> SnapshotInfo {
        SnapshotInfo {
            snapshot_id: 1,
            segments: ids.iter().map(|&i| (i, 100)).collect(),
        }
    }

    #[test]
    fn empty_replica_fetches_everything() {
        let d = segment_diff(&snap(&[1, 2, 3]), &[]);
        assert_eq!(d.to_fetch, vec![1, 2, 3]);
        assert!(d.to_delete.is_empty());
    }

    #[test]
    fn converged_replica_is_noop() {
        let d = segment_diff(&snap(&[1, 2]), &[2, 1]);
        assert!(d.is_empty());
    }

    #[test]
    fn merge_away_deletes_and_fetches() {
        // Primary merged 1+2 into 5; replica still has 1,2.
        let d = segment_diff(&snap(&[3, 5]), &[1, 2, 3]);
        assert_eq!(d.to_fetch, vec![5]);
        assert_eq!(d.to_delete, vec![1, 2]);
    }

    #[test]
    fn pre_replicated_segment_not_in_diff() {
        // Fig. 9 pre-replication: merged segment 7 was shipped eagerly, so
        // by snapshot time the replica already holds it.
        let d = segment_diff(&snap(&[4, 7]), &[4, 7]);
        assert!(
            d.is_empty(),
            "pre-replicated merges never appear in the diff"
        );
    }
}
