//! Secondary-hashing-rule consensus (paper §4.3, Fig. 5).
//!
//! The rule list is **append-only** and every rule carries an *effective
//! time*, so cluster-wide agreement does not need Paxos/Raft: it reduces to
//! a commit/abort decision per rule. ESDB uses a 2PC variant with a
//! Spanner-style commit wait:
//!
//! 1. A coordinator sends a new rule to the **master**.
//! 2. The master picks the effective time `t = now + T` (where `T` is much
//!    larger than the broadcast round-trip plus the maximum clock skew, but
//!    much smaller than the expected balancing latency) and broadcasts a
//!    *Prepare* carrying the rule and `t`.
//! 3. Each participant verifies all records it has executed were created
//!    before `t`, **blocks** workloads whose creation time exceeds `t`, and
//!    acks. Any error or a timeout (no reply within `T/2`) aborts the round.
//! 4. On *Commit*, participants append the rule to their local rule list
//!    and lift the block.
//!
//! As long as the round finishes before real time reaches `t`, no workload
//! is ever actually blocked — the protocol is non-blocking in the common
//! case (tested in `roundtrip_completes_before_effective_time`).
//!
//! Faults are modelled by [`network::FaultPlan`]: per-participant message
//! delays, drops, and partitions, letting tests exercise timeout-aborts and
//! the paper's fault-tolerance discussion.

pub mod master;
pub mod messages;
pub mod network;
pub mod participant;

pub use master::{ConsensusConfig, Master, RoundOutcome};
pub use messages::{PrepareReply, RuleBody};
pub use network::{FaultPlan, LinkFault};
pub use participant::Participant;
