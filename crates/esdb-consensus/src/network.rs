//! Fault injection for the consensus rounds.
//!
//! The protocol itself is synchronous round-based; the [`FaultPlan`]
//! describes, per participant, how its link behaves during a round:
//! extra one-way delay, dropped messages (which the master observes as a
//! timeout after `T/2`), or a full partition.

use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::NodeId;

/// Behaviour of one participant's link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkFault {
    /// Healthy link with the plan's base latency.
    #[default]
    Healthy,
    /// Additional one-way delay in milliseconds (applied to each direction).
    Delay(u64),
    /// The prepare (or its ack) is lost — the master times out.
    DropPrepare,
    /// The commit message is lost — the participant misses the decision
    /// (exercises the fault-tolerance discussion of §4.3).
    DropCommit,
    /// Fully partitioned: no message in either direction.
    Partitioned,
}

/// Per-round fault plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Base one-way latency for healthy links, ms.
    pub base_latency_ms: u64,
    faults: FastMap<NodeId, LinkFault>,
}

impl FaultPlan {
    /// Healthy network with the given base one-way latency.
    pub fn healthy(base_latency_ms: u64) -> Self {
        FaultPlan {
            base_latency_ms,
            faults: fast_map(),
        }
    }

    /// Sets the fault for one participant's link.
    pub fn set(&mut self, node: NodeId, fault: LinkFault) -> &mut Self {
        self.faults.insert(node, fault);
        self
    }

    /// The fault configured for `node`.
    pub fn fault(&self, node: NodeId) -> LinkFault {
        self.faults.get(&node).copied().unwrap_or_default()
    }

    /// One-way latency to `node`, or `None` if the message is lost.
    pub fn one_way_latency(&self, node: NodeId) -> Option<u64> {
        match self.fault(node) {
            LinkFault::Healthy | LinkFault::DropCommit => Some(self.base_latency_ms),
            LinkFault::Delay(d) => Some(self.base_latency_ms + d),
            LinkFault::DropPrepare | LinkFault::Partitioned => None,
        }
    }

    /// Whether the commit broadcast reaches `node`.
    pub fn commit_reaches(&self, node: NodeId) -> bool {
        !matches!(
            self.fault(node),
            LinkFault::DropCommit | LinkFault::Partitioned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_has_base_latency() {
        let p = FaultPlan::healthy(5);
        assert_eq!(p.one_way_latency(NodeId(0)), Some(5));
        assert!(p.commit_reaches(NodeId(0)));
    }

    #[test]
    fn faults_apply_per_node() {
        let mut p = FaultPlan::healthy(5);
        p.set(NodeId(1), LinkFault::Delay(100));
        p.set(NodeId(2), LinkFault::DropPrepare);
        p.set(NodeId(3), LinkFault::DropCommit);
        p.set(NodeId(4), LinkFault::Partitioned);
        assert_eq!(p.one_way_latency(NodeId(1)), Some(105));
        assert_eq!(p.one_way_latency(NodeId(2)), None);
        assert_eq!(p.one_way_latency(NodeId(3)), Some(5));
        assert!(!p.commit_reaches(NodeId(3)));
        assert_eq!(p.one_way_latency(NodeId(4)), None);
        assert!(!p.commit_reaches(NodeId(4)));
        // Untouched node stays healthy.
        assert_eq!(p.one_way_latency(NodeId(0)), Some(5));
    }
}
