//! Consensus participants (every coordinator node of the cluster).
//!
//! Each participant owns a replica of the rule list and tracks the largest
//! record-creation time it has executed. On *Prepare* it validates the
//! proposed effective time against that watermark, installs a workload
//! block for later-created records, and acks; *Commit* appends the rule and
//! lifts the block; *Abort* just lifts the block.

use crate::messages::PrepareReply;
use esdb_common::{EsdbError, NodeId, Result, TimestampMs};
use esdb_routing::{RuleList, SecondaryHashingRule};
use parking_lot::RwLock;
use std::sync::Arc;

/// One consensus participant.
#[derive(Debug)]
pub struct Participant {
    /// Node identity (for reporting).
    pub id: NodeId,
    rules: Arc<RwLock<RuleList>>,
    /// Largest creation time among records this node has executed.
    max_executed_tc: TimestampMs,
    /// When set, workloads with `tc > block_after` must be held.
    block_after: Option<TimestampMs>,
    /// The rule pending in the current round (set by Prepare).
    pending: Option<SecondaryHashingRule>,
}

impl Participant {
    /// A participant with its own empty rule list.
    pub fn new(id: NodeId) -> Self {
        Participant {
            id,
            rules: Arc::new(RwLock::new(RuleList::new())),
            max_executed_tc: 0,
            block_after: None,
            pending: None,
        }
    }

    /// A participant sharing an externally-owned rule list (the cluster
    /// wires the coordinator's router to the same list).
    pub fn with_rules(id: NodeId, rules: Arc<RwLock<RuleList>>) -> Self {
        Participant {
            id,
            rules,
            max_executed_tc: 0,
            block_after: None,
            pending: None,
        }
    }

    /// Shared handle to this participant's rule list.
    pub fn rules(&self) -> Arc<RwLock<RuleList>> {
        self.rules.clone()
    }

    /// Records that a write with creation time `tc` has been executed
    /// (advances the validation watermark).
    pub fn observe_executed(&mut self, tc: TimestampMs) {
        self.max_executed_tc = self.max_executed_tc.max(tc);
    }

    /// The largest executed creation time.
    pub fn watermark(&self) -> TimestampMs {
        self.max_executed_tc
    }

    /// Whether a write created at `tc` may execute now, or must wait for the
    /// in-flight rule round to finish.
    pub fn check_admit(&self, tc: TimestampMs) -> Result<()> {
        match self.block_after {
            Some(t) if tc > t => Err(EsdbError::WorkloadBlocked { until: t }),
            _ => Ok(()),
        }
    }

    /// Handles *Prepare*: validate and block (Fig. 5 left).
    pub fn on_prepare(&mut self, rule: &SecondaryHashingRule) -> PrepareReply {
        let t = rule.effective_time;
        if self.max_executed_tc >= t {
            return PrepareReply::Reject {
                reason: format!(
                    "{}: executed record at tc={} >= effective time {}",
                    self.id, self.max_executed_tc, t
                ),
            };
        }
        if let Some(last) = self.rules.read().max_effective_time() {
            if t <= last {
                return PrepareReply::Reject {
                    reason: format!(
                        "{}: effective time {} not after last committed rule {}",
                        self.id, t, last
                    ),
                };
            }
        }
        self.block_after = Some(t);
        self.pending = Some(rule.clone());
        PrepareReply::Accept
    }

    /// Handles *Commit*: append the rule, lift the block (Fig. 5 right).
    pub fn on_commit(&mut self, rule: &SecondaryHashingRule) {
        self.rules.write().insert_rule(rule.clone());
        if self.pending.as_ref() == Some(rule) {
            self.pending = None;
            self.block_after = None;
        }
    }

    /// Handles *Abort*: discard the pending rule, lift the block.
    pub fn on_abort(&mut self) {
        self.pending = None;
        self.block_after = None;
    }

    /// Whether a block is currently installed (prepare received, decision
    /// pending).
    pub fn is_blocking(&self) -> bool {
        self.block_after.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::TenantId;

    fn rule(t: TimestampMs, s: u32) -> SecondaryHashingRule {
        SecondaryHashingRule {
            effective_time: t,
            offset: s,
            tenants: vec![TenantId(1)],
        }
    }

    #[test]
    fn prepare_validates_watermark() {
        let mut p = Participant::new(NodeId(0));
        p.observe_executed(100);
        assert!(matches!(
            p.on_prepare(&rule(100, 4)),
            PrepareReply::Reject { .. }
        ));
        assert!(matches!(p.on_prepare(&rule(101, 4)), PrepareReply::Accept));
    }

    #[test]
    fn prepare_blocks_future_workloads_only() {
        let mut p = Participant::new(NodeId(0));
        assert!(matches!(p.on_prepare(&rule(200, 4)), PrepareReply::Accept));
        assert!(p.is_blocking());
        // Records created at or before the effective time pass.
        assert!(p.check_admit(150).is_ok());
        assert!(p.check_admit(200).is_ok());
        // Later ones are held.
        assert_eq!(
            p.check_admit(201),
            Err(EsdbError::WorkloadBlocked { until: 200 })
        );
    }

    #[test]
    fn commit_installs_rule_and_unblocks() {
        let mut p = Participant::new(NodeId(0));
        let r = rule(200, 4);
        p.on_prepare(&r);
        p.on_commit(&r);
        assert!(!p.is_blocking());
        assert!(p.check_admit(500).is_ok());
        assert_eq!(p.rules().read().offset_for_write(TenantId(1), 201), 4);
    }

    #[test]
    fn abort_unblocks_without_installing() {
        let mut p = Participant::new(NodeId(0));
        p.on_prepare(&rule(200, 4));
        p.on_abort();
        assert!(!p.is_blocking());
        assert_eq!(p.rules().read().offset_for_write(TenantId(1), 300), 1);
    }

    #[test]
    fn effective_times_must_advance() {
        let mut p = Participant::new(NodeId(0));
        let r1 = rule(200, 4);
        p.on_prepare(&r1);
        p.on_commit(&r1);
        assert!(matches!(
            p.on_prepare(&rule(200, 8)),
            PrepareReply::Reject { .. }
        ));
        assert!(matches!(
            p.on_prepare(&rule(150, 8)),
            PrepareReply::Reject { .. }
        ));
        assert!(matches!(p.on_prepare(&rule(201, 8)), PrepareReply::Accept));
    }

    #[test]
    fn commit_of_unseen_rule_still_applies() {
        // A participant that missed Prepare (e.g. restarted) must still be
        // able to apply a committed rule when it catches up.
        let mut p = Participant::new(NodeId(0));
        p.on_commit(&rule(100, 8));
        assert_eq!(p.rules().read().offset_for_write(TenantId(1), 150), 8);
        assert!(!p.is_blocking());
    }
}
