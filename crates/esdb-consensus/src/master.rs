//! The master side of the rule-commit protocol (Fig. 5).
//!
//! The master assigns the effective time `t = now + T`, runs the prepare
//! phase with a `T/2` reply deadline, and broadcasts the decision. The
//! round is executed synchronously against a slice of participants through
//! a [`FaultPlan`] that injects delays, drops, and partitions.

use crate::messages::{PrepareReply, RuleBody};
use crate::network::FaultPlan;
use crate::participant::Participant;
use esdb_common::{Clock, SharedClock, TimestampMs};
use esdb_routing::SecondaryHashingRule;
use esdb_telemetry::{Labels, MetricsRegistry};
use std::sync::Arc;

/// Protocol timing configuration (paper §4.3 "Choose of time interval").
#[derive(Debug, Clone, Copy)]
pub struct ConsensusConfig {
    /// The commit-wait interval `T`: effective time = now + T. Must be much
    /// larger than broadcast RTT + max clock skew, much smaller than the
    /// expected balancing latency (paper suggests RTT ≈ 100 ms, skew ≤ 1 s,
    /// balancing ≈ 60 s).
    pub interval_t_ms: u64,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        // 5 s: > 100 ms RTT + 1 s skew, << 60 s balancing expectation.
        ConsensusConfig {
            interval_t_ms: 5_000,
        }
    }
}

/// Outcome of one consensus round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundOutcome {
    /// The rule committed; every reachable participant installed it.
    /// `missed` lists participants that acked prepare but did not receive
    /// the commit (they stay blocked until operator intervention — paper
    /// §4.3 "Fault tolerance" requires manual verification).
    Committed {
        /// The committed rule.
        rule: SecondaryHashingRule,
        /// Participants that missed the commit broadcast.
        missed: Vec<esdb_common::NodeId>,
        /// Simulated wall time consumed by the round, ms.
        round_ms: u64,
    },
    /// The round aborted.
    Aborted {
        /// Why (first reject reason or the list of timed-out nodes).
        reason: String,
        /// Simulated wall time consumed by the round, ms.
        round_ms: u64,
    },
}

impl RoundOutcome {
    /// Whether the round committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, RoundOutcome::Committed { .. })
    }
}

/// The elected master node.
pub struct Master {
    clock: SharedClock,
    config: ConsensusConfig,
    registry: Option<Arc<MetricsRegistry>>,
}

impl Master {
    /// A master reading time from `clock`.
    pub fn new(clock: SharedClock, config: ConsensusConfig) -> Self {
        Master {
            clock,
            config,
            registry: None,
        }
    }

    /// Records rule-propagation metrics into `registry`:
    /// `esdb_consensus_rounds_total{stage}` and the simulated-time
    /// histograms `esdb_consensus_round_ms{stage}` (protocol latency) and
    /// `esdb_consensus_commit_wait_ms` (the commit-wait interval `T`
    /// between a committed rule's broadcast and its effective time).
    pub fn with_telemetry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    fn record_outcome(&self, outcome: &RoundOutcome) {
        let Some(reg) = &self.registry else {
            return;
        };
        let (stage, round_ms) = match outcome {
            RoundOutcome::Committed { round_ms, .. } => ("committed", *round_ms),
            RoundOutcome::Aborted { round_ms, .. } => ("aborted", *round_ms),
        };
        reg.add("esdb_consensus_rounds_total", Labels::stage(stage), 1);
        reg.observe("esdb_consensus_round_ms", Labels::stage(stage), round_ms);
        if outcome.is_committed() {
            reg.observe(
                "esdb_consensus_commit_wait_ms",
                Labels::none(),
                self.config.interval_t_ms,
            );
        }
    }

    /// The configured commit-wait interval `T`.
    pub fn interval_t(&self) -> u64 {
        self.config.interval_t_ms
    }

    /// Runs one full round for `body` against `participants` under `plan`.
    ///
    /// Timing model: prepare and its ack each take one one-way latency; a
    /// participant whose round-trip exceeds the `T/2` deadline — or whose
    /// messages are dropped — counts as a timeout and aborts the round
    /// (paper: "a participant does not respond within T/2").
    pub fn run_round(
        &self,
        body: &RuleBody,
        participants: &mut [Participant],
        plan: &FaultPlan,
    ) -> RoundOutcome {
        let now = self.clock.now();
        let t_effective: TimestampMs = now + self.config.interval_t_ms;
        let rule = body.with_effective_time(t_effective);
        let deadline = self.config.interval_t_ms / 2;

        // Prepare phase.
        let mut prepared: Vec<usize> = Vec::with_capacity(participants.len());
        let mut round_ms: u64 = 0;
        let mut abort_reason: Option<String> = None;
        for (idx, p) in participants.iter_mut().enumerate() {
            match plan.one_way_latency(p.id) {
                Some(lat) if 2 * lat <= deadline => {
                    round_ms = round_ms.max(2 * lat);
                    match p.on_prepare(&rule) {
                        PrepareReply::Accept => prepared.push(idx),
                        PrepareReply::Reject { reason } => {
                            abort_reason.get_or_insert(reason);
                        }
                    }
                }
                Some(_) | None => {
                    // Message lost or too slow: master times out at T/2.
                    round_ms = round_ms.max(deadline);
                    abort_reason.get_or_insert(format!("{}: prepare timed out", p.id));
                }
            }
        }

        if let Some(reason) = abort_reason {
            // Abort broadcast: unblock everyone we managed to prepare.
            for &idx in &prepared {
                if plan.commit_reaches(participants[idx].id) {
                    participants[idx].on_abort();
                }
            }
            let outcome = RoundOutcome::Aborted { reason, round_ms };
            self.record_outcome(&outcome);
            return outcome;
        }

        // Commit phase.
        let mut missed = Vec::new();
        for p in participants.iter_mut() {
            if plan.commit_reaches(p.id) {
                if let Some(lat) = plan.one_way_latency(p.id) {
                    round_ms = round_ms.max(2 * plan.base_latency_ms + lat);
                }
                p.on_commit(&rule);
            } else {
                missed.push(p.id);
            }
        }
        let outcome = RoundOutcome::Committed {
            rule,
            missed,
            round_ms,
        };
        self.record_outcome(&outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkFault;
    use esdb_common::{NodeId, TenantId};

    fn setup(n: u32) -> (Master, Vec<Participant>) {
        let (clock, driver) = SharedClock::manual(10_000);
        driver.advance(0);
        let master = Master::new(
            clock,
            ConsensusConfig {
                interval_t_ms: 2_000,
            },
        );
        let parts = (0..n).map(|i| Participant::new(NodeId(i))).collect();
        (master, parts)
    }

    #[test]
    fn telemetry_records_round_outcomes() {
        let registry = Arc::new(MetricsRegistry::new());
        let (clock, driver) = SharedClock::manual(10_000);
        driver.advance(0);
        let master = Master::new(
            clock,
            ConsensusConfig {
                interval_t_ms: 2_000,
            },
        )
        .with_telemetry(Arc::clone(&registry));
        let mut parts: Vec<Participant> = (0..3).map(|i| Participant::new(NodeId(i))).collect();
        let plan = FaultPlan::healthy(50);
        assert!(master
            .run_round(&RuleBody::single(TenantId(1), 8), &mut parts, &plan)
            .is_committed());
        // Same instant → same effective time → reject → abort.
        assert!(!master
            .run_round(&RuleBody::single(TenantId(1), 4), &mut parts, &plan)
            .is_committed());
        assert_eq!(
            registry.counter_value("esdb_consensus_rounds_total", Labels::stage("committed")),
            1
        );
        assert_eq!(
            registry.counter_value("esdb_consensus_rounds_total", Labels::stage("aborted")),
            1
        );
        let wait = registry
            .histogram("esdb_consensus_commit_wait_ms", Labels::none())
            .snapshot();
        assert_eq!(wait.count(), 1);
        assert_eq!(wait.max(), 2_000);
    }

    #[test]
    fn healthy_round_commits_everywhere() {
        let (master, mut parts) = setup(4);
        let plan = FaultPlan::healthy(50);
        let out = master.run_round(&RuleBody::single(TenantId(1), 8), &mut parts, &plan);
        match out {
            RoundOutcome::Committed {
                rule,
                missed,
                round_ms,
            } => {
                assert_eq!(rule.effective_time, 12_000);
                assert!(missed.is_empty());
                assert!(round_ms <= 2_000);
            }
            other => panic!("expected commit, got {other:?}"),
        }
        for p in &parts {
            assert_eq!(p.rules().read().offset_for_write(TenantId(1), 12_001), 8);
            assert!(!p.is_blocking());
        }
    }

    #[test]
    fn roundtrip_completes_before_effective_time() {
        // Non-blocking property: the round finishes (round_ms) well before
        // the effective time (T), so in-flight workloads are never held.
        let (master, mut parts) = setup(8);
        let plan = FaultPlan::healthy(100); // paper's RTT scale
        match master.run_round(&RuleBody::single(TenantId(9), 4), &mut parts, &plan) {
            RoundOutcome::Committed { round_ms, .. } => {
                assert!(round_ms < master.interval_t(), "round {round_ms}ms >= T");
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn reject_aborts_and_unblocks() {
        let (master, mut parts) = setup(3);
        // Participant 2 executed a record in the future of the proposal
        // (e.g. extreme clock skew upstream): it must reject.
        parts[2].observe_executed(20_000);
        let plan = FaultPlan::healthy(10);
        let out = master.run_round(&RuleBody::single(TenantId(1), 8), &mut parts, &plan);
        assert!(matches!(out, RoundOutcome::Aborted { .. }));
        for p in &parts {
            assert!(!p.is_blocking(), "{}", p.id);
            assert_eq!(p.rules().read().offset_for_write(TenantId(1), 30_000), 1);
        }
    }

    #[test]
    fn slow_participant_times_out() {
        let (master, mut parts) = setup(3);
        let mut plan = FaultPlan::healthy(10);
        // Round trip 2*1200 > T/2 = 1000.
        plan.set(NodeId(1), LinkFault::Delay(1_190));
        let out = master.run_round(&RuleBody::single(TenantId(1), 8), &mut parts, &plan);
        match out {
            RoundOutcome::Aborted { reason, round_ms } => {
                assert!(reason.contains("timed out"), "{reason}");
                assert_eq!(round_ms, 1_000, "master waits out the T/2 deadline");
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn dropped_prepare_aborts() {
        let (master, mut parts) = setup(3);
        let mut plan = FaultPlan::healthy(10);
        plan.set(NodeId(0), LinkFault::DropPrepare);
        assert!(!master
            .run_round(&RuleBody::single(TenantId(1), 8), &mut parts, &plan)
            .is_committed());
        // Other participants were prepared then aborted — unblocked.
        assert!(parts.iter().all(|p| !p.is_blocking()));
    }

    #[test]
    fn dropped_commit_leaves_participant_blocked() {
        // §4.3 fault tolerance: a node that acked prepare but missed the
        // commit stays blocked pending manual verification. The outcome
        // reports it so the operator (or the simulator) can intervene.
        let (master, mut parts) = setup(3);
        let mut plan = FaultPlan::healthy(10);
        plan.set(NodeId(2), LinkFault::DropCommit);
        match master.run_round(&RuleBody::single(TenantId(1), 8), &mut parts, &plan) {
            RoundOutcome::Committed { missed, .. } => {
                assert_eq!(missed, vec![NodeId(2)]);
            }
            other => panic!("expected commit, got {other:?}"),
        }
        assert!(parts[2].is_blocking());
        assert!(!parts[0].is_blocking());
        // Recovery: the operator re-delivers the committed rule.
        let rule = parts[0].rules().read().rules()[0].clone();
        parts[2].on_commit(&rule);
        assert!(!parts[2].is_blocking());
        assert_eq!(
            parts[2]
                .rules()
                .read()
                .offset_for_write(TenantId(1), u64::MAX),
            8
        );
    }

    #[test]
    fn partitioned_participant_aborts_round() {
        let (master, mut parts) = setup(5);
        let mut plan = FaultPlan::healthy(10);
        plan.set(NodeId(3), LinkFault::Partitioned);
        let out = master.run_round(&RuleBody::single(TenantId(2), 4), &mut parts, &plan);
        assert!(!out.is_committed());
    }

    #[test]
    fn consecutive_rounds_advance_effective_times() {
        let (clock, driver) = SharedClock::manual(0);
        let master = Master::new(
            clock,
            ConsensusConfig {
                interval_t_ms: 1_000,
            },
        );
        let mut parts = vec![Participant::new(NodeId(0))];
        let plan = FaultPlan::healthy(1);
        let r1 = master.run_round(&RuleBody::single(TenantId(1), 2), &mut parts, &plan);
        assert!(r1.is_committed());
        // Same instant: the new effective time equals the last — reject.
        let r2 = master.run_round(&RuleBody::single(TenantId(1), 4), &mut parts, &plan);
        assert!(!r2.is_committed());
        // After time passes, it commits.
        driver.advance(10);
        let r3 = master.run_round(&RuleBody::single(TenantId(1), 4), &mut parts, &plan);
        assert!(r3.is_committed());
        assert_eq!(
            parts[0].rules().read().offset_for_write(TenantId(1), 2_000),
            4
        );
    }
}
