//! Protocol messages for the rule-commit protocol (Fig. 5).

use esdb_common::{TenantId, TimestampMs};
use esdb_routing::SecondaryHashingRule;
use serde::{Deserialize, Serialize};

/// The payload of a proposed rule, before the master assigns the effective
/// time: the tenants and the offset they should adopt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleBody {
    /// Tenants adopting the new offset.
    pub tenants: Vec<TenantId>,
    /// The proposed maximum secondary-hash offset.
    pub offset: u32,
}

impl RuleBody {
    /// A single-tenant rule body.
    pub fn single(tenant: TenantId, offset: u32) -> Self {
        RuleBody {
            tenants: vec![tenant],
            offset,
        }
    }

    /// Attaches an effective time, producing the concrete rule.
    pub fn with_effective_time(&self, t: TimestampMs) -> SecondaryHashingRule {
        SecondaryHashingRule {
            effective_time: t,
            offset: self.offset,
            tenants: self.tenants.clone(),
        }
    }
}

/// A participant's reply to *Prepare*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrepareReply {
    /// The participant validated the effective time and blocked
    /// later-created workloads.
    Accept,
    /// Validation failed (a record with creation time ≥ the proposed
    /// effective time was already executed, or the rule is not in the
    /// participant's future).
    Reject {
        /// Human-readable reason, surfaced in the abort error.
        reason: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_body_to_rule() {
        let b = RuleBody::single(TenantId(3), 8);
        let r = b.with_effective_time(500);
        assert_eq!(r.effective_time, 500);
        assert_eq!(r.offset, 8);
        assert_eq!(r.tenants, vec![TenantId(3)]);
    }
}
