//! Clock abstractions.
//!
//! The cluster simulator advances a virtual millisecond clock; the embedded
//! storage engine uses wall-clock time. Both sides program against the
//! [`Clock`] trait so the routing/consensus logic (which reasons about rule
//! *effective times*, paper §4.3) is identical in both environments.
//!
//! The consensus protocol additionally tolerates bounded clock *skew*
//! between nodes (the paper budgets ≤ 1 s); [`SkewedClock`] models a node
//! whose local timer deviates from the cluster reference.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::ids::TimestampMs;

/// A source of millisecond timestamps.
pub trait Clock: Send + Sync {
    /// Current time, in milliseconds.
    fn now(&self) -> TimestampMs;
}

/// Wall-clock time (milliseconds since the UNIX epoch).
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> TimestampMs {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before UNIX epoch")
            .as_millis() as TimestampMs
    }
}

/// A manually-advanced clock, shared via `Arc` between the simulator driver
/// and every component that needs timestamps.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ms: AtomicU64,
}

impl ManualClock {
    /// Creates a clock starting at `start_ms`.
    pub fn new(start_ms: TimestampMs) -> Self {
        ManualClock {
            now_ms: AtomicU64::new(start_ms),
        }
    }

    /// Advances the clock by `delta_ms` and returns the new time.
    pub fn advance(&self, delta_ms: u64) -> TimestampMs {
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Sets the clock to an absolute time. Panics if this would move the
    /// clock backwards — simulated time is monotone.
    pub fn set(&self, t: TimestampMs) {
        let prev = self.now_ms.swap(t, Ordering::SeqCst);
        assert!(prev <= t, "ManualClock moved backwards: {prev} -> {t}");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> TimestampMs {
        self.now_ms.load(Ordering::SeqCst)
    }
}

/// A cheaply-clonable handle to any clock.
#[derive(Clone)]
pub struct SharedClock(Arc<dyn Clock>);

impl SharedClock {
    /// Wraps a clock implementation.
    pub fn new<C: Clock + 'static>(clock: C) -> Self {
        SharedClock(Arc::new(clock))
    }

    /// Wraps an already-shared clock.
    pub fn from_arc(clock: Arc<dyn Clock>) -> Self {
        SharedClock(clock)
    }

    /// A wall-clock handle.
    pub fn real() -> Self {
        SharedClock::new(RealClock)
    }

    /// A manual clock handle plus the underlying clock for driving it.
    pub fn manual(start_ms: TimestampMs) -> (Self, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new(start_ms));
        (SharedClock(clock.clone()), clock)
    }
}

impl Clock for SharedClock {
    fn now(&self) -> TimestampMs {
        self.0.now()
    }
}

impl std::fmt::Debug for SharedClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedClock(now={})", self.0.now())
    }
}

/// A clock that reads another clock and applies a fixed signed skew, used to
/// model per-node local-timer deviation in consensus tests.
pub struct SkewedClock {
    inner: SharedClock,
    skew_ms: i64,
}

impl SkewedClock {
    /// Creates a clock reading `inner` shifted by `skew_ms` (may be
    /// negative; saturates at zero).
    pub fn new(inner: SharedClock, skew_ms: i64) -> Self {
        SkewedClock { inner, skew_ms }
    }
}

impl Clock for SkewedClock {
    fn now(&self) -> TimestampMs {
        let base = self.inner.now() as i64;
        (base + self.skew_ms).max(0) as TimestampMs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new(100);
        assert_eq!(c.now(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now(), 150);
        c.set(200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_regression() {
        let c = ManualClock::new(100);
        c.set(50);
    }

    #[test]
    fn shared_manual_clock_is_visible_through_handle() {
        let (shared, driver) = SharedClock::manual(0);
        driver.advance(42);
        assert_eq!(shared.now(), 42);
    }

    #[test]
    fn real_clock_is_monotonic_enough() {
        let c = RealClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // Sanity: after 2020-01-01 in ms.
        assert!(a > 1_577_836_800_000);
    }

    #[test]
    fn skewed_clock_applies_offset() {
        let (shared, driver) = SharedClock::manual(1000);
        let fast = SkewedClock::new(shared.clone(), 300);
        let slow = SkewedClock::new(shared.clone(), -300);
        assert_eq!(fast.now(), 1300);
        assert_eq!(slow.now(), 700);
        driver.advance(100);
        assert_eq!(fast.now(), 1400);
    }

    #[test]
    fn skewed_clock_saturates_at_zero() {
        let (shared, _driver) = SharedClock::manual(10);
        let slow = SkewedClock::new(shared, -100);
        assert_eq!(slow.now(), 0);
    }
}
