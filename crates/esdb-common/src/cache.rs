//! Sharded, weight-budgeted LRU caches.
//!
//! ESDB's workloads are extremely skewed (paper §1): a handful of hot
//! tenants issue the same filter sub-plans against the same immutable
//! segments thousands of times per refresh interval. The query layer
//! amortizes that repetition through two caches (segment filter results
//! and whole shard-level request results), both built on the generic
//! [`ShardedCache`] here.
//!
//! Design:
//!
//! * **Sharded** — the key hash picks one of 16 independent LRU shards,
//!   each behind its own mutex, so concurrent scatter-gather threads do
//!   not serialize on a single cache lock.
//! * **Weight-budgeted** — every entry carries a caller-supplied weight
//!   (bytes for posting lists, `1` for entry-count budgets); inserting
//!   past the budget evicts from the cold end of the affected shard.
//! * **Deterministic** — shard selection and eviction order depend only
//!   on the key values and the operation sequence, never on addresses or
//!   wall-clock time, so cached and uncached runs stay reproducible.

use crate::fastmap::{fast_map, FastMap};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent LRU shards (power of two).
const CACHE_SHARDS: usize = 16;

/// Slab sentinel for "no node".
const NIL: usize = usize::MAX;

/// Point-in-time counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay within the weight budget.
    pub evictions: u64,
    /// Current total weight of resident entries (bytes, or entry count,
    /// depending on what the caller charges per entry).
    pub bytes: u64,
    /// Resident entries.
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One LRU shard: an intrusive doubly-linked list over a slab, indexed by
/// a hash map. `head` is the most recently used node.
struct LruShard<K, V> {
    map: FastMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    weight: u64,
}

struct Node<K, V> {
    key: K,
    value: V,
    weight: u64,
    prev: usize,
    next: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new() -> Self {
        LruShard {
            map: fast_map(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            weight: 0,
        }
    }

    /// Detaches node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links node `i` at the hot end.
    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let i = *self.map.get(key)?;
        self.touch(i);
        Some(self.nodes[i].value.clone())
    }

    /// Removes node `i` entirely, returning its weight.
    fn remove_node(&mut self, i: usize) -> u64 {
        self.unlink(i);
        let w = self.nodes[i].weight;
        self.map.remove(&self.nodes[i].key);
        self.weight -= w;
        self.free.push(i);
        w
    }

    /// Evicts cold entries until the shard fits `budget`; returns how many
    /// entries were dropped.
    fn evict_to(&mut self, budget: u64) -> u64 {
        let mut evicted = 0;
        while self.weight > budget && self.tail != NIL {
            self.remove_node(self.tail);
            evicted += 1;
        }
        evicted
    }

    fn insert(&mut self, key: K, value: V, weight: u64, budget: u64) -> u64 {
        if let Some(&i) = self.map.get(&key) {
            self.weight = self.weight - self.nodes[i].weight + weight;
            self.nodes[i].value = value;
            self.nodes[i].weight = weight;
            self.touch(i);
        } else {
            let node = Node {
                key: key.clone(),
                value,
                weight,
                prev: NIL,
                next: NIL,
            };
            let i = match self.free.pop() {
                Some(i) => {
                    self.nodes[i] = node;
                    i
                }
                None => {
                    self.nodes.push(node);
                    self.nodes.len() - 1
                }
            };
            self.map.insert(key, i);
            self.weight += weight;
            self.push_front(i);
        }
        self.evict_to(budget)
    }

    fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let mut doomed: Vec<usize> = Vec::new();
        let mut i = self.head;
        while i != NIL {
            if !keep(&self.nodes[i].key) {
                doomed.push(i);
            }
            i = self.nodes[i].next;
        }
        for i in doomed {
            self.remove_node(i);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.weight = 0;
    }
}

/// A sharded, weight-budgeted LRU cache.
///
/// ```
/// use esdb_common::cache::ShardedCache;
///
/// let cache: ShardedCache<u64, String> = ShardedCache::new(1 << 20);
/// cache.insert(1, "hot".to_string(), 3);
/// assert_eq!(cache.get(&1), Some("hot".to_string()));
/// assert_eq!(cache.get(&2), None);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    /// Per-shard weight budget (total budget / shard count).
    shard_budget: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// Creates a cache holding at most `budget` total weight.
    pub fn new(budget: u64) -> Self {
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(LruShard::new()))
                .collect(),
            shard_budget: AtomicU64::new(budget / CACHE_SHARDS as u64),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The total weight budget currently in force.
    pub fn budget(&self) -> u64 {
        self.shard_budget.load(Ordering::Relaxed) * CACHE_SHARDS as u64
    }

    /// Changes the weight budget, evicting immediately if it shrank.
    pub fn set_budget(&self, budget: u64) {
        let per_shard = budget / CACHE_SHARDS as u64;
        self.shard_budget.store(per_shard, Ordering::Relaxed);
        let mut evicted = 0;
        for shard in &self.shards {
            evicted += shard.lock().evict_to(per_shard);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = crate::fastmap::FxHasher::default();
        key.hash(&mut h);
        // fmix so low bits of weak FxHash output are avalanche-mixed
        // before selecting the shard.
        let i = crate::hash::fmix64(h.finish()) as usize % CACHE_SHARDS;
        &self.shards[i]
    }

    /// Looks up `key`, cloning the value out and marking it hot.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = self.shard_of(key).lock().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Inserts `key → value` charging `weight` against the budget.
    /// Entries heavier than a whole shard's budget are not admitted (they
    /// would evict everything and then be evicted themselves).
    pub fn insert(&self, key: K, value: V, weight: u64) {
        let budget = self.shard_budget.load(Ordering::Relaxed);
        if weight > budget {
            return;
        }
        let evicted = self
            .shard_of(&key)
            .lock()
            .insert(key, value, weight, budget);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops every entry whose key fails `keep` (invalidation sweeps).
    pub fn retain(&self, keep: impl Fn(&K) -> bool) {
        for shard in &self.shards {
            shard.lock().retain(&keep);
        }
    }

    /// Drops everything (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        let mut bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let s = shard.lock();
            bytes += s.weight;
            entries += s.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cache whose keys all land in one shard would be ideal for order
    /// tests; instead use enough budget slack that sharding never splits
    /// the working set unexpectedly.
    fn small() -> ShardedCache<u64, u64> {
        ShardedCache::new(16 * 100) // 100 weight per shard
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = small();
        assert_eq!(c.get(&1), None);
        c.insert(1, 10, 1);
        assert_eq!(c.get(&1), Some(10));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn overwrite_updates_weight() {
        let c = small();
        c.insert(7, 1, 10);
        c.insert(7, 2, 30);
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 30);
        assert_eq!(c.get(&7), Some(2));
    }

    #[test]
    fn eviction_is_lru_within_a_shard() {
        // Single-shard behavior tested directly on LruShard to avoid
        // depending on which shard each key hashes to.
        let mut s: LruShard<u64, u64> = LruShard::new();
        s.insert(1, 1, 40, 100);
        s.insert(2, 2, 40, 100);
        assert_eq!(s.get(&1), Some(1)); // 1 is now hotter than 2
        let evicted = s.insert(3, 3, 40, 100);
        assert_eq!(evicted, 1, "over budget: one entry must go");
        assert_eq!(s.get(&2), None, "coldest entry (2) was evicted");
        assert_eq!(s.get(&1), Some(1));
        assert_eq!(s.get(&3), Some(3));
    }

    #[test]
    fn oversized_entries_not_admitted() {
        let c = small();
        c.insert(1, 1, 10_000); // heavier than one shard's budget
        assert_eq!(c.get(&1), None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn shrinking_budget_evicts() {
        let c = small();
        for k in 0..50u64 {
            c.insert(k, k, 10);
        }
        let before = c.stats();
        assert!(before.entries > 0);
        c.set_budget(0);
        let after = c.stats();
        assert_eq!(after.entries, 0);
        assert_eq!(after.bytes, 0);
        assert!(after.evictions >= before.entries);
    }

    #[test]
    fn retain_drops_matching_keys() {
        let c = small();
        for k in 0..20u64 {
            c.insert(k, k, 1);
        }
        c.retain(|&k| k % 2 == 0);
        for k in 0..20u64 {
            assert_eq!(c.get(&k).is_some(), k % 2 == 0, "key {k}");
        }
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c = small();
        c.insert(1, 1, 1);
        assert_eq!(c.get(&1), Some(1));
        c.clear();
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut s: LruShard<u64, u64> = LruShard::new();
        for round in 0..10u64 {
            for k in 0..5u64 {
                s.insert(round * 5 + k, k, 20, 100);
            }
        }
        // Budget admits 5 live entries; the slab must not grow per round.
        assert!(s.nodes.len() <= 6, "slab grew to {}", s.nodes.len());
        assert_eq!(s.map.len(), 5);
    }
}
