//! Common foundation types for ESDB-RS.
//!
//! This crate hosts the vocabulary shared by every other crate in the
//! workspace:
//!
//! * strongly-typed identifiers ([`ids::TenantId`], [`ids::RecordId`],
//!   [`ids::ShardId`], [`ids::NodeId`]) and millisecond timestamps,
//! * the two independent hash functions used by ESDB's routing layer
//!   ([`hash::murmur3_32`] / [`hash::h1`] / [`hash::h2`]), implemented from
//!   scratch to match the behaviour the paper inherits from Elasticsearch,
//! * clock abstractions ([`clock::Clock`]) with real and simulated
//!   implementations so the discrete-event cluster simulator and the real
//!   storage engine share code,
//! * the Zipf(θ) sampler ([`zipf::ZipfSampler`]) used by the paper's
//!   workload generator (§6.1),
//! * light-weight statistics helpers ([`stats`]) used by the monitor and the
//!   benchmark harness,
//! * sharded weight-budgeted LRU caches ([`cache::ShardedCache`]) backing
//!   the skew-aware query caches, and
//! * the workspace-wide error type ([`error::EsdbError`]).

pub mod cache;
pub mod clock;
pub mod error;
pub mod exec;
pub mod fastmap;
pub mod hash;
pub mod ids;
pub mod stats;
pub mod zipf;

pub use cache::{CacheStats, ShardedCache};
pub use clock::{Clock, ManualClock, RealClock, SharedClock};
pub use error::{EsdbError, Result};
pub use exec::Executor;
pub use ids::{NodeId, RecordId, ShardId, TenantId, TimestampMs};
pub use stats::RejectedCounts;
