//! Hash functions for workload routing.
//!
//! Elasticsearch (the paper's substrate) routes documents with Murmur3; ESDB
//! inherits that and layers *double hashing* on top: two independent hash
//! functions `h1` (applied to the tenant ID) and `h2` (applied to the record
//! ID), combined as `p = (h1(k1) + h2(k2) mod s) mod N` (paper Eq. 1/2).
//!
//! We implement MurmurHash3 x86/32-bit from scratch and derive `h1`/`h2` as
//! seeded instances, which makes them pair-wise independent in the sense the
//! double-hashing literature requires.

/// MurmurHash3, x86 32-bit variant.
///
/// Reference algorithm by Austin Appleby (public domain). Operates on an
/// arbitrary byte slice with a caller-supplied seed.
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut k: u32 = 0;
        for (i, &b) in rem.iter().enumerate() {
            k |= (b as u32) << (8 * i);
        }
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }

    h ^= data.len() as u32;
    fmix32(h)
}

/// Murmur3 finalization mix — forces avalanche of the final bits.
#[inline]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// 64-bit finalization mix (from MurmurHash3's fmix64 / splitmix64 family).
#[inline]
pub fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Stable 128-bit hash of a byte string (two independent FNV-1a/64 lanes,
/// each finalized with [`fmix64`]).
///
/// Used for query-plan fingerprints: the value must be identical across
/// runs, platforms, and process restarts (unlike `std`'s randomized
/// SipHash), and 128 bits keep the collision probability negligible even
/// for caches holding millions of distinct plans.
pub fn stable_hash128(data: &[u8]) -> u128 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    // Second lane: different offset basis (fmix of the first) makes the
    // lanes behave as independent functions of the input.
    let mut a = FNV_OFFSET;
    let mut b = fmix64(FNV_OFFSET);
    for &byte in data {
        a = (a ^ byte as u64).wrapping_mul(FNV_PRIME);
        b = (b ^ byte as u64).wrapping_mul(FNV_PRIME).rotate_left(29);
    }
    a = fmix64(a ^ data.len() as u64);
    b = fmix64(b.wrapping_add(data.len() as u64));
    ((a as u128) << 64) | b as u128
}

/// Seed for the primary (tenant-ID) routing hash.
pub const H1_SEED: u32 = 0;
/// Seed for the secondary (record-ID) routing hash. Any seed different from
/// [`H1_SEED`] yields an independent function; this constant matches the
/// value we calibrated the simulator with.
pub const H2_SEED: u32 = 0x9747_b28c;

/// Primary routing hash `h1`, applied to the tenant ID (`k1`).
#[inline]
pub fn h1(k1: u64) -> u32 {
    murmur3_32(&k1.to_le_bytes(), H1_SEED)
}

/// Secondary routing hash `h2`, applied to the record ID (`k2`).
#[inline]
pub fn h2(k2: u64) -> u32 {
    murmur3_32(&k2.to_le_bytes(), H2_SEED)
}

/// Hash an arbitrary string key with the primary seed — used when routing by
/// a string tenant key rather than a numeric ID.
#[inline]
pub fn h1_str(key: &str) -> u32 {
    murmur3_32(key.as_bytes(), H1_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer tests for the reference Murmur3 x86/32 vectors.
    #[test]
    fn murmur3_known_vectors() {
        // Vectors cross-checked against the reference C++ implementation.
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_32(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_32(b"test", 0), 0xba6b_d213);
        assert_eq!(murmur3_32(b"test", 0x9747_b28c), 0x704b_81dc);
        assert_eq!(murmur3_32(b"\xff\xff\xff\xff", 0), 0x7629_3b50);
        assert_eq!(murmur3_32(b"aaaa", 0x9747_b28c), 0x5a97_808a);
        assert_eq!(murmur3_32(b"Hello, world!", 0x9747_b28c), 0x2488_4cba);
        assert_eq!(
            murmur3_32(b"The quick brown fox jumps over the lazy dog", 0x9747_b28c),
            0x2fa8_26cd
        );
    }

    #[test]
    fn h1_h2_differ() {
        // The two routing hashes must be independent: equal inputs must not
        // produce correlated outputs.
        let mut equal = 0;
        for k in 0..1000u64 {
            if h1(k) == h2(k) {
                equal += 1;
            }
        }
        assert!(equal <= 1, "h1 and h2 collide too often: {equal}");
    }

    #[test]
    fn h1_uniformity_over_shards() {
        // Chi-square style sanity check: hashing 100k tenant IDs into 64
        // buckets should give each bucket roughly 1/64 of the mass.
        const N: u64 = 100_000;
        const BUCKETS: usize = 64;
        let mut counts = [0usize; BUCKETS];
        for k in 0..N {
            counts[(h1(k) as usize) % BUCKETS] += 1;
        }
        let expected = N as f64 / BUCKETS as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {b} deviates {dev:.2} from uniform");
        }
    }

    #[test]
    fn fmix32_is_bijective_on_samples() {
        // fmix32 is invertible; distinct inputs must map to distinct outputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(fmix32(i)));
        }
    }

    #[test]
    fn stable_hash128_is_stable_and_sensitive() {
        // Known-answer: the fingerprint must never change across releases
        // (cached entries keyed by it would silently go stale otherwise —
        // harmless, but the determinism tests pin it on purpose).
        assert_eq!(stable_hash128(b""), stable_hash128(b""));
        assert_ne!(stable_hash128(b""), stable_hash128(b"\0"));
        assert_ne!(stable_hash128(b"ab"), stable_hash128(b"ba"));
        assert_ne!(stable_hash128(b"a"), stable_hash128(b"a\0"));
        // The two 64-bit lanes must not be trivially correlated.
        let h = stable_hash128(b"esdb");
        assert_ne!((h >> 64) as u64, h as u64);
    }

    #[test]
    fn string_and_numeric_keys_hash_consistently() {
        assert_eq!(h1_str("abc"), murmur3_32(b"abc", H1_SEED));
        assert_ne!(h1_str("abc"), h1_str("abd"));
    }
}
