//! Scoped-thread fork/join executor for per-shard fan-out.
//!
//! ESDB's scatter-gather paths (query fan-out over a tenant's shard
//! span, refresh/flush/merge maintenance sweeps) are embarrassingly
//! parallel across shards. This module provides the one primitive they
//! all share: run a closure over a slice of items on a bounded pool of
//! scoped threads and return the results **in item order**, so callers
//! observe identical output whether the work ran sequentially or
//! parallel.
//!
//! Built on [`std::thread::scope`] — no external thread-pool dependency
//! — with work distributed by an atomic cursor so a slow item (one hot
//! shard with a large posting list) does not stall the other workers
//! behind a static partition.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fork/join executor with a fixed parallelism degree.
///
/// `parallelism == 1` never spawns a thread: the closure runs on the
/// caller's thread in item order, giving a deterministic sequential
/// mode for debugging and baseline benchmarking. Degrees above 1 spawn
/// at most `min(parallelism, items.len())` scoped worker threads per
/// call; threads live only for the duration of the call, so the
/// executor holds no state beyond the configured degree.
#[derive(Debug, Clone)]
pub struct Executor {
    parallelism: usize,
}

impl Executor {
    /// An executor with the given degree; `0` selects the number of
    /// available CPU cores.
    pub fn new(parallelism: usize) -> Self {
        let parallelism = if parallelism == 0 {
            available_parallelism()
        } else {
            parallelism
        };
        Executor { parallelism }
    }

    /// A deterministic sequential executor (degree 1).
    pub fn sequential() -> Self {
        Executor { parallelism: 1 }
    }

    /// The configured degree (≥ 1).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Applies `f` to every item, returning results in item order.
    ///
    /// `f` receives `(index, &item)`. Work is claimed dynamically: each
    /// worker takes the next unclaimed index, so skewed per-item cost
    /// balances across threads. If `f` panics on any item, the panic is
    /// propagated to the caller after all workers stop claiming work.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.parallelism.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(chunk) => indexed.extend(chunk),
                    Err(p) => panic_payload = Some(p),
                }
            }
        });
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        // Dynamic claiming returns chunks out of order; restore item
        // order so parallel output is indistinguishable from sequential.
        indexed.sort_unstable_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for Executor {
    /// Defaults to all available cores.
    fn default() -> Self {
        Executor::new(0)
    }
}

/// The number of CPU cores the OS reports, with a floor of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let seq = Executor::sequential().map(&items, |i, v| (i as u64) * 31 + v);
        for degree in [2, 3, 8] {
            let par = Executor::new(degree).map(&items, |i, v| (i as u64) * 31 + v);
            assert_eq!(seq, par, "degree {degree} diverged");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let ex = Executor::new(4);
        assert_eq!(ex.map(&[] as &[u32], |_, v| *v), Vec::<u32>::new());
        assert_eq!(ex.map(&[7u32], |i, v| v + i as u32), vec![7]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        Executor::new(4).map(&items, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Hold the slot long enough for other workers to claim work.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(seen.lock().unwrap().len() > 1, "expected work on >1 thread");
    }

    #[test]
    fn degree_zero_resolves_to_cores() {
        assert_eq!(Executor::new(0).parallelism(), available_parallelism());
        assert!(Executor::default().parallelism() >= 1);
    }

    #[test]
    fn work_claiming_covers_every_item_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Executor::new(8).map(&items, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        Executor::new(4).map(&items, |i, _| {
            if i == 9 {
                panic!("boom");
            }
        });
    }
}
