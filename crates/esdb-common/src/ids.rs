//! Strongly-typed identifiers used across the workspace.
//!
//! The paper routes every write by a *(tenant ID, record ID, creation time)*
//! triple (§4.2). We keep these as newtypes so the routing, balancing, and
//! consensus layers cannot accidentally swap them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tenant (seller) identifier — the primary routing attribute `k1`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u64);

/// A record (transaction-log row) identifier — the secondary routing
/// attribute `k2`. In production this is an auto-increment unique key.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct RecordId(pub u64);

/// A shard index in `0..N` where `N` is the cluster shard count.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct ShardId(pub u32);

/// A worker-node index.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

/// A millisecond timestamp. Under the simulator this is simulated time; in
/// the embedded engine it is wall-clock milliseconds since the UNIX epoch.
pub type TimestampMs = u64;

impl TenantId {
    /// Returns the raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl RecordId {
    /// Returns the raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl ShardId {
    /// Returns the shard index as a `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Returns the node index as a `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record-{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u64> for TenantId {
    fn from(v: u64) -> Self {
        TenantId(v)
    }
}

impl From<u64> for RecordId {
    fn from(v: u64) -> Self {
        RecordId(v)
    }
}

impl From<u32> for ShardId {
    fn from(v: u32) -> Self {
        ShardId(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(TenantId(7).to_string(), "tenant-7");
        assert_eq!(RecordId(9).to_string(), "record-9");
        assert_eq!(ShardId(3).to_string(), "shard-3");
        assert_eq!(NodeId(1).to_string(), "node-1");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(TenantId::from(5).raw(), 5);
        assert_eq!(RecordId::from(6).raw(), 6);
        assert_eq!(ShardId::from(4).index(), 4);
        assert_eq!(NodeId::from(2).index(), 2);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TenantId(1) < TenantId(2));
        assert!(RecordId(10) > RecordId(9));
    }
}
