//! Zipf(θ) sampling for skewed multi-tenant workloads.
//!
//! The paper's benchmark "lets the workload generators sample tenant IDs
//! from Zipf distribution tunable by a skewness factor θ. The sampling size
//! of tenant k is set to be proportional to (1/k)^θ" (§6.1), with
//! θ ∈ {0, 0.5, 1, 1.5, 2}. θ=0 degenerates to uniform; θ=1 is closest to
//! Alibaba's production distribution.
//!
//! Two samplers are provided:
//!
//! * [`ZipfSampler`] — exact inverse-CDF sampling over a precomputed
//!   cumulative table (O(log n) per sample, exact for any θ). Used by the
//!   figure harnesses where determinism and exactness matter.
//! * [`ZipfRejection`] — the rejection-inversion method (Hörmann 1996) with
//!   O(1) state, used where tables for very large n are undesirable.

use rand::Rng;

/// Exact Zipf sampler over ranks `1..=n` via a cumulative probability table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative, normalized weights; `cdf[k-1]` = P(rank ≤ k).
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Builds a sampler for `n` ranks with skewness `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift in the final entry.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf, theta }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Configured skewness factor.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Samples a 1-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.rank_for(u)
    }

    /// Deterministic inverse-CDF lookup: smallest rank with `cdf >= u`.
    pub fn rank_for(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// O(1)-state Zipf sampler using rejection inversion (Hörmann 1996), as
/// popularized by YCSB. Exact distribution, no table.
#[derive(Debug, Clone)]
pub struct ZipfRejection {
    n: u64,
    theta: f64,
    // Precomputed constants.
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl ZipfRejection {
    /// Builds a rejection sampler for ranks `1..=n`, `theta >= 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "ZipfRejection needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let h_integral_x1 = Self::h_integral(1.5, theta) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, theta);
        let s =
            2.0 - Self::h_integral_inv(Self::h_integral(2.5, theta) - Self::h(2.0, theta), theta);
        ZipfRejection {
            n,
            theta,
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// H(x) = ∫ h, the integral of the unnormalized density.
    fn h_integral(x: f64, theta: f64) -> f64 {
        let log_x = x.ln();
        Self::helper2((1.0 - theta) * log_x) * log_x
    }

    /// h(x) = x^-θ.
    fn h(x: f64, theta: f64) -> f64 {
        (-theta * x.ln()).exp()
    }

    /// Inverse of `h_integral`.
    fn h_integral_inv(x: f64, theta: f64) -> f64 {
        let mut t = x * (1.0 - theta);
        if t < -1.0 {
            t = -1.0;
        }
        (Self::helper1(t) * x).exp()
    }

    /// (log1p(x))/x, stable near 0.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
        }
    }

    /// (exp(x)-1)/x, stable near 0.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
        }
    }

    /// Samples a 1-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u: f64 =
                self.h_integral_n + rng.random::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inv(u, self.theta);
            let mut k = (x + 0.5) as u64;
            k = k.clamp(1, self.n);
            if (k as f64 - x <= self.s)
                || (u
                    >= Self::h_integral(k as f64 + 0.5, self.theta) - Self::h(k as f64, self.theta))
            {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12, "rank {k} pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn theta_one_matches_harmonic() {
        let z = ZipfSampler::new(4, 1.0);
        let h4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((z.pmf(1) - 1.0 / h4).abs() < 1e-12);
        assert!((z.pmf(3) - (1.0 / 3.0) / h4).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = ZipfSampler::new(100, 1.5);
        for k in 2..=100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn rank_for_inverts_cdf_boundaries() {
        let z = ZipfSampler::new(3, 1.0);
        assert_eq!(z.rank_for(0.0), 1);
        assert_eq!(z.rank_for(1.0), 3);
        // Just past the rank-1 mass we must land on rank 2.
        let p1 = z.pmf(1);
        assert_eq!(z.rank_for(p1 + 1e-9), 2);
    }

    #[test]
    fn sample_frequencies_track_pmf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 51];
        const N: usize = 200_000;
        for _ in 0..N {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [1usize, 2, 5, 10] {
            let observed = counts[k] as f64 / N as f64;
            let expected = z.pmf(k);
            let rel = (observed - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "rank {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn rejection_matches_table_sampler() {
        let table = ZipfSampler::new(1000, 1.0);
        let rej = ZipfRejection::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        const N: usize = 200_000;
        let mut c_top = 0usize;
        for _ in 0..N {
            if rej.sample(&mut rng) == 1 {
                c_top += 1;
            }
        }
        let observed = c_top as f64 / N as f64;
        let expected = table.pmf(1);
        assert!(
            (observed - expected).abs() / expected < 0.05,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn rejection_stays_in_range() {
        let rej = ZipfRejection::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k = rej.sample(&mut rng);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
