//! Statistics helpers used by the workload monitor and the benchmark
//! harness (means, standard deviations, quantiles, fixed-resolution
//! latency histograms).

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Quantile via linear interpolation on a *sorted* slice. `q` in `[0,1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Sorts a copy of `xs` and returns the `q`-quantile.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile_sorted(&v, q)
}

/// A fixed-bucket latency histogram with exponentially-growing bucket
/// bounds, good enough for p50/p90/p99/p999 reporting without storing every
/// sample.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Upper bounds (exclusive) for each bucket, in microseconds.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Histogram covering 1 µs .. ~1.2 hours with ~4% resolution.
    pub fn new() -> Self {
        let mut bounds = Vec::new();
        let mut b = 1.0f64;
        while b < 4.3e9 {
            bounds.push(b as u64);
            b *= 1.04;
        }
        let n = bounds.len();
        LatencyHistogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency observation in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = self.bounds.partition_point(|&b| b <= us);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_us += us as u128;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// Maximum recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Approximate `q`-quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i == 0 {
                    self.bounds.first().copied().unwrap_or(0)
                } else if i >= self.bounds.len() {
                    self.max_us
                } else {
                    self.bounds[i]
                };
            }
        }
        self.max_us
    }

    /// Merges another histogram (same construction) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.bounds.len(),
            other.bounds.len(),
            "histogram shapes differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(o.min(), Some(1.0));
        assert_eq!(o.max(), Some(10.0));
        assert_eq!(o.count(), 5);
    }

    #[test]
    fn online_stats_merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for &x in a {
            sa.push(x);
        }
        for &x in b {
            sb.push(x);
        }
        sa.merge(&sb);
        assert!((sa.mean() - mean(&xs)).abs() < 1e-9);
        assert!((sa.stddev() - stddev(&xs)).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.stddev(), 0.0);
        assert_eq!(o.min(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.06, "p50 = {p50}");
        let p99 = h.quantile_us(0.99) as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.06, "p99 = {p99}");
        assert_eq!(h.max_us(), 10_000);
        assert!((h.mean_us() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_us(10);
        b.record_us(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 1000);
    }
}
