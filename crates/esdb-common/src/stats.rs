//! Statistics helpers used by the workload monitor and the benchmark
//! harness (means, standard deviations, quantiles, fixed-resolution
//! latency histograms).
//!
//! Quantiles and histograms delegate to `esdb-telemetry`, which owns the
//! single codebase-wide interpolation rule (see
//! `esdb_telemetry::histogram`): exact sample sets interpolate linearly
//! between order statistics; bucketed histograms report the inclusive
//! upper bound of the first bucket whose cumulative count reaches
//! `ceil(q · n)`, clamped to the recorded max.

use esdb_telemetry::HistogramSnapshot;

pub use esdb_telemetry::{quantile, quantile_sorted};

/// Requests a serving layer rejected before they reached the engine,
/// broken down by the reason taxonomy the network front-end enforces.
/// The embedded API never rejects (all four stay 0 there); the server
/// fills these so the work-conservation invariant
/// `issued == admitted + rejected.total()` extends through the network
/// layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectedCounts {
    /// Authentication/authorization failures (unknown token, tenant
    /// mismatch, non-admin on an admin endpoint).
    pub auth: u64,
    /// Per-tenant in-flight quota exceeded.
    pub quota: u64,
    /// Per-tenant token-bucket rate limit exceeded.
    pub rate: u64,
    /// Shed under overload as one of the hottest tenants.
    pub shed: u64,
}

impl RejectedCounts {
    /// Total rejected requests across all reasons.
    pub fn total(&self) -> u64 {
        self.auth + self.quota + self.rate + self.shed
    }

    /// Per-reason difference `self - base`, saturating at zero (delta
    /// snapshots over monotone counters).
    pub fn saturating_sub(&self, base: &RejectedCounts) -> RejectedCounts {
        RejectedCounts {
            auth: self.auth.saturating_sub(base.auth),
            quota: self.quota.saturating_sub(base.quota),
            rate: self.rate.saturating_sub(base.rate),
            shed: self.shed.saturating_sub(base.shed),
        }
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// A latency histogram for p50/p90/p99/p999 reporting without storing
/// every sample. Thin microsecond-unit wrapper over the telemetry
/// crate's log-bucketed [`HistogramSnapshot`] (16 sub-buckets per power
/// of two, ≤6.25% relative bucket width).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    inner: HistogramSnapshot,
}

impl LatencyHistogram {
    /// Empty histogram covering the full `u64` microsecond range.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.inner.record(us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.inner.mean()
    }

    /// Maximum recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.inner.max()
    }

    /// Approximate `q`-quantile in microseconds (the canonical bucketed
    /// rule from `esdb_telemetry::histogram`).
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.inner.merge(&other.inner);
    }

    /// The underlying telemetry snapshot.
    pub fn snapshot(&self) -> &HistogramSnapshot {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(o.min(), Some(1.0));
        assert_eq!(o.max(), Some(10.0));
        assert_eq!(o.count(), 5);
    }

    #[test]
    fn online_stats_merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for &x in a {
            sa.push(x);
        }
        for &x in b {
            sb.push(x);
        }
        sa.merge(&sb);
        assert!((sa.mean() - mean(&xs)).abs() < 1e-9);
        assert!((sa.stddev() - stddev(&xs)).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.stddev(), 0.0);
        assert_eq!(o.min(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.5) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.06, "p50 = {p50}");
        let p99 = h.quantile_us(0.99) as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.06, "p99 = {p99}");
        assert_eq!(h.max_us(), 10_000);
        assert!((h.mean_us() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_us(10);
        b.record_us(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 1000);
    }
}
