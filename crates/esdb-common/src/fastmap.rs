//! Fast hash maps for hot paths.
//!
//! The routing and monitoring layers hash small integer keys (tenant IDs,
//! shard indices) millions of times per simulated second. SipHash (std's
//! default) is overkill there; this module provides an FxHash-style
//! multiply-xor hasher and map/set aliases, following the standard
//! performance guidance for database engines. HashDoS is not a concern:
//! keys are internal identifiers, not attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (the rustc `FxHasher` algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FastMap`].
pub fn fast_map<K, V>() -> FastMap<K, V> {
    FastMap::default()
}

/// Creates an empty [`FastSet`].
pub fn fast_set<K>() -> FastSet<K> {
    FastSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FastMap<u64, &str> = fast_map();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn set_dedup() {
        let mut s: FastSet<u32> = fast_set();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hasher_distinguishes_lengths() {
        // The tail-length mix must differentiate "ab" from "ab\0".
        use std::hash::Hash;
        fn h<T: Hash>(v: T) -> u64 {
            let mut hasher = FxHasher::default();
            v.hash(&mut hasher);
            hasher.finish()
        }
        assert_ne!(h([1u8, 2].as_slice()), h([1u8, 2, 0].as_slice()));
        assert_ne!(h(1u64), h(2u64));
    }
}
