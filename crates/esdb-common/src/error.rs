//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, EsdbError>;

/// Errors produced anywhere in ESDB-RS.
///
/// The variants mirror the failure domains of the paper's architecture:
/// storage (translog / segments), routing (rule lookup), consensus (rule
/// commit), query (parse / plan / execute), and cluster management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EsdbError {
    /// An I/O failure in the translog or segment store.
    Io(String),
    /// Data corruption detected (bad checksum, truncated record, ...).
    Corruption(String),
    /// No secondary hashing rule matches a write/read (should not happen
    /// when the rule list is initialized with the catch-all rule).
    NoMatchingRule { tenant: u64, created_at: u64 },
    /// A consensus round was aborted (participant error or timeout).
    ConsensusAborted(String),
    /// A write arrived for a blocked window during rule commit.
    WorkloadBlocked { until: u64 },
    /// SQL or DSL parse error.
    Parse(String),
    /// Query planning error (unknown column, unsupported predicate, ...).
    Plan(String),
    /// Query execution error.
    Execution(String),
    /// Document validation error (missing routing fields, bad types, ...).
    InvalidDocument(String),
    /// Unknown collection/table.
    UnknownCollection(String),
    /// A requested shard/node does not exist.
    UnknownShard(u32),
    /// The cluster is misconfigured (e.g. zero shards).
    Config(String),
    /// The operation raced with a concurrent change and should be retried.
    Retry(String),
    /// Replication failure (diff mismatch, missing segment, ...).
    Replication(String),
}

impl fmt::Display for EsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsdbError::Io(m) => write!(f, "io error: {m}"),
            EsdbError::Corruption(m) => write!(f, "corruption: {m}"),
            EsdbError::NoMatchingRule { tenant, created_at } => write!(
                f,
                "no secondary hashing rule matches tenant {tenant} at t={created_at}"
            ),
            EsdbError::ConsensusAborted(m) => write!(f, "consensus aborted: {m}"),
            EsdbError::WorkloadBlocked { until } => {
                write!(f, "workload blocked until t={until} by rule commit")
            }
            EsdbError::Parse(m) => write!(f, "parse error: {m}"),
            EsdbError::Plan(m) => write!(f, "plan error: {m}"),
            EsdbError::Execution(m) => write!(f, "execution error: {m}"),
            EsdbError::InvalidDocument(m) => write!(f, "invalid document: {m}"),
            EsdbError::UnknownCollection(m) => write!(f, "unknown collection: {m}"),
            EsdbError::UnknownShard(s) => write!(f, "unknown shard: {s}"),
            EsdbError::Config(m) => write!(f, "config error: {m}"),
            EsdbError::Retry(m) => write!(f, "retryable conflict: {m}"),
            EsdbError::Replication(m) => write!(f, "replication error: {m}"),
        }
    }
}

impl std::error::Error for EsdbError {}

impl From<std::io::Error> for EsdbError {
    fn from(e: std::io::Error) -> Self {
        EsdbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EsdbError::NoMatchingRule {
            tenant: 42,
            created_at: 1000,
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("1000"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: EsdbError = io.into();
        assert!(matches!(e, EsdbError::Io(_)));
    }
}
