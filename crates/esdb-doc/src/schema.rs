//! Collection schemas: field types and index declarations.
//!
//! The schema drives the query planner's access-path choices (paper §5.1):
//!
//! * fields with `indexed` get single-column inverted/numeric indexes,
//! * [`CompositeIndexDef`]s declare concatenated-column composite indexes
//!   (leftmost-prefix matchable),
//! * the *scan list* names low-cardinality columns that are cheaper to
//!   filter via a doc-value sequential scan than via their own index,
//! * `attr_index_top_k` configures frequency-based indexing of the
//!   "attributes" sub-attributes (paper §3.2 / §6.3.3): only the `k` most
//!   frequently queried sub-attributes get indexes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Declared type of a structured field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// 64-bit integer.
    Long,
    /// 64-bit float.
    Double,
    /// Boolean.
    Bool,
    /// Millisecond timestamp.
    Timestamp,
    /// Exact-match string (not analyzed).
    Keyword,
    /// Full-text string (tokenized by the analyzer).
    Text,
}

/// Declaration of one structured field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
    /// Whether a single-column index is built.
    pub indexed: bool,
    /// Whether columnar doc values are stored (needed for sequential scan,
    /// sorting, and aggregation).
    pub doc_values: bool,
}

/// A composite index over a left-to-right sequence of columns, stored as a
/// 1-D BKD-style tree over the order-preserving concatenation of the column
/// values (paper §5.1, "we build concatenated columns and one-dimension
/// Bkd-trees on these columns").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositeIndexDef {
    /// Index name (by convention the columns joined with `_`).
    pub name: String,
    /// Ordered column list; queries must match a leftmost prefix with
    /// equalities, optionally followed by one range predicate.
    pub columns: Vec<String>,
}

/// Schema of a collection (table).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionSchema {
    /// Collection name.
    pub name: String,
    /// Field declarations, keyed by name.
    fields: BTreeMap<String, FieldDef>,
    /// Composite index declarations.
    pub composite_indexes: Vec<CompositeIndexDef>,
    /// Columns eligible for doc-value sequential scan as an access path.
    pub scan_list: Vec<String>,
    /// Frequency-based indexing: how many of the most frequent
    /// sub-attributes receive indexes (0 disables sub-attribute indexing).
    pub attr_index_top_k: usize,
}

impl CollectionSchema {
    /// Starts building a schema.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            schema: CollectionSchema {
                name: name.into(),
                fields: BTreeMap::new(),
                composite_indexes: Vec::new(),
                scan_list: Vec::new(),
                attr_index_top_k: 0,
            },
        }
    }

    /// The schema every figure harness uses: the paper's transaction-log
    /// template (§6.1): transaction ID (record ID), tenant ID, creation
    /// time, plus status/group/amount/title columns and the composite index
    /// `tenant_id_created_time` from the paper's running example (Fig. 8).
    pub fn transaction_logs() -> CollectionSchema {
        CollectionSchema::builder("transaction_logs")
            .field("status", FieldType::Long, true, true)
            .field("group", FieldType::Long, true, true)
            .field("buyer_id", FieldType::Long, true, true)
            .field("amount", FieldType::Double, true, true)
            .field("province", FieldType::Keyword, true, true)
            .field("auction_title", FieldType::Text, true, false)
            .composite_index("tenant_id_created_time", &["tenant_id", "created_time"])
            .scan("status")
            .attr_top_k(30)
            .build()
    }

    /// Field lookup. The routing virtuals `tenant_id`, `record_id` and
    /// `created_time` are always defined.
    pub fn field(&self, name: &str) -> Option<FieldDef> {
        match name {
            "tenant_id" => Some(FieldDef {
                name: "tenant_id".into(),
                ty: FieldType::Long,
                indexed: true,
                doc_values: true,
            }),
            "record_id" => Some(FieldDef {
                name: "record_id".into(),
                ty: FieldType::Long,
                indexed: true,
                doc_values: true,
            }),
            "created_time" => Some(FieldDef {
                name: "created_time".into(),
                ty: FieldType::Timestamp,
                indexed: true,
                doc_values: true,
            }),
            _ => self.fields.get(name).cloned(),
        }
    }

    /// All declared (non-virtual) fields.
    pub fn fields(&self) -> impl Iterator<Item = &FieldDef> {
        self.fields.values()
    }

    /// Whether `column` is in the sequential-scan list.
    pub fn in_scan_list(&self, column: &str) -> bool {
        self.scan_list.iter().any(|c| c == column)
    }

    /// Composite indexes whose leftmost column is `column`.
    pub fn composites_starting_with(&self, column: &str) -> Vec<&CompositeIndexDef> {
        self.composite_indexes
            .iter()
            .filter(|c| c.columns.first().map(String::as_str) == Some(column))
            .collect()
    }
}

/// Builder for [`CollectionSchema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    schema: CollectionSchema,
}

impl SchemaBuilder {
    /// Declares a field.
    pub fn field(mut self, name: &str, ty: FieldType, indexed: bool, doc_values: bool) -> Self {
        self.schema.fields.insert(
            name.to_string(),
            FieldDef {
                name: name.to_string(),
                ty,
                indexed,
                doc_values,
            },
        );
        self
    }

    /// Declares a composite index over `columns` (leftmost-prefix rule).
    pub fn composite_index(mut self, name: &str, columns: &[&str]) -> Self {
        self.schema.composite_indexes.push(CompositeIndexDef {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Adds a column to the sequential-scan list.
    pub fn scan(mut self, column: &str) -> Self {
        self.schema.scan_list.push(column.to_string());
        self
    }

    /// Sets the frequency-based sub-attribute indexing budget.
    pub fn attr_top_k(mut self, k: usize) -> Self {
        self.schema.attr_index_top_k = k;
        self
    }

    /// Finishes the schema.
    pub fn build(self) -> CollectionSchema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_logs_schema_shape() {
        let s = CollectionSchema::transaction_logs();
        assert_eq!(s.name, "transaction_logs");
        assert!(s.field("status").unwrap().indexed);
        assert_eq!(s.field("auction_title").unwrap().ty, FieldType::Text);
        assert!(s.in_scan_list("status"));
        assert_eq!(s.attr_index_top_k, 30);
    }

    #[test]
    fn routing_virtuals_always_defined() {
        let s = CollectionSchema::builder("t").build();
        assert!(s.field("tenant_id").unwrap().indexed);
        assert_eq!(s.field("created_time").unwrap().ty, FieldType::Timestamp);
        assert!(s.field("nope").is_none());
    }

    #[test]
    fn composite_lookup_by_leading_column() {
        let s = CollectionSchema::transaction_logs();
        let c = s.composites_starting_with("tenant_id");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].columns, vec!["tenant_id", "created_time"]);
        assert!(s.composites_starting_with("status").is_empty());
    }
}
