//! Typed field values with a total order and an order-preserving byte
//! encoding.
//!
//! The composite index (paper §5.1) concatenates multiple column values into
//! a single key and stores those keys sorted in a 1-D BKD-style structure.
//! For range predicates to work on the concatenation, each value's byte
//! encoding must compare (as unsigned bytes) exactly like the value itself,
//! and the concatenation must respect field boundaries. [`FieldValue`]
//! provides `encode_ordered` / `decode_ordered` with those guarantees,
//! property-tested in this module and in the index crate.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A typed document field value.
///
/// The ordering is *total*: values of different types order by a fixed type
/// rank (Null < Bool < Int < Float < Timestamp < Str), then by value within
/// a type. Integers and floats are deliberately **not** cross-compared; the
/// schema layer ensures a column holds one type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Explicit null / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer (IDs, statuses, counters).
    Int(i64),
    /// 64-bit float (prices, weights). NaN is rejected at construction.
    Float(f64),
    /// Millisecond timestamp (kept distinct from Int for schema clarity).
    Timestamp(u64),
    /// UTF-8 string (keywords and full-text source).
    Str(String),
}

/// Type ranks used for cross-type total ordering.
fn type_rank(v: &FieldValue) -> u8 {
    match v {
        FieldValue::Null => 0,
        FieldValue::Bool(_) => 1,
        FieldValue::Int(_) => 2,
        FieldValue::Float(_) => 3,
        FieldValue::Timestamp(_) => 4,
        FieldValue::Str(_) => 5,
    }
}

impl Eq for FieldValue {}

impl PartialOrd for FieldValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FieldValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use FieldValue::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // total_cmp keeps -0.0 < 0.0, matching the ordered encoding.
            (Float(a), Float(b)) => a.total_cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Null => write!(f, "NULL"),
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::Int(i) => write!(f, "{i}"),
            FieldValue::Float(x) => write!(f, "{x}"),
            FieldValue::Timestamp(t) => write!(f, "ts:{t}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl FieldValue {
    /// Builds a float value, rejecting NaN (which would break the total
    /// order and the index encoding).
    pub fn float(x: f64) -> Option<FieldValue> {
        if x.is_nan() {
            None
        } else {
            Some(FieldValue::Float(x))
        }
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            FieldValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the timestamp payload if this is a `Timestamp`.
    pub fn as_timestamp(&self) -> Option<u64> {
        match self {
            FieldValue::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the float payload if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            FieldValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the bool payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, FieldValue::Null)
    }

    /// Appends an order-preserving encoding of this value to `out`.
    ///
    /// Properties (byte-wise unsigned comparison of encodings):
    /// * `a < b  ⇒  enc(a) < enc(b)` for same-type values,
    /// * cross-type values order by type rank (the leading tag byte),
    /// * an encoding is never a strict prefix of another, so concatenated
    ///   multi-field keys compare field-by-field.
    pub fn encode_ordered(&self, out: &mut Vec<u8>) {
        match self {
            FieldValue::Null => out.push(0x00),
            FieldValue::Bool(b) => {
                out.push(0x01);
                out.push(*b as u8);
            }
            FieldValue::Int(i) => {
                out.push(0x02);
                // Flip the sign bit so negative numbers sort first.
                let u = (*i as u64) ^ (1 << 63);
                out.extend_from_slice(&u.to_be_bytes());
            }
            FieldValue::Float(x) => {
                out.push(0x03);
                let bits = x.to_bits();
                // IEEE-754 total-order trick: flip all bits for negatives,
                // only the sign bit for positives.
                let u = if bits >> 63 == 1 {
                    !bits
                } else {
                    bits ^ (1 << 63)
                };
                out.extend_from_slice(&u.to_be_bytes());
            }
            FieldValue::Timestamp(t) => {
                out.push(0x04);
                out.extend_from_slice(&t.to_be_bytes());
            }
            FieldValue::Str(s) => {
                out.push(0x05);
                // Escape 0x00 -> 0x00 0xFF, terminate with 0x00 0x00 so no
                // encoding is a prefix of another and order is preserved.
                for &b in s.as_bytes() {
                    if b == 0x00 {
                        out.push(0x00);
                        out.push(0xFF);
                    } else {
                        out.push(b);
                    }
                }
                out.push(0x00);
                out.push(0x00);
            }
        }
    }

    /// Convenience: the ordered encoding as a fresh vector.
    pub fn to_ordered_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(10);
        self.encode_ordered(&mut v);
        v
    }

    /// Decodes one value from the front of `buf`, returning the value and
    /// the number of bytes consumed. Returns `None` on malformed input.
    pub fn decode_ordered(buf: &[u8]) -> Option<(FieldValue, usize)> {
        let tag = *buf.first()?;
        match tag {
            0x00 => Some((FieldValue::Null, 1)),
            0x01 => {
                let b = *buf.get(1)?;
                Some((FieldValue::Bool(b != 0), 2))
            }
            0x02 => {
                let bytes: [u8; 8] = buf.get(1..9)?.try_into().ok()?;
                let u = u64::from_be_bytes(bytes) ^ (1 << 63);
                Some((FieldValue::Int(u as i64), 9))
            }
            0x03 => {
                let bytes: [u8; 8] = buf.get(1..9)?.try_into().ok()?;
                let u = u64::from_be_bytes(bytes);
                let bits = if u >> 63 == 1 { u ^ (1 << 63) } else { !u };
                Some((FieldValue::Float(f64::from_bits(bits)), 9))
            }
            0x04 => {
                let bytes: [u8; 8] = buf.get(1..9)?.try_into().ok()?;
                Some((FieldValue::Timestamp(u64::from_be_bytes(bytes)), 9))
            }
            0x05 => {
                let mut s = Vec::new();
                let mut i = 1;
                loop {
                    let b = *buf.get(i)?;
                    if b == 0x00 {
                        let next = *buf.get(i + 1)?;
                        if next == 0x00 {
                            // Terminator.
                            let text = String::from_utf8(s).ok()?;
                            return Some((FieldValue::Str(text), i + 2));
                        } else if next == 0xFF {
                            s.push(0x00);
                            i += 2;
                        } else {
                            return None;
                        }
                    } else {
                        s.push(b);
                        i += 1;
                    }
                }
            }
            _ => None,
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn total_order_across_types() {
        let vals = [
            FieldValue::Null,
            FieldValue::Bool(false),
            FieldValue::Int(-5),
            FieldValue::Float(1.5),
            FieldValue::Timestamp(0),
            FieldValue::Str("a".into()),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn nan_rejected() {
        assert!(FieldValue::float(f64::NAN).is_none());
        assert!(FieldValue::float(1.0).is_some());
    }

    #[test]
    fn int_encoding_orders_negatives_first() {
        let a = FieldValue::Int(-10).to_ordered_bytes();
        let b = FieldValue::Int(-1).to_ordered_bytes();
        let c = FieldValue::Int(0).to_ordered_bytes();
        let d = FieldValue::Int(42).to_ordered_bytes();
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn float_encoding_total_order() {
        let xs = [-1e9, -1.5, -0.0, 0.0, 1e-300, 2.5, 1e308];
        let mut prev: Option<Vec<u8>> = None;
        for x in xs {
            let enc = FieldValue::Float(x).to_ordered_bytes();
            if let Some(p) = prev {
                assert!(p <= enc, "encoding not monotone at {x}");
            }
            prev = Some(enc);
        }
    }

    #[test]
    fn string_with_nul_roundtrips_and_orders() {
        let a = FieldValue::Str("a\0b".into());
        let b = FieldValue::Str("a\0c".into());
        let ea = a.to_ordered_bytes();
        let eb = b.to_ordered_bytes();
        assert!(ea < eb);
        let (da, na) = FieldValue::decode_ordered(&ea).unwrap();
        assert_eq!(da, a);
        assert_eq!(na, ea.len());
    }

    #[test]
    fn string_prefix_orders_before_extension() {
        // "ab" < "ab\0" < "aba" must hold through the encoding.
        let v1 = FieldValue::Str("ab".into()).to_ordered_bytes();
        let v2 = FieldValue::Str("ab\0".into()).to_ordered_bytes();
        let v3 = FieldValue::Str("aba".into()).to_ordered_bytes();
        assert!(v1 < v2, "prefix must sort first");
        assert!(v2 < v3, "NUL must sort before 'a'");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FieldValue::decode_ordered(&[]).is_none());
        assert!(FieldValue::decode_ordered(&[0x09]).is_none());
        assert!(FieldValue::decode_ordered(&[0x02, 1, 2]).is_none());
        // Unterminated string.
        assert!(FieldValue::decode_ordered(&[0x05, b'a']).is_none());
        // Bad escape.
        assert!(FieldValue::decode_ordered(&[0x05, 0x00, 0x01]).is_none());
    }

    fn arb_value() -> impl Strategy<Value = FieldValue> {
        prop_oneof![
            Just(FieldValue::Null),
            any::<bool>().prop_map(FieldValue::Bool),
            any::<i64>().prop_map(FieldValue::Int),
            any::<f64>()
                .prop_filter("no NaN", |x| !x.is_nan())
                .prop_map(FieldValue::Float),
            any::<u64>().prop_map(FieldValue::Timestamp),
            ".{0,32}".prop_map(FieldValue::Str),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(v in arb_value()) {
            let enc = v.to_ordered_bytes();
            let (dec, n) = FieldValue::decode_ordered(&enc).expect("decodes");
            prop_assert_eq!(n, enc.len());
            // -0.0 == 0.0 under PartialEq; ordering encoding distinguishes
            // them, so compare via Ord (Equal) rather than bitwise.
            prop_assert_eq!(dec.cmp(&v), Ordering::Equal);
        }

        #[test]
        fn prop_encoding_preserves_order(a in arb_value(), b in arb_value()) {
            let ea = a.to_ordered_bytes();
            let eb = b.to_ordered_bytes();
            prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
        }

        #[test]
        fn prop_concatenated_keys_compare_fieldwise(
            a1 in arb_value(), a2 in arb_value(),
            b1 in arb_value(), b2 in arb_value()
        ) {
            let mut ka = a1.to_ordered_bytes();
            a2.encode_ordered(&mut ka);
            let mut kb = b1.to_ordered_bytes();
            b2.encode_ordered(&mut kb);
            let expect = a1.cmp(&b1).then(a2.cmp(&b2));
            prop_assert_eq!(ka.cmp(&kb), expect);
        }
    }
}
