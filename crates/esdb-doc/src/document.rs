//! Documents and write operations.
//!
//! Every write in ESDB is identified by the routing triple *(tenant ID `k1`,
//! record ID `k2`, record created time `tc`)* (paper §4.2). A [`Document`]
//! carries that triple plus arbitrary typed fields and the free-form
//! `attributes` sub-attribute list.

use crate::value::FieldValue;
use esdb_common::{RecordId, TenantId, TimestampMs};
use serde::{Deserialize, Serialize};

/// A schema-flexible document (one transaction-log row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Tenant (seller) ID — primary routing attribute `k1`.
    pub tenant_id: TenantId,
    /// Record (transaction) ID — secondary routing attribute `k2`, unique
    /// per record.
    pub record_id: RecordId,
    /// Record creation time `tc`, used for rule matching and time-range
    /// predicates.
    pub created_at: TimestampMs,
    /// Structured fields, sorted by name (binary-searchable).
    fields: Vec<(String, FieldValue)>,
    /// The "attributes" column: merchant-defined sub-attribute pairs.
    /// In production ~1500 distinct sub-attribute names exist; each document
    /// carries a small sample of them.
    attrs: Vec<(String, String)>,
}

impl Document {
    /// Starts building a document for the given routing triple.
    pub fn builder(
        tenant_id: TenantId,
        record_id: RecordId,
        created_at: TimestampMs,
    ) -> DocumentBuilder {
        DocumentBuilder {
            doc: Document {
                tenant_id,
                record_id,
                created_at,
                fields: Vec::new(),
                attrs: Vec::new(),
            },
        }
    }

    /// Looks up a structured field by name. The routing triple is exposed as
    /// the virtual fields `tenant_id`, `record_id` and `created_time`.
    pub fn get(&self, name: &str) -> Option<FieldValue> {
        match name {
            "tenant_id" => return Some(FieldValue::Int(self.tenant_id.raw() as i64)),
            "record_id" => return Some(FieldValue::Int(self.record_id.raw() as i64)),
            "created_time" => return Some(FieldValue::Timestamp(self.created_at)),
            _ => {}
        }
        self.fields
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.fields[i].1.clone())
    }

    /// Iterates structured fields (excluding the routing virtuals).
    pub fn fields(&self) -> impl Iterator<Item = (&str, &FieldValue)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of structured fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// The sub-attribute pairs of the "attributes" column.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// Looks up a sub-attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The "attributes" column rendered the way the MySQL predecessor stored
    /// it: all sub-attributes concatenated into one string (paper §1).
    pub fn attrs_concatenated(&self) -> String {
        let mut s = String::new();
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                s.push(';');
            }
            s.push_str(k);
            s.push(':');
            s.push_str(v);
        }
        s
    }

    /// Approximate in-memory size in bytes, used by the simulator to model
    /// storage growth per shard.
    pub fn approx_size(&self) -> usize {
        let mut sz = 24; // routing triple
        for (n, v) in &self.fields {
            sz += n.len()
                + match v {
                    FieldValue::Str(s) => s.len() + 8,
                    _ => 9,
                };
        }
        for (k, v) in &self.attrs {
            sz += k.len() + v.len() + 2;
        }
        sz
    }
}

/// Builder for [`Document`], keeping fields sorted for binary search.
#[derive(Debug, Clone)]
pub struct DocumentBuilder {
    doc: Document,
}

impl DocumentBuilder {
    /// Sets a structured field (replacing any previous value).
    pub fn field(mut self, name: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        let name = name.into();
        let value = value.into();
        match self
            .doc
            .fields
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.doc.fields[i].1 = value,
            Err(i) => self.doc.fields.insert(i, (name, value)),
        }
        self
    }

    /// Appends a sub-attribute to the "attributes" column.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.doc.attrs.push((name.into(), value.into()));
        self
    }

    /// Finishes the document.
    pub fn build(self) -> Document {
        self.doc
    }
}

/// The kind of a write operation (paper §4.2: INSERT creates records;
/// UPDATE/DELETE modify existing ones and must route to the shard that holds
/// the original record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteKind {
    /// Create a new record.
    Insert,
    /// Replace the fields of an existing record.
    Update,
    /// Remove an existing record.
    Delete,
}

/// A routed write operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteOp {
    /// Operation kind.
    pub kind: WriteKind,
    /// The document payload. For deletes only the routing triple matters.
    pub doc: Document,
}

impl WriteOp {
    /// An insert of `doc`.
    pub fn insert(doc: Document) -> Self {
        WriteOp {
            kind: WriteKind::Insert,
            doc,
        }
    }

    /// An update carrying the new image of the record.
    pub fn update(doc: Document) -> Self {
        WriteOp {
            kind: WriteKind::Update,
            doc,
        }
    }

    /// A delete identified by the routing triple.
    pub fn delete(tenant: TenantId, record: RecordId, created_at: TimestampMs) -> Self {
        WriteOp {
            kind: WriteKind::Delete,
            doc: Document::builder(tenant, record, created_at).build(),
        }
    }

    /// The routing triple of this write.
    pub fn routing(&self) -> (TenantId, RecordId, TimestampMs) {
        (self.doc.tenant_id, self.doc.record_id, self.doc.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::builder(TenantId(10086), RecordId(1), 1000)
            .field("status", 1i64)
            .field("group", 666i64)
            .field("auction_title", "rust in action hardcover")
            .attr("activity", "single-day")
            .attr("size", "XL")
            .build()
    }

    #[test]
    fn builder_sorts_and_replaces_fields() {
        let d = Document::builder(TenantId(1), RecordId(2), 3)
            .field("b", 1i64)
            .field("a", 2i64)
            .field("b", 9i64)
            .build();
        let names: Vec<&str> = d.fields().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(d.get("b"), Some(FieldValue::Int(9)));
    }

    #[test]
    fn routing_virtual_fields() {
        let d = doc();
        assert_eq!(d.get("tenant_id"), Some(FieldValue::Int(10086)));
        assert_eq!(d.get("record_id"), Some(FieldValue::Int(1)));
        assert_eq!(d.get("created_time"), Some(FieldValue::Timestamp(1000)));
        assert_eq!(d.get("missing"), None);
    }

    #[test]
    fn attributes_column() {
        let d = doc();
        assert_eq!(d.attr("size"), Some("XL"));
        assert_eq!(d.attr("color"), None);
        assert_eq!(d.attrs_concatenated(), "activity:single-day;size:XL");
    }

    #[test]
    fn write_op_routing_triple() {
        let w = WriteOp::insert(doc());
        assert_eq!(w.routing(), (TenantId(10086), RecordId(1), 1000));
        let del = WriteOp::delete(TenantId(5), RecordId(6), 7);
        assert_eq!(del.kind, WriteKind::Delete);
        assert_eq!(del.routing(), (TenantId(5), RecordId(6), 7));
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = Document::builder(TenantId(1), RecordId(1), 1).build();
        let big = doc();
        assert!(big.approx_size() > small.approx_size());
    }
}
