//! Schema-flexible document model for ESDB-RS.
//!
//! ESDB stores *transaction logs*: documents with a structured part
//! (transaction ID, seller ID, created time, status, ...) plus a free-form
//! `attributes` column holding up to ~1500 merchant-defined sub-attributes
//! (paper §1, §2.1). This crate provides:
//!
//! * [`value::FieldValue`] — the typed value model with a total order and an
//!   **order-preserving byte encoding** (used by the composite index),
//! * [`document::Document`] — the document itself, including the routing
//!   triple *(tenant ID, record ID, created time)* required by §4.2,
//! * [`schema::CollectionSchema`] — per-collection field/type/index
//!   declarations: which fields get inverted indexes, doc values, composite
//!   indexes, or sequential-scan treatment (paper §5.1), and the
//!   frequency-based sub-attribute indexing policy (§3.2).

pub mod document;
pub mod schema;
pub mod value;

pub use document::{Document, DocumentBuilder, WriteKind, WriteOp};
pub use schema::{CollectionSchema, CompositeIndexDef, FieldDef, FieldType, SchemaBuilder};
pub use value::FieldValue;
