//! Log-bucketed latency histograms.
//!
//! Bucketing is log-linear (HdrHistogram style): 16 linear sub-buckets
//! per power of two, giving a worst-case relative bucket width of 1/16
//! (6.25%) and ~4.4% geometric-mean resolution — the "~5% resolution"
//! the telemetry layer promises. The full `u64` range maps onto
//! [`BUCKETS`] = 976 buckets, and the bucket index is computed with a
//! couple of shifts and a `leading_zeros` — no floats, no binary search —
//! so the atomic [`Histogram`] hot path is one index computation plus
//! three relaxed atomic adds.
//!
//! # The one interpolation rule
//!
//! Every quantile reported from a *bucketed* histogram in this codebase
//! uses the same rule: the `q`-quantile is the **inclusive upper bound of
//! the first bucket whose cumulative count reaches `ceil(q · n)`**,
//! clamped to the recorded maximum. Quantiles over *exact* sample sets
//! (e.g. per-figure delay vectors in the bench harness) use
//! [`quantile_sorted`]'s linear interpolation between neighboring order
//! statistics. Both live here so no other crate re-derives its own rule.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket bits per power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power of two (16).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS as usize; // 976

/// Bucket index for a value. Values below [`SUB`] get exact (width-1)
/// buckets; larger values land in one of 16 equal-width sub-buckets of
/// their power-of-two range.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let base = ((msb - SUB_BITS + 1) as usize) << SUB_BITS;
        base + ((v >> (msb - SUB_BITS)) - SUB) as usize
    }
}

/// Inclusive upper bound of bucket `i` — the value quantiles report.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let msb = (i >> SUB_BITS as usize) as u32 + SUB_BITS - 1;
        let sub = (i & (SUB as usize - 1)) as u64;
        // The top bucket's bound is 2^64 - 1; compute in u128 and clamp.
        let upper = (((SUB + sub + 1) as u128) << (msb - SUB_BITS)) - 1;
        upper.min(u64::MAX as u128) as u64
    }
}

/// Thread-safe histogram: relaxed atomics only, no locks. Record from any
/// number of threads; [`Histogram::snapshot`] produces a mergeable
/// single-threaded [`HistogramSnapshot`] for reporting.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of recorded values. `u64` of nanoseconds is ~584 years.
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (unit is the metric's convention, e.g.
    /// `_ns` / `_us` / `_ms` suffixed into the metric name).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` observations of the same value.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy. Concurrent recorders may straddle the copy;
    /// per-bucket counts are each exact, aggregates may lag by in-flight
    /// records (fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                counts.push((i as u16, c));
            }
        }
        let count = counts.iter().map(|&(_, c)| c).sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed) as u128,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Single-threaded, mergeable histogram with the same bucketing as
/// [`Histogram`]. Sparse: only occupied buckets are stored, sorted by
/// index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)`, sorted by index, counts non-zero.
    counts: Vec<(u16, u64)>,
    count: u64,
    sum: u128,
    max: u64,
}

impl HistogramSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v) as u16;
        match self.counts.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.counts[pos].1 += 1,
            Err(pos) => self.counts.insert(pos, (idx, 1)),
        }
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The canonical bucketed quantile (see module docs): inclusive upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q · n)`, clamped to the recorded max.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(i, c) in &self.counts {
            acc += c;
            if acc >= target {
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Merges another snapshot into this one. Associative and
    /// commutative: per-bucket counts, sums, and maxes all combine
    /// exactly, so merge order never changes any reported statistic.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged = Vec::with_capacity(self.counts.len() + other.counts.len());
        let (mut a, mut b) = (
            self.counts.iter().peekable(),
            other.counts.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.counts = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(inclusive upper bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .map(|&(i, c)| (bucket_upper(i as usize), c))
    }
}

/// Quantile via linear interpolation on a *sorted* slice of exact
/// samples. `q` in `[0,1]`. This is the second half of the codebase-wide
/// interpolation rule (see module docs): exact sample sets interpolate
/// linearly between order statistics; bucketed histograms report bucket
/// upper bounds.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Sorts a copy of `xs` and returns the `q`-quantile per
/// [`quantile_sorted`].
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile_sorted(&v, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every value maps into a bucket whose upper bound is >= the
        // value, and the previous bucket's upper bound is < the value.
        let probes: Vec<u64> = (0..200)
            .chain([
                1_000,
                65_535,
                65_536,
                1 << 40,
                u64::MAX / 2,
                u64::MAX - 1,
                u64::MAX,
            ])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "upper({}) >= {v}", i - 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_resolution_within_one_sixteenth() {
        for i in (SUB as usize)..BUCKETS - 1 {
            let hi = bucket_upper(i) as f64;
            let lo = bucket_upper(i - 1) as f64 + 1.0;
            let width = hi - lo + 1.0;
            assert!(width / lo <= 1.0 / 16.0 + 1e-9, "bucket {i} too wide");
        }
    }

    #[test]
    fn atomic_and_snapshot_agree() {
        let h = Histogram::new();
        let mut s = HistogramSnapshot::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456] {
            h.record(v);
            s.record(v);
        }
        assert_eq!(h.snapshot(), s);
        // u64::MAX lands in the top bucket (its sum would wrap the
        // atomic u64 accumulator, so it is checked via counts only).
        h.record(u64::MAX);
        assert_eq!(h.snapshot().max(), u64::MAX);
        assert_eq!(h.snapshot().count(), 8);
    }

    #[test]
    fn quantiles_track_uniform_data() {
        let mut s = HistogramSnapshot::new();
        for v in 1..=10_000u64 {
            s.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = s.quantile(q) as f64;
            assert!(
                (got - expect).abs() / expect < 0.0626,
                "q{q}: got {got}, want ~{expect}"
            );
        }
        assert_eq!(s.quantile(1.0), 10_000);
        assert!((s.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_clamps_to_max() {
        let mut s = HistogramSnapshot::new();
        s.record(1_000_000); // bucket upper bound is above the value
        assert_eq!(s.quantile(0.99), 1_000_000);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut all = HistogramSnapshot::new();
        for v in 0..500u64 {
            let x = v * v % 7_777;
            if v % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn exact_quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }
}
