//! The sharded, lock-free-on-the-hot-path metrics registry.
//!
//! Metrics are identified by a `&'static str` name plus a small
//! fixed-shape [`Labels`] set (`tenant`, `shard`, `node`, `stage`) —
//! exactly the axes the paper's evaluation slices by (Figs. 13/14).
//! Registration (first touch of a name+labels pair) takes a striped
//! `RwLock`; every update after that is a relaxed atomic on a handle
//! (`Arc<Counter>` etc.) the caller caches, or a single read-lock +
//! hash probe for callers whose label values vary per operation
//! ([`MetricsRegistry::add`]).

use crate::histogram::Histogram;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Fixed label set for a metric series. All fields optional; unset
/// fields are omitted from exposition. Fixed shape keeps the hot-path
/// key `Copy` and hashable without allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Labels {
    /// Tenant the sample belongs to.
    pub tenant: Option<u64>,
    /// Physical shard.
    pub shard: Option<u32>,
    /// Node (paper's per-node throughput/delay axes).
    pub node: Option<u32>,
    /// Pipeline stage (span stage taxonomy).
    pub stage: Option<&'static str>,
}

impl Labels {
    /// No labels.
    pub const fn none() -> Labels {
        Labels {
            tenant: None,
            shard: None,
            node: None,
            stage: None,
        }
    }

    /// Labels with only `tenant` set.
    pub const fn tenant(t: u64) -> Labels {
        Labels {
            tenant: Some(t),
            ..Labels::none()
        }
    }

    /// Labels with only `shard` set.
    pub const fn shard(s: u32) -> Labels {
        Labels {
            shard: Some(s),
            ..Labels::none()
        }
    }

    /// Labels with only `node` set.
    pub const fn node(n: u32) -> Labels {
        Labels {
            node: Some(n),
            ..Labels::none()
        }
    }

    /// Labels with only `stage` set.
    pub const fn stage(s: &'static str) -> Labels {
        Labels {
            stage: Some(s),
            ..Labels::none()
        }
    }

    /// Returns a copy with `shard` set.
    pub const fn with_shard(mut self, s: u32) -> Labels {
        self.shard = Some(s);
        self
    }

    /// Returns a copy with `node` set.
    pub const fn with_node(mut self, n: u32) -> Labels {
        self.node = Some(n);
        self
    }

    /// Returns a copy with `stage` set.
    pub const fn with_stage(mut self, st: &'static str) -> Labels {
        self.stage = Some(st);
        self
    }

    /// Whether no label is set.
    pub fn is_empty(&self) -> bool {
        self.tenant.is_none() && self.shard.is_none() && self.node.is_none() && self.stage.is_none()
    }
}

/// Monotone counter. Updates are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous gauge (signed). Updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registered metric of any kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotone counter.
    Counter(Arc<Counter>),
    /// Instantaneous gauge.
    Gauge(Arc<Gauge>),
    /// Log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// FxHash (the Firefox/rustc hash): one rotate+xor+multiply per word.
/// Re-implemented here (rather than using `esdb-common`'s) because the
/// telemetry crate sits *below* esdb-common in the dependency graph.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;
type Key = (&'static str, Labels);

const STRIPES: usize = 16;

/// The registry: [`STRIPES`] independently-locked maps from
/// `(name, labels)` to a metric. Get-or-register takes a read lock
/// (write lock only on first registration); updates through returned
/// handles touch no lock at all.
pub struct MetricsRegistry {
    stripes: Vec<RwLock<HashMap<Key, Metric, FxBuild>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            stripes: (0..STRIPES)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn stripe(&self, key: &Key) -> &RwLock<HashMap<Key, Metric, FxBuild>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) & (STRIPES - 1)]
    }

    fn get_or_register(
        &self,
        name: &'static str,
        labels: Labels,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = (name, labels);
        let stripe = self.stripe(&key);
        if let Some(m) = stripe.read().expect("registry stripe").get(&key) {
            return m.clone();
        }
        let mut map = stripe.write().expect("registry stripe");
        map.entry(key).or_insert_with(make).clone()
    }

    /// Handle to the counter `name{labels}`, registering it on first use.
    /// Panics if the series is already registered with a different type.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Arc<Counter> {
        match self.get_or_register(name, labels, || Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c,
            m => panic!("{name} is a {}, not a counter", m.kind()),
        }
    }

    /// Handle to the gauge `name{labels}`.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Arc<Gauge> {
        match self.get_or_register(name, labels, || Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g,
            m => panic!("{name} is a {}, not a gauge", m.kind()),
        }
    }

    /// Handle to the histogram `name{labels}`.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Arc<Histogram> {
        match self.get_or_register(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            m => panic!("{name} is a {}, not a histogram", m.kind()),
        }
    }

    /// Counter fast path for callers whose label values vary per
    /// operation (e.g. the workload monitor's per-tenant counters):
    /// one hash + read-lock probe + relaxed add, no `Arc` refcount
    /// traffic. Falls back to registration on first touch.
    #[inline]
    pub fn add(&self, name: &'static str, labels: Labels, delta: u64) {
        let key = (name, labels);
        let stripe = self.stripe(&key);
        if let Some(Metric::Counter(c)) = stripe.read().expect("registry stripe").get(&key) {
            c.add(delta);
            return;
        }
        self.counter(name, labels).add(delta);
    }

    /// Histogram fast path: one probe + record, registering on miss.
    #[inline]
    pub fn observe(&self, name: &'static str, labels: Labels, v: u64) {
        let key = (name, labels);
        let stripe = self.stripe(&key);
        if let Some(Metric::Histogram(h)) = stripe.read().expect("registry stripe").get(&key) {
            h.record(v);
            return;
        }
        self.histogram(name, labels).record(v);
    }

    /// Current value of a counter (0 if unregistered).
    pub fn counter_value(&self, name: &'static str, labels: Labels) -> u64 {
        let key = (name, labels);
        match self.stripe(&key).read().expect("registry stripe").get(&key) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Every series of counter `name`, as `(labels, value)` pairs in
    /// unspecified order. The workload monitor's period reports are
    /// built from this.
    pub fn counters_with(&self, name: &'static str) -> Vec<(Labels, u64)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            for (&(n, labels), m) in stripe.read().expect("registry stripe").iter() {
                if n == name {
                    if let Metric::Counter(c) = m {
                        out.push((labels, c.get()));
                    }
                }
            }
        }
        out
    }

    /// Every registered series, sorted by `(name, labels)` so snapshots
    /// are deterministic.
    pub fn series(&self) -> Vec<(&'static str, Labels, Metric)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            for (&(name, labels), m) in stripe.read().expect("registry stripe").iter() {
                out.push((name, labels, m.clone()));
            }
        }
        out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n: usize = self
            .stripes
            .iter()
            .map(|s| s.read().expect("registry stripe").len())
            .sum();
        f.debug_struct("MetricsRegistry")
            .field("series", &n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("esdb_test_total", Labels::tenant(1));
        let b = r.counter("esdb_test_total", Labels::tenant(2));
        a.add(5);
        b.add(7);
        r.add("esdb_test_total", Labels::tenant(1), 3);
        assert_eq!(r.counter_value("esdb_test_total", Labels::tenant(1)), 8);
        assert_eq!(r.counter_value("esdb_test_total", Labels::tenant(2)), 7);
        let mut all = r.counters_with("esdb_test_total");
        all.sort();
        assert_eq!(all, vec![(Labels::tenant(1), 8), (Labels::tenant(2), 7)]);
    }

    #[test]
    fn same_series_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("esdb_x_total", Labels::none());
        let b = r.counter("esdb_x_total", Labels::none());
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauges_and_histograms_register() {
        let r = MetricsRegistry::new();
        r.gauge("esdb_g", Labels::none()).set(-3);
        assert_eq!(r.gauge("esdb_g", Labels::none()).get(), -3);
        r.observe("esdb_h_ns", Labels::stage("route"), 1000);
        assert_eq!(r.histogram("esdb_h_ns", Labels::stage("route")).count(), 1);
        assert_eq!(r.series().len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("esdb_dup", Labels::none());
        r.gauge("esdb_dup", Labels::none());
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let r = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("esdb_conc_total", Labels::none());
                    let h = r.histogram("esdb_conc_ns", Labels::none());
                    for i in 0..per {
                        c.inc();
                        h.record(t * per + i);
                    }
                });
            }
        });
        assert_eq!(
            r.counter_value("esdb_conc_total", Labels::none()),
            threads * per
        );
        let s = r.histogram("esdb_conc_ns", Labels::none()).snapshot();
        assert_eq!(s.count(), threads * per);
    }
}
