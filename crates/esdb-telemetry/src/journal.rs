//! The flight-recorder event journal: a bounded, striped ring of typed,
//! monotonically-sequenced events describing *decisions* the engine made
//! — hot-tenant detections, rule-list appends, rebalance epochs, replica
//! promotions, segment maintenance, cache sweeps, group-commit drains,
//! chaos fault firings.
//!
//! Metrics answer "how much / how slow"; the journal answers "*why* did
//! the balancer/failover controller/group-commit pipeline do what it
//! did, and in what order". Every event carries a process-unique
//! sequence number from one atomic counter (a strict total order across
//! all emitting threads) and an optional causal `parent_seq` linking it
//! to the event that triggered it — a rule append points back at the
//! hot-tenant detection, a promotion completion at the translog replay
//! that fed it.
//!
//! # Concurrency & bounds
//!
//! Emission is sharded-mutex, contended-path-only: the sequence number
//! is one relaxed `fetch_add`, and the event lands in stripe
//! `seq % STRIPES`, so concurrent emitters only contend when they
//! collide on a stripe. Each stripe holds at most
//! `ceil(capacity / STRIPES)` events and evicts its oldest on overflow,
//! which gives two guarantees the proptests pin down:
//!
//! * **No lost events below capacity** — a run that emits at most
//!   `capacity` events never evicts: seqs `1..=capacity` spread exactly
//!   evenly across stripes, so no stripe exceeds its bound.
//! * **Bounded memory at capacity** — total retention never exceeds
//!   `STRIPES * ceil(capacity / STRIPES) < capacity + STRIPES`.
//!
//! Eviction is *explicit*: the journal tracks the highest evicted
//! sequence number, so a `parent_seq` that no longer resolves in the
//! ring can still be classified as "evicted" rather than dangling
//! ([`unresolved_parents`]).

use crate::registry::Labels;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel `parent_seq` for root events (sequences start at 1).
pub const NO_PARENT: u64 = 0;

/// What happened. Payload fields are the decision inputs/outputs worth
/// replaying, not raw metrics (those live in the registry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The balancer flagged a tenant as hot (Algorithm 1 runtime phase).
    HotTenantDetected {
        /// The hot tenant.
        tenant: u64,
        /// Throughput/storage proportion that tripped the check, in ppm.
        proportion_ppm: u64,
        /// Offset size the balancer proposes for it.
        proposed_offset: u32,
    },
    /// A secondary-hashing rule was appended to the rule list.
    RuleAppended {
        /// Tenant the rule covers.
        tenant: u64,
        /// Shard span before the append.
        old_span: u32,
        /// Shard span after the append.
        new_span: u32,
        /// Time spent waiting to commit the rule (ns): the write-lock
        /// acquisition + rule-list update window.
        commit_wait_ns: u64,
    },
    /// A rule commit opened a live migration: the hot tenant's existing
    /// rows will be handed off to the widened span.
    MigrationStarted {
        /// Tenant being migrated.
        tenant: u64,
        /// Shard span before the rule.
        old_span: u32,
        /// Shard span after the rule.
        new_span: u32,
        /// Rule activation timestamp (ms): commit time + commit-wait.
        effective_time: u64,
    },
    /// The handoff built and staged shipped segments for the widened span.
    MigrationSegmentsShipped {
        /// Tenant being migrated.
        tenant: u64,
        /// Destination segments built (one per shard gaining rows).
        segments: u32,
        /// Rows changing placement.
        rows: u64,
        /// Approximate payload bytes shipped.
        bytes: u64,
    },
    /// The bounded translog tail captured during handoff was drained.
    MigrationTailDrained {
        /// Tenant being migrated.
        tenant: u64,
        /// Tail ops re-applied at the new placement.
        ops: u64,
    },
    /// Cutover: shipped segments adopted, tail applied, sources
    /// tombstoned, routing switched to the new placement.
    MigrationCutover {
        /// Tenant being migrated.
        tenant: u64,
        /// Rows whose placement changed.
        rows_moved: u64,
        /// Tail ops applied during cutover.
        tail_ops: u64,
        /// Write-barrier + adoption + tombstone window (ns).
        cutover_ns: u64,
    },
    /// The migration finished; the old span fully collapsed.
    MigrationCompleted {
        /// Tenant migrated.
        tenant: u64,
        /// Span before the migration.
        old_span: u32,
        /// Span now serving all of the tenant's rows.
        new_span: u32,
    },
    /// The migration was aborted; staged state was dropped and the
    /// balancer may re-propose.
    MigrationAborted {
        /// Tenant whose migration aborted.
        tenant: u64,
        /// Lifecycle phase the abort happened in.
        phase: &'static str,
    },
    /// A writer won the CAS and claimed a rebalance epoch.
    RebalanceEpochClaimed {
        /// The claimed epoch number.
        epoch: u64,
    },
    /// The claimed rebalance epoch finished.
    RebalanceEpochCompleted {
        /// The epoch number.
        epoch: u64,
        /// Rules committed during the pass.
        rules_committed: u32,
    },
    /// A chaos schedule fired a fault.
    ChaosFaultInjected {
        /// Fault kind (`"node_crash"`, `"node_restart"`, ...).
        fault: &'static str,
        /// Node the fault targeted.
        node: u32,
    },
    /// A node was marked down.
    NodeCrashed {
        /// The crashed node.
        node: u32,
    },
    /// A node came back up.
    NodeRestarted {
        /// The restarted node.
        node: u32,
        /// How long it was down (ms).
        downtime_ms: u64,
    },
    /// A replica began promotion to primary for a shard.
    PromotionStarted {
        /// Shard being promoted.
        shard: u32,
        /// Node whose crash triggered the promotion.
        crashed_node: u32,
    },
    /// Translog tail replay performed by a promotion or resync.
    TranslogReplayed {
        /// Shard replayed into.
        shard: u32,
        /// Ops replayed.
        ops: u64,
    },
    /// A promotion finished; the shard serves writes again.
    PromotionCompleted {
        /// The promoted shard.
        shard: u32,
        /// Ops replayed from the translog tail.
        replayed_ops: u64,
        /// Crash → serving latency (ms).
        latency_ms: u64,
    },
    /// Ops replayed to rebuild a replica on a surviving node.
    ReplicaResynced {
        /// Ops replayed.
        ops: u64,
    },
    /// A refresh made buffered writes searchable.
    SegmentRefresh {
        /// The refreshed shard.
        shard: u32,
        /// Searchable segments after the refresh.
        segments: u32,
    },
    /// A merge folded segments.
    SegmentMerge {
        /// The merged shard.
        shard: u32,
        /// Segments merged away.
        merged: u32,
        /// Searchable segments after the merge.
        segments: u32,
    },
    /// A flush persisted in-memory state and rolled the translog.
    SegmentFlush {
        /// The flushed shard.
        shard: u32,
        /// Searchable segments at flush.
        segments: u32,
    },
    /// A cache-eviction sweep reaped stale entries.
    CacheSweep {
        /// Entries evicted by the sweep.
        evicted: u64,
        /// Entries resident after the sweep.
        entries: u64,
    },
    /// A group-commit leader drained a contended write queue (solo
    /// drains are not journaled — they are the uncontended fast path).
    GroupCommitDrain {
        /// The drained shard.
        shard: u32,
        /// Write groups coalesced into the drain.
        groups: u32,
        /// Total ops applied.
        ops: u32,
        /// The leader's lock wait (ns); 0 when it won immediately.
        lock_wait_ns: u64,
    },
    /// The network front-end's admission controller started admitting a
    /// tenant again (journaled on the transition back from a throttle or
    /// shed spell, not per request — steady-state admits are the fast
    /// path).
    ServerAdmit {
        /// The re-admitted tenant.
        tenant: u64,
    },
    /// The admission controller started rejecting a tenant's requests
    /// with 429 (journaled on the transition into the throttled state).
    ServerThrottle {
        /// The throttled tenant.
        tenant: u64,
        /// Why: `"rate"` (token bucket empty) or `"quota"` (per-tenant
        /// in-flight ceiling).
        reason: &'static str,
        /// Suggested client back-off (ms).
        retry_after_ms: u64,
    },
    /// The admission controller started shedding a hot tenant under
    /// overload (journaled on the transition into the shed state).
    ServerShed {
        /// The shed tenant.
        tenant: u64,
        /// The tenant's traffic proportion that made it the shedding
        /// victim, in ppm (the same skew signal the balancer uses).
        proportion_ppm: u64,
    },
    /// Graceful shutdown began: the server stopped accepting and started
    /// draining in-flight requests.
    ServerDrainStarted {
        /// Requests in flight when the drain began.
        in_flight: u32,
    },
    /// Graceful shutdown finished: every in-flight request completed.
    ServerDrainCompleted {
        /// Requests that were in flight at drain start and completed.
        drained: u32,
        /// Requests refused with 503 while draining.
        refused: u64,
    },
}

impl EventKind {
    /// Stable snake_case name used in JSON exposition.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::HotTenantDetected { .. } => "hot_tenant_detected",
            EventKind::RuleAppended { .. } => "rule_appended",
            EventKind::MigrationStarted { .. } => "migration_started",
            EventKind::MigrationSegmentsShipped { .. } => "migration_segments_shipped",
            EventKind::MigrationTailDrained { .. } => "migration_tail_drained",
            EventKind::MigrationCutover { .. } => "migration_cutover",
            EventKind::MigrationCompleted { .. } => "migration_completed",
            EventKind::MigrationAborted { .. } => "migration_aborted",
            EventKind::RebalanceEpochClaimed { .. } => "rebalance_epoch_claimed",
            EventKind::RebalanceEpochCompleted { .. } => "rebalance_epoch_completed",
            EventKind::ChaosFaultInjected { .. } => "chaos_fault_injected",
            EventKind::NodeCrashed { .. } => "node_crashed",
            EventKind::NodeRestarted { .. } => "node_restarted",
            EventKind::PromotionStarted { .. } => "promotion_started",
            EventKind::TranslogReplayed { .. } => "translog_replayed",
            EventKind::PromotionCompleted { .. } => "promotion_completed",
            EventKind::ReplicaResynced { .. } => "replica_resynced",
            EventKind::SegmentRefresh { .. } => "segment_refresh",
            EventKind::SegmentMerge { .. } => "segment_merge",
            EventKind::SegmentFlush { .. } => "segment_flush",
            EventKind::CacheSweep { .. } => "cache_sweep",
            EventKind::GroupCommitDrain { .. } => "group_commit_drain",
            EventKind::ServerAdmit { .. } => "server_admit",
            EventKind::ServerThrottle { .. } => "server_throttle",
            EventKind::ServerShed { .. } => "server_shed",
            EventKind::ServerDrainStarted { .. } => "server_drain_started",
            EventKind::ServerDrainCompleted { .. } => "server_drain_completed",
        }
    }

    /// Renders the payload as a JSON object body (no braces).
    fn json_fields(&self) -> String {
        match self {
            EventKind::HotTenantDetected {
                tenant,
                proportion_ppm,
                proposed_offset,
            } => format!(
                "\"tenant\": {tenant}, \"proportion_ppm\": {proportion_ppm}, \
                 \"proposed_offset\": {proposed_offset}"
            ),
            EventKind::RuleAppended {
                tenant,
                old_span,
                new_span,
                commit_wait_ns,
            } => format!(
                "\"tenant\": {tenant}, \"old_span\": {old_span}, \"new_span\": {new_span}, \
                 \"commit_wait_ns\": {commit_wait_ns}"
            ),
            EventKind::MigrationStarted {
                tenant,
                old_span,
                new_span,
                effective_time,
            } => format!(
                "\"tenant\": {tenant}, \"old_span\": {old_span}, \"new_span\": {new_span}, \
                 \"effective_time\": {effective_time}"
            ),
            EventKind::MigrationSegmentsShipped {
                tenant,
                segments,
                rows,
                bytes,
            } => format!(
                "\"tenant\": {tenant}, \"segments\": {segments}, \"rows\": {rows}, \
                 \"bytes\": {bytes}"
            ),
            EventKind::MigrationTailDrained { tenant, ops } => {
                format!("\"tenant\": {tenant}, \"ops\": {ops}")
            }
            EventKind::MigrationCutover {
                tenant,
                rows_moved,
                tail_ops,
                cutover_ns,
            } => format!(
                "\"tenant\": {tenant}, \"rows_moved\": {rows_moved}, \"tail_ops\": {tail_ops}, \
                 \"cutover_ns\": {cutover_ns}"
            ),
            EventKind::MigrationCompleted {
                tenant,
                old_span,
                new_span,
            } => {
                format!("\"tenant\": {tenant}, \"old_span\": {old_span}, \"new_span\": {new_span}")
            }
            EventKind::MigrationAborted { tenant, phase } => {
                format!("\"tenant\": {tenant}, \"phase\": \"{phase}\"")
            }
            EventKind::RebalanceEpochClaimed { epoch } => format!("\"epoch\": {epoch}"),
            EventKind::RebalanceEpochCompleted {
                epoch,
                rules_committed,
            } => format!("\"epoch\": {epoch}, \"rules_committed\": {rules_committed}"),
            EventKind::ChaosFaultInjected { fault, node } => {
                format!("\"fault\": \"{fault}\", \"node\": {node}")
            }
            EventKind::NodeCrashed { node } => format!("\"node\": {node}"),
            EventKind::NodeRestarted { node, downtime_ms } => {
                format!("\"node\": {node}, \"downtime_ms\": {downtime_ms}")
            }
            EventKind::PromotionStarted {
                shard,
                crashed_node,
            } => format!("\"shard\": {shard}, \"crashed_node\": {crashed_node}"),
            EventKind::TranslogReplayed { shard, ops } => {
                format!("\"shard\": {shard}, \"ops\": {ops}")
            }
            EventKind::PromotionCompleted {
                shard,
                replayed_ops,
                latency_ms,
            } => format!(
                "\"shard\": {shard}, \"replayed_ops\": {replayed_ops}, \
                 \"latency_ms\": {latency_ms}"
            ),
            EventKind::ReplicaResynced { ops } => format!("\"ops\": {ops}"),
            EventKind::SegmentRefresh { shard, segments } => {
                format!("\"shard\": {shard}, \"segments\": {segments}")
            }
            EventKind::SegmentMerge {
                shard,
                merged,
                segments,
            } => format!("\"shard\": {shard}, \"merged\": {merged}, \"segments\": {segments}"),
            EventKind::SegmentFlush { shard, segments } => {
                format!("\"shard\": {shard}, \"segments\": {segments}")
            }
            EventKind::CacheSweep { evicted, entries } => {
                format!("\"evicted\": {evicted}, \"entries\": {entries}")
            }
            EventKind::GroupCommitDrain {
                shard,
                groups,
                ops,
                lock_wait_ns,
            } => format!(
                "\"shard\": {shard}, \"groups\": {groups}, \"ops\": {ops}, \
                 \"lock_wait_ns\": {lock_wait_ns}"
            ),
            EventKind::ServerAdmit { tenant } => format!("\"tenant\": {tenant}"),
            EventKind::ServerThrottle {
                tenant,
                reason,
                retry_after_ms,
            } => format!(
                "\"tenant\": {tenant}, \"reason\": \"{reason}\", \
                 \"retry_after_ms\": {retry_after_ms}"
            ),
            EventKind::ServerShed {
                tenant,
                proportion_ppm,
            } => format!("\"tenant\": {tenant}, \"proportion_ppm\": {proportion_ppm}"),
            EventKind::ServerDrainStarted { in_flight } => {
                format!("\"in_flight\": {in_flight}")
            }
            EventKind::ServerDrainCompleted { drained, refused } => {
                format!("\"drained\": {drained}, \"refused\": {refused}")
            }
        }
    }
}

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Process-unique sequence number (strictly monotone, starts at 1).
    pub seq: u64,
    /// Sequence of the event that caused this one, or [`NO_PARENT`].
    pub parent_seq: u64,
    /// `{tenant, shard, node, stage}` labels, same axes as metrics.
    pub labels: Labels,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"parent_seq\": {}, \"kind\": \"{}\", \"labels\": {}, \"data\": {{{}}}}}",
            self.seq,
            self.parent_seq,
            self.kind.name(),
            crate::expo::json_labels(&self.labels),
            self.kind.json_fields()
        )
    }
}

/// Emission stripes. Power of two; `seq % STRIPES` picks the stripe.
const STRIPES: usize = 8;

/// The bounded event journal. See the module docs for the concurrency
/// and eviction model.
#[derive(Debug)]
pub struct Journal {
    /// Per-stripe bound (`ceil(capacity / STRIPES)`); 0 disables.
    per_stripe: usize,
    stripes: Vec<Mutex<VecDeque<Event>>>,
    next_seq: AtomicU64,
    /// Highest sequence number ever evicted (0 = none).
    evicted_max: AtomicU64,
}

impl Journal {
    /// A journal retaining roughly `capacity` events (rounded up to a
    /// multiple of the stripe count). Capacity 0 disables emission
    /// entirely — [`Journal::emit`] becomes one branch.
    pub fn new(capacity: usize) -> Self {
        Journal {
            per_stripe: capacity.div_ceil(STRIPES),
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_seq: AtomicU64::new(1),
            evicted_max: AtomicU64::new(0),
        }
    }

    /// A disabled journal.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether emission is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.per_stripe > 0
    }

    /// Emits an event, returning its sequence number for use as a
    /// child's `parent_seq`. Returns [`NO_PARENT`] when disabled, so a
    /// chain emitted against a disabled journal degrades to roots.
    pub fn emit(&self, kind: EventKind, labels: Labels, parent_seq: u64) -> u64 {
        if self.per_stripe == 0 {
            return NO_PARENT;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            parent_seq,
            labels,
            kind,
        };
        let mut stripe = self.stripes[(seq % STRIPES as u64) as usize]
            .lock()
            .expect("journal stripe");
        if stripe.len() == self.per_stripe {
            if let Some(old) = stripe.pop_front() {
                self.evicted_max.fetch_max(old.seq, Ordering::Relaxed);
            }
        }
        stripe.push_back(event);
        seq
    }

    /// Events currently retained, sorted by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.extend(stripe.lock().expect("journal stripe").iter().cloned());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The last `n` retained events, sorted by sequence number.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("journal stripe").len())
            .sum()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest sequence number ever evicted (0 = no eviction yet). A
    /// `parent_seq` at or below this is "explicitly evicted", not
    /// dangling.
    pub fn evicted_max(&self) -> u64 {
        self.evicted_max.load(Ordering::Relaxed)
    }
}

/// Causal-link integrity check: returns the `parent_seq` values in
/// `events` that neither resolve to a retained event nor fall at or
/// below the eviction watermark. Empty = every link accounted for.
pub fn unresolved_parents(events: &[Event], evicted_max: u64) -> Vec<u64> {
    let seqs: std::collections::HashSet<u64> = events.iter().map(|e| e.seq).collect();
    let mut bad: Vec<u64> = events
        .iter()
        .map(|e| e.parent_seq)
        .filter(|&p| p != NO_PARENT && !seqs.contains(&p) && p > evicted_max)
        .collect();
    bad.sort_unstable();
    bad.dedup();
    bad
}

/// Renders a slice of events as a JSON array.
pub fn events_to_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&e.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqs_are_monotone_and_events_retained_below_capacity() {
        let j = Journal::new(64);
        let mut seqs = Vec::new();
        for n in 0..40u32 {
            seqs.push(j.emit(EventKind::NodeCrashed { node: n }, Labels::node(n), 0));
        }
        assert!(seqs.windows(2).all(|w| w[1] > w[0]));
        let snap = j.snapshot();
        assert_eq!(snap.len(), 40, "no eviction below capacity");
        assert_eq!(j.evicted_max(), 0);
        assert!(snap.windows(2).all(|w| w[1].seq > w[0].seq));
    }

    #[test]
    fn eviction_is_bounded_and_watermarked() {
        let j = Journal::new(16);
        for n in 0..200u32 {
            j.emit(EventKind::NodeCrashed { node: n }, Labels::none(), 0);
        }
        assert!(j.len() <= 16 + STRIPES);
        assert!(j.evicted_max() > 0);
        // Everything retained is newer than everything evicted... per
        // stripe; globally the watermark bounds the oldest *possible*
        // unresolved parent.
        let snap = j.snapshot();
        assert!(unresolved_parents(&snap, j.evicted_max()).is_empty());
    }

    #[test]
    fn parent_links_resolve_or_report() {
        let j = Journal::new(32);
        let a = j.emit(
            EventKind::HotTenantDetected {
                tenant: 7,
                proportion_ppm: 500_000,
                proposed_offset: 8,
            },
            Labels::tenant(7),
            0,
        );
        let b = j.emit(
            EventKind::RuleAppended {
                tenant: 7,
                old_span: 1,
                new_span: 8,
                commit_wait_ns: 1_200,
            },
            Labels::tenant(7),
            a,
        );
        assert!(b > a);
        let snap = j.snapshot();
        assert!(unresolved_parents(&snap, j.evicted_max()).is_empty());
        // A fabricated dangling parent is reported.
        let mut broken = snap.clone();
        broken[1].parent_seq = 9_999;
        assert_eq!(unresolved_parents(&broken, j.evicted_max()), vec![9_999]);
    }

    #[test]
    fn disabled_journal_emits_nothing() {
        let j = Journal::disabled();
        assert!(!j.enabled());
        assert_eq!(
            j.emit(EventKind::NodeCrashed { node: 0 }, Labels::none(), 0),
            NO_PARENT
        );
        assert!(j.is_empty());
    }

    #[test]
    fn event_json_is_stable() {
        let e = Event {
            seq: 3,
            parent_seq: 1,
            labels: Labels::tenant(9).with_shard(2),
            kind: EventKind::RuleAppended {
                tenant: 9,
                old_span: 1,
                new_span: 4,
                commit_wait_ns: 77,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\": 3, \"parent_seq\": 1, \"kind\": \"rule_appended\", \
             \"labels\": {\"tenant\": 9, \"shard\": 2}, \
             \"data\": {\"tenant\": 9, \"old_span\": 1, \"new_span\": 4, \"commit_wait_ns\": 77}}"
        );
    }
}
