//! End-to-end telemetry for ESDB-RS: a sharded, atomic-hot-path metrics
//! registry, log-bucketed latency histograms, lightweight tracing spans,
//! ring-buffer slow-query/slow-write logs, a causally-linked event
//! journal ([`journal`]), Chrome-trace/structured-JSON trace exporters
//! ([`trace_export`]), a one-call postmortem [`bundle::DebugBundle`],
//! and Prometheus/JSON exposition.
//!
//! The paper's balancing loop is measurement-driven — the workload
//! monitor's per-tenant/shard/node counters (Fig. 3, Algorithm 1) feed
//! dynamic secondary hashing, and the whole evaluation (Figs. 10–16)
//! reads as per-node latency/throughput distributions under skew. This
//! crate is the substrate those measurements flow through: every series
//! is named `esdb_<subsystem>_<name>` and labeled along the paper's
//! `{tenant, shard, node}` axes plus a `stage` axis for pipeline
//! breakdowns.
//!
//! Design constraints:
//!
//! - **Leaf crate.** Depends only on `std`, so even `esdb-common` can
//!   (and does) build its statistics types on top of it.
//! - **Lock-free hot path.** Metric updates through cached handles are
//!   single relaxed atomics; registration is the only write-locked
//!   operation.
//! - **No async runtime.** Spans are RAII wall-clock timers with
//!   explicit parent IDs ([`span`]).
//! - **One interpolation rule.** All bucketed quantiles in the codebase
//!   come from [`histogram`], which documents the rule once.

pub mod bundle;
pub mod expo;
pub mod histogram;
pub mod journal;
pub mod registry;
pub mod slowlog;
pub mod span;
mod telemetry;
pub mod trace_export;

pub use bundle::{json_escape, DebugBundle};
pub use expo::{
    json_histogram_counts, lint_prometheus, prometheus_histogram_counts, TelemetrySnapshot,
};
pub use histogram::{quantile, quantile_sorted, Histogram, HistogramSnapshot};
pub use journal::{events_to_json, unresolved_parents, Event, EventKind, Journal, NO_PARENT};
pub use registry::{Counter, Gauge, Labels, Metric, MetricsRegistry};
pub use slowlog::{SlowQueryEntry, SlowQueryLog, SlowWriteEntry, SlowWriteLog};
pub use span::{QueryTrace, Span, StageSample};
pub use telemetry::{Telemetry, TelemetryConfig};
pub use trace_export::{chrome_trace_json, trace_json};
