//! Trace-tree exporters: Chrome trace-event JSON (loadable in
//! `chrome://tracing` / Perfetto) and a structured JSON form, both
//! rendered from the [`StageSample`]s a [`crate::QueryTrace`] collected.
//!
//! The Chrome exporter emits `B`/`E` (begin/end) event pairs. Chrome's
//! nesting model is *timeline containment per `(pid, tid)` lane*, so the
//! exporter lays coordinator-level stages on lane 0 and each shard's
//! stages on lane `shard + 1`, then enforces stack discipline per lane:
//! spans are swept in start order and a span's end is clamped into its
//! enclosing span when measured durations overlap by a hair (derived
//! start offsets of externally-timed samples can drift past a parent's
//! recorded end by the cost of the clock reads themselves). The result
//! is well-nested by construction — every `B` has a matching `E` on the
//! same lane with LIFO ordering — which the exporter tests and the
//! observability integration suite verify through a real JSON parse.

use crate::span::StageSample;

/// Timestamp in microseconds with nanosecond precision, rendered
/// deterministically (`1234.567`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Lane for a sample: coordinator stages on 0, shard stages on shard+1.
fn lane(s: &StageSample) -> u64 {
    s.shard.map_or(0, |sh| sh as u64 + 1)
}

/// Renders samples as Chrome trace-event JSON: an object with a
/// `traceEvents` array of well-nested `B`/`E` pairs. `trace_id` labels
/// every event's args so multiple exports can be concatenated and still
/// attributed.
pub fn chrome_trace_json(trace_id: u64, samples: &[StageSample]) -> String {
    // Per-lane sweep with a stack of open ends, clamping children into
    // their enclosing spans so each lane is a legal call stack.
    let mut lanes: Vec<u64> = samples.iter().map(lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut out = String::with_capacity(samples.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    let mut first = true;
    let push_event =
        |out: &mut String, first: &mut bool, ph: char, s: &StageSample, ts_ns: u64, tid: u64| {
            if !*first {
                out.push_str(", ");
            }
            *first = false;
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"esdb\", \"ph\": \"{}\", \"ts\": {}, \
             \"pid\": 1, \"tid\": {}, \"args\": {{\"trace_id\": {}, \"span\": {}, \
             \"parent\": {}}}}}",
                s.stage,
                ph,
                us(ts_ns),
                tid,
                trace_id,
                s.id,
                s.parent
            ));
        };
    for tid in lanes {
        let mut spans: Vec<&StageSample> = samples.iter().filter(|s| lane(s) == tid).collect();
        spans.sort_by_key(|s| (s.start_ns, u64::MAX - s.dur_ns, s.id));
        // Stack of (sample, clamped end).
        let mut open: Vec<(&StageSample, u64)> = Vec::new();
        for s in spans {
            while let Some(&(top, top_end)) = open.last() {
                if top_end <= s.start_ns {
                    push_event(&mut out, &mut first, 'E', top, top_end, tid);
                    open.pop();
                } else {
                    break;
                }
            }
            let mut end = s.start_ns.saturating_add(s.dur_ns);
            if let Some(&(_, top_end)) = open.last() {
                end = end.min(top_end);
            }
            let end = end.max(s.start_ns);
            push_event(&mut out, &mut first, 'B', s, s.start_ns, tid);
            open.push((s, end));
        }
        while let Some((top, top_end)) = open.pop() {
            push_event(&mut out, &mut first, 'E', top, top_end, tid);
        }
    }
    out.push_str("]}");
    out
}

/// Renders samples as structured JSON: the lossless flat form (tree via
/// `parent` ids), sorted by start offset then span id.
pub fn trace_json(trace_id: u64, samples: &[StageSample]) -> String {
    let mut ordered: Vec<&StageSample> = samples.iter().collect();
    ordered.sort_by_key(|s| (s.start_ns, s.id));
    let mut out = String::with_capacity(samples.len() * 120 + 48);
    out.push_str(&format!("{{\"trace_id\": {trace_id}, \"spans\": ["));
    for (i, s) in ordered.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"stage\": \"{}\", \"id\": {}, \"parent\": {}, \"shard\": {}, \
             \"start_ns\": {}, \"dur_ns\": {}}}",
            s.stage,
            s.id,
            s.parent,
            s.shard
                .map_or_else(|| "null".to_string(), |sh| sh.to_string()),
            s.start_ns,
            s.dur_ns
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        stage: &'static str,
        id: u64,
        parent: u64,
        shard: Option<u32>,
        start_ns: u64,
        dur_ns: u64,
    ) -> StageSample {
        StageSample {
            stage,
            id,
            parent,
            shard,
            start_ns,
            dur_ns,
        }
    }

    /// Checks per-lane B/E stack discipline: every E closes the most
    /// recent open B on its tid, timestamps never go backwards, and
    /// nothing stays open.
    fn assert_well_nested(json: &str) {
        let mut stacks: std::collections::HashMap<String, Vec<String>> = Default::default();
        let mut last_ts: std::collections::HashMap<String, f64> = Default::default();
        for ev in json.split("{\"name\": \"").skip(1) {
            let name = &ev[..ev.find('"').expect("name end")];
            let ph = ev
                .split("\"ph\": \"")
                .nth(1)
                .and_then(|r| r.chars().next())
                .expect("ph");
            let ts: f64 = ev
                .split("\"ts\": ")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .expect("ts")
                .parse()
                .expect("ts value");
            let tid = ev
                .split("\"tid\": ")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .expect("tid")
                .to_string();
            let prev = last_ts.entry(tid.clone()).or_insert(0.0);
            assert!(ts >= *prev, "timestamps monotone per lane");
            *prev = ts;
            let stack = stacks.entry(tid).or_default();
            match ph {
                'B' => stack.push(name.to_string()),
                'E' => assert_eq!(stack.pop().as_deref(), Some(name), "LIFO close"),
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "lane {tid} left spans open: {stack:?}");
        }
    }

    #[test]
    fn chrome_export_nests_parent_and_children() {
        let samples = vec![
            sample("query", 1, 0, None, 0, 10_000),
            sample("route", 2, 1, None, 100, 500),
            sample("execute", 3, 1, Some(0), 700, 8_000),
            sample("execute", 4, 1, Some(1), 700, 6_000),
            sample("gather", 5, 1, None, 9_000, 800),
        ];
        let json = chrome_trace_json(42, &samples);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"trace_id\": 42"));
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 5);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 5);
        assert_well_nested(&json);
    }

    #[test]
    fn overlapping_samples_are_clamped_not_crossed() {
        // Derived starts can overlap; the exporter must still emit a
        // legal stack.
        let samples = vec![
            sample("a", 1, 0, None, 0, 1_000),
            sample("b", 2, 1, None, 500, 1_500),
            sample("c", 3, 1, None, 600, 100),
        ];
        let json = chrome_trace_json(7, &samples);
        assert_well_nested(&json);
    }

    #[test]
    fn structured_json_is_lossless_and_sorted() {
        let samples = vec![
            sample("execute", 3, 1, Some(2), 700, 8_000),
            sample("query", 1, 0, None, 0, 10_000),
        ];
        let json = trace_json(9, &samples);
        assert!(json.starts_with("{\"trace_id\": 9, \"spans\": ["));
        let qpos = json.find("\"stage\": \"query\"").expect("query span");
        let epos = json.find("\"stage\": \"execute\"").expect("execute span");
        assert!(qpos < epos, "sorted by start offset");
        assert!(json.contains("\"shard\": 2"));
        assert!(json.contains("\"shard\": null"));
    }

    #[test]
    fn empty_trace_exports_empty_arrays() {
        assert_eq!(
            chrome_trace_json(1, &[]),
            "{\"displayTimeUnit\": \"ns\", \"traceEvents\": []}"
        );
        assert_eq!(trace_json(1, &[]), "{\"trace_id\": 1, \"spans\": []}");
    }
}
