//! Ring-buffer slow-query log.
//!
//! Queries whose total latency crosses the configured threshold get an
//! entry capturing everything needed to reproduce and diagnose them:
//! the SQL text, the plan (fingerprint + rendered form), which tenant,
//! the shard fan-out, and — when the query was sampled for tracing —
//! its per-stage timings. The log is a bounded ring: the newest
//! `capacity` entries win, and logging is off the query hot path (one
//! branch on the threshold; the mutex is taken only for actual slow
//! queries).

use crate::span::StageSample;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The SQL text as submitted.
    pub sql: String,
    /// Rendered physical plan.
    pub plan: String,
    /// Canonical plan fingerprint (cache key).
    pub fingerprint: u128,
    /// Tenant the query filtered on, when derivable from the plan.
    pub tenant: Option<u64>,
    /// Number of shards the query fanned out to.
    pub fanout: u32,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Per-stage timings; empty when the query was not trace-sampled.
    pub stages: Vec<StageSample>,
}

/// Bounded ring of [`SlowQueryEntry`]s, newest last.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowQueryLog {
    /// Ring holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&self, entry: SlowQueryEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("slow-query ring");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Copies out the current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring
            .lock()
            .expect("slow-query ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-query ring").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sql: &str) -> SlowQueryEntry {
        SlowQueryEntry {
            sql: sql.into(),
            plan: "All".into(),
            fingerprint: 7,
            tenant: Some(1),
            fanout: 4,
            total_ns: 1_000_000,
            stages: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowQueryLog::new(2);
        log.push(entry("a"));
        log.push(entry("b"));
        log.push(entry("c"));
        let sqls: Vec<String> = log.entries().into_iter().map(|e| e.sql).collect();
        assert_eq!(sqls, ["b", "c"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let log = SlowQueryLog::new(0);
        log.push(entry("a"));
        assert!(log.is_empty());
    }
}
