//! Ring-buffer slow-path logs: one for queries, one for writes.
//!
//! Requests whose total latency crosses the configured threshold get an
//! entry capturing everything needed to reproduce and diagnose them.
//! For queries: the SQL text, the plan (fingerprint + rendered form),
//! which tenant, the shard fan-out, and the per-stage span tree (always
//! populated under tail-based capture, regardless of head sampling).
//! For writes: the drained shard, group size, lock wait and translog
//! bytes of the group-commit drain that crossed the threshold. Both
//! logs are bounded rings: the newest `capacity` entries win, and
//! logging is off the hot path (one branch on the threshold; the mutex
//! is taken only for actual slow requests).

use crate::span::StageSample;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Trace id of the request's span tree (0 when tracing was off).
    pub trace_id: u64,
    /// The SQL text as submitted.
    pub sql: String,
    /// Rendered physical plan.
    pub plan: String,
    /// Canonical plan fingerprint (cache key).
    pub fingerprint: u128,
    /// Tenant the query filtered on, when derivable from the plan.
    pub tenant: Option<u64>,
    /// Number of shards the query fanned out to.
    pub fanout: u32,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Per-stage timings; empty only when stage capture was disabled.
    pub stages: Vec<StageSample>,
}

/// One slow group-commit drain (the write-side twin of
/// [`SlowQueryEntry`]).
#[derive(Debug, Clone)]
pub struct SlowWriteEntry {
    /// Trace id of the leading write batch (0 when untraced, e.g. a
    /// single-op write).
    pub trace_id: u64,
    /// Shard whose queue was drained.
    pub shard: u32,
    /// Write groups coalesced into the drain.
    pub group_size: u32,
    /// Total ops applied by the drain.
    pub ops: u32,
    /// The leader's engine-lock wait (ns); 0 when uncontended.
    pub lock_wait_ns: u64,
    /// Approximate translog bytes appended by the drain.
    pub translog_bytes: u64,
    /// Drain latency (lock acquired → group applied) in nanoseconds.
    pub total_ns: u64,
}

/// Shared bounded-ring machinery for both logs.
#[derive(Debug)]
struct Ring<T> {
    capacity: usize,
    ring: Mutex<VecDeque<T>>,
}

impl<T: Clone> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    fn push(&self, entry: T) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("slow-log ring");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    fn entries(&self) -> Vec<T> {
        self.ring
            .lock()
            .expect("slow-log ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Length and entries copied under a single lock hold.
    fn snapshot(&self) -> (usize, Vec<T>) {
        let ring = self.ring.lock().expect("slow-log ring");
        (ring.len(), ring.iter().cloned().collect())
    }

    fn len(&self) -> usize {
        self.ring.lock().expect("slow-log ring").len()
    }

    fn is_empty(&self) -> bool {
        self.ring.lock().expect("slow-log ring").is_empty()
    }
}

/// Bounded ring of [`SlowQueryEntry`]s, newest last.
#[derive(Debug)]
pub struct SlowQueryLog {
    ring: Ring<SlowQueryEntry>,
}

impl SlowQueryLog {
    /// Ring holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            ring: Ring::new(capacity),
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&self, entry: SlowQueryEntry) {
        self.ring.push(entry);
    }

    /// Copies out the current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring.entries()
    }

    /// Length and entries under **one** lock hold — use this instead of
    /// `len()` + `entries()` when both are needed, so the pair can't
    /// tear across a concurrent push.
    pub fn snapshot(&self) -> (usize, Vec<SlowQueryEntry>) {
        self.ring.snapshot()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the log is empty (no clone, one lock + length check).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Bounded ring of [`SlowWriteEntry`]s, newest last.
#[derive(Debug)]
pub struct SlowWriteLog {
    ring: Ring<SlowWriteEntry>,
}

impl SlowWriteLog {
    /// Ring holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SlowWriteLog {
            ring: Ring::new(capacity),
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&self, entry: SlowWriteEntry) {
        self.ring.push(entry);
    }

    /// Copies out the current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowWriteEntry> {
        self.ring.entries()
    }

    /// Length and entries under one lock hold.
    pub fn snapshot(&self) -> (usize, Vec<SlowWriteEntry>) {
        self.ring.snapshot()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sql: &str) -> SlowQueryEntry {
        SlowQueryEntry {
            trace_id: 11,
            sql: sql.into(),
            plan: "All".into(),
            fingerprint: 7,
            tenant: Some(1),
            fanout: 4,
            total_ns: 1_000_000,
            stages: Vec::new(),
        }
    }

    fn write_entry(shard: u32) -> SlowWriteEntry {
        SlowWriteEntry {
            trace_id: 0,
            shard,
            group_size: 3,
            ops: 12,
            lock_wait_ns: 4_000,
            translog_bytes: 1_024,
            total_ns: 2_000_000,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowQueryLog::new(2);
        log.push(entry("a"));
        log.push(entry("b"));
        log.push(entry("c"));
        let sqls: Vec<String> = log.entries().into_iter().map(|e| e.sql).collect();
        assert_eq!(sqls, ["b", "c"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let log = SlowQueryLog::new(0);
        log.push(entry("a"));
        assert!(log.is_empty());
    }

    #[test]
    fn snapshot_is_len_plus_entries_atomically() {
        let log = SlowQueryLog::new(4);
        log.push(entry("a"));
        log.push(entry("b"));
        let (len, entries) = log.snapshot();
        assert_eq!(len, 2);
        assert_eq!(entries.len(), len);
        assert_eq!(entries[0].sql, "a");
    }

    #[test]
    fn write_log_mirrors_query_log_semantics() {
        let log = SlowWriteLog::new(2);
        assert!(log.is_empty());
        log.push(write_entry(0));
        log.push(write_entry(1));
        log.push(write_entry(2));
        let (len, entries) = log.snapshot();
        assert_eq!(len, 2);
        assert_eq!(
            entries.iter().map(|e| e.shard).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(entries[0].lock_wait_ns, 4_000);
        assert_eq!(entries[0].translog_bytes, 1_024);
    }
}
