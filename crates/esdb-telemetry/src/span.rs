//! Lightweight tracing spans: RAII-timed stages with explicit parent
//! IDs, no async runtime, `Sync` so per-shard worker threads can record
//! into the same trace during scatter-gather.
//!
//! A [`QueryTrace`] is created per traced request (query or write
//! batch) and carries a **process-unique trace id** so a slow-log
//! entry, a Chrome-trace export and a journal line can all be joined on
//! one number. Stages open a [`Span`] with `trace.span(stage, parent)`;
//! the span records its duration into the trace when dropped (or
//! explicitly via [`Span::finish`]). Span IDs are small integers unique
//! within the trace; `parent == 0` marks root spans. Every sample also
//! records its **start offset** from the trace origin, so exporters
//! ([`crate::trace_export`]) can lay spans on a real timeline instead of
//! only knowing durations. After the request completes, the collected
//! [`StageSample`]s are fed into the metrics registry (per-stage
//! histograms) and/or attached to a slow-query log entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide trace-id allocator (ids start at 1).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSample {
    /// Stage name from the span taxonomy (e.g. `"execute"`).
    pub stage: &'static str,
    /// Span ID, unique within the trace (never 0).
    pub id: u64,
    /// Parent span ID (0 for roots).
    pub parent: u64,
    /// Shard the stage ran against, when per-shard.
    pub shard: Option<u32>,
    /// Start offset from the trace origin in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Per-request span collector. Cheap to create; shareable across the
/// scoped threads of a scatter-gather fan-out.
#[derive(Debug)]
pub struct QueryTrace {
    trace_id: u64,
    origin: Instant,
    next_id: AtomicU64,
    samples: Mutex<Vec<StageSample>>,
}

impl Default for QueryTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryTrace {
    /// Empty trace with a fresh process-unique id.
    pub fn new() -> Self {
        QueryTrace {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
            // A scatter-gather over 8 shards records ~3 samples per
            // shard plus the root stages; start big enough that the
            // common case never reallocates under the lock.
            samples: Mutex::new(Vec::with_capacity(32)),
        }
    }

    /// The process-unique trace id.
    #[inline]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Nanoseconds elapsed since the trace origin. Public so hot paths
    /// can time several stages off one clock read via
    /// [`QueryTrace::record_span`].
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Converts an already-read [`Instant`] into a trace-origin offset
    /// without touching the clock. Hot paths that time themselves for
    /// other reasons (per-shard busy accounting) reuse those reads for
    /// span boundaries — on hosts where `clock_gettime` costs tens of
    /// nanoseconds this is what keeps tail capture inside its overhead
    /// budget. Saturates to zero for instants before the origin.
    #[inline]
    pub fn offset_of(&self, at: Instant) -> u64 {
        at.duration_since(self.origin)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    /// Opens a span for `stage` under `parent` (0 = root). Timing starts
    /// now and ends when the span is dropped or finished.
    pub fn span(&self, stage: &'static str, parent: u64) -> Span<'_> {
        self.span_for_shard(stage, parent, None)
    }

    /// [`QueryTrace::span`] with a shard label attached.
    pub fn span_for_shard(&self, stage: &'static str, parent: u64, shard: Option<u32>) -> Span<'_> {
        Span {
            trace: self,
            stage,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            shard,
            start_ns: self.now_ns(),
        }
    }

    /// Records an externally-timed sample (used when a duration is
    /// measured without holding a `Span`, e.g. satellite-path timings).
    /// The start offset is derived as "now minus duration".
    pub fn record(&self, stage: &'static str, parent: u64, shard: Option<u32>, dur_ns: u64) {
        let start_ns = self.now_ns().saturating_sub(dur_ns);
        self.record_span(stage, parent, shard, start_ns, dur_ns);
    }

    /// Records a sample from trace-origin offsets with **no clock
    /// read** — the caller times one or more stages off a shared
    /// [`QueryTrace::now_ns`] pair. This keeps tail-based capture cheap
    /// enough to run on every request.
    pub fn record_span(
        &self,
        stage: &'static str,
        parent: u64,
        shard: Option<u32>,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.samples
            .lock()
            .expect("trace samples")
            .push(StageSample {
                stage,
                id,
                parent,
                shard,
                start_ns,
                dur_ns,
            });
    }

    /// Records several externally-timed samples with one id allocation
    /// and one lock acquisition. The per-shard hot path batches its
    /// probe/prune/execute samples through here so tail-based capture
    /// pays one mutex round-trip per shard, not one per stage. Each
    /// entry is `(stage, parent, shard, start_ns, dur_ns)` in
    /// trace-origin offsets.
    pub fn record_span_batch(&self, spans: &[(&'static str, u64, Option<u32>, u64, u64)]) {
        if spans.is_empty() {
            return;
        }
        let first = self
            .next_id
            .fetch_add(spans.len() as u64, Ordering::Relaxed);
        let mut samples = self.samples.lock().expect("trace samples");
        for (i, &(stage, parent, shard, start_ns, dur_ns)) in spans.iter().enumerate() {
            samples.push(StageSample {
                stage,
                id: first + i as u64,
                parent,
                shard,
                start_ns,
                dur_ns,
            });
        }
    }

    /// Consumes the trace, returning samples ordered by completion time.
    pub fn into_samples(self) -> Vec<StageSample> {
        self.samples.into_inner().expect("trace samples")
    }

    /// Copies out the samples collected so far.
    pub fn samples(&self) -> Vec<StageSample> {
        self.samples.lock().expect("trace samples").clone()
    }
}

/// An open span; records its duration into the owning trace on drop.
#[derive(Debug)]
pub struct Span<'a> {
    trace: &'a QueryTrace,
    stage: &'static str,
    id: u64,
    parent: u64,
    shard: Option<u32>,
    start_ns: u64,
}

impl Span<'_> {
    /// This span's ID, for use as a child's `parent`.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        // One clock read, shared with the start offset's origin; span
        // open + close is two reads total, not three.
        let dur_ns = self.trace.now_ns().saturating_sub(self.start_ns);
        self.trace
            .samples
            .lock()
            .expect("trace samples")
            .push(StageSample {
                stage: self.stage,
                id: self.id,
                parent: self.parent,
                shard: self.shard,
                start_ns: self.start_ns,
                dur_ns,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_explicit_parent() {
        let trace = QueryTrace::new();
        let root = trace.span("query", 0);
        let root_id = root.id();
        {
            let child = trace.span("route", root_id);
            assert_ne!(child.id(), root_id);
        }
        root.finish();
        let samples = trace.into_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].stage, "route");
        assert_eq!(samples[0].parent, root_id);
        assert_eq!(samples[1].stage, "query");
        assert_eq!(samples[1].parent, 0);
        // The child started at or after the root.
        assert!(samples[0].start_ns >= samples[1].start_ns);
    }

    #[test]
    fn trace_ids_are_process_unique() {
        let a = QueryTrace::new();
        let b = QueryTrace::new();
        assert_ne!(a.trace_id(), b.trace_id());
        assert_ne!(a.trace_id(), 0);
    }

    #[test]
    fn trace_is_shareable_across_threads() {
        let trace = QueryTrace::new();
        std::thread::scope(|s| {
            for shard in 0..4u32 {
                let t = &trace;
                s.spawn(move || {
                    let _span = t.span_for_shard("execute", 0, Some(shard));
                });
            }
        });
        let samples = trace.into_samples();
        assert_eq!(samples.len(), 4);
        let mut ids: Vec<u64> = samples.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids unique within a trace");
    }

    #[test]
    fn external_samples_record() {
        let trace = QueryTrace::new();
        trace.record("translog_append", 0, Some(3), 12_345);
        let s = trace.into_samples();
        assert_eq!(s[0].shard, Some(3));
        assert_eq!(s[0].dur_ns, 12_345);
    }
}
