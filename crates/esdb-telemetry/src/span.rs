//! Lightweight tracing spans: RAII-timed stages with explicit parent
//! IDs, no async runtime, `Sync` so per-shard worker threads can record
//! into the same trace during scatter-gather.
//!
//! A [`QueryTrace`] is created per traced request (query or write
//! batch). Stages open a [`Span`] with `trace.span(stage, parent)`; the
//! span records its duration into the trace when dropped (or explicitly
//! via [`Span::finish`]). Span IDs are small integers unique within the
//! trace; `parent == 0` marks root spans. After the request completes,
//! the collected [`StageSample`]s are fed into the metrics registry
//! (per-stage histograms) and/or attached to a slow-query log entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSample {
    /// Stage name from the span taxonomy (e.g. `"execute"`).
    pub stage: &'static str,
    /// Span ID, unique within the trace (never 0).
    pub id: u64,
    /// Parent span ID (0 for roots).
    pub parent: u64,
    /// Shard the stage ran against, when per-shard.
    pub shard: Option<u32>,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Per-request span collector. Cheap to create; shareable across the
/// scoped threads of a scatter-gather fan-out.
#[derive(Debug, Default)]
pub struct QueryTrace {
    next_id: AtomicU64,
    samples: Mutex<Vec<StageSample>>,
}

impl QueryTrace {
    /// Empty trace.
    pub fn new() -> Self {
        QueryTrace {
            next_id: AtomicU64::new(1),
            samples: Mutex::new(Vec::with_capacity(8)),
        }
    }

    /// Opens a span for `stage` under `parent` (0 = root). Timing starts
    /// now and ends when the span is dropped or finished.
    pub fn span(&self, stage: &'static str, parent: u64) -> Span<'_> {
        self.span_for_shard(stage, parent, None)
    }

    /// [`QueryTrace::span`] with a shard label attached.
    pub fn span_for_shard(&self, stage: &'static str, parent: u64, shard: Option<u32>) -> Span<'_> {
        Span {
            trace: self,
            stage,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            shard,
            start: Instant::now(),
        }
    }

    /// Records an externally-timed sample (used when a duration is
    /// measured without holding a `Span`, e.g. satellite-path timings).
    pub fn record(&self, stage: &'static str, parent: u64, shard: Option<u32>, dur_ns: u64) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.samples
            .lock()
            .expect("trace samples")
            .push(StageSample {
                stage,
                id,
                parent,
                shard,
                dur_ns,
            });
    }

    /// Consumes the trace, returning samples ordered by completion time.
    pub fn into_samples(self) -> Vec<StageSample> {
        self.samples.into_inner().expect("trace samples")
    }

    /// Copies out the samples collected so far.
    pub fn samples(&self) -> Vec<StageSample> {
        self.samples.lock().expect("trace samples").clone()
    }
}

/// An open span; records its duration into the owning trace on drop.
#[derive(Debug)]
pub struct Span<'a> {
    trace: &'a QueryTrace,
    stage: &'static str,
    id: u64,
    parent: u64,
    shard: Option<u32>,
    start: Instant,
}

impl Span<'_> {
    /// This span's ID, for use as a child's `parent`.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.trace
            .samples
            .lock()
            .expect("trace samples")
            .push(StageSample {
                stage: self.stage,
                id: self.id,
                parent: self.parent,
                shard: self.shard,
                dur_ns,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_explicit_parent() {
        let trace = QueryTrace::new();
        let root = trace.span("query", 0);
        let root_id = root.id();
        {
            let child = trace.span("route", root_id);
            assert_ne!(child.id(), root_id);
        }
        root.finish();
        let samples = trace.into_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].stage, "route");
        assert_eq!(samples[0].parent, root_id);
        assert_eq!(samples[1].stage, "query");
        assert_eq!(samples[1].parent, 0);
    }

    #[test]
    fn trace_is_shareable_across_threads() {
        let trace = QueryTrace::new();
        std::thread::scope(|s| {
            for shard in 0..4u32 {
                let t = &trace;
                s.spawn(move || {
                    let _span = t.span_for_shard("execute", 0, Some(shard));
                });
            }
        });
        let samples = trace.into_samples();
        assert_eq!(samples.len(), 4);
        let mut ids: Vec<u64> = samples.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids unique within a trace");
    }

    #[test]
    fn external_samples_record() {
        let trace = QueryTrace::new();
        trace.record("translog_append", 0, Some(3), 12_345);
        let s = trace.into_samples();
        assert_eq!(s[0].shard, Some(3));
        assert_eq!(s[0].dur_ns, 12_345);
    }
}
