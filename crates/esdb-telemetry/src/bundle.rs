//! The one-call postmortem artifact: a [`DebugBundle`] serializes the
//! metrics snapshot, the journal tail, both slow-path logs, the engine
//! configuration and the rule-list state into a single JSON document.
//!
//! The rendering is fully deterministic for deterministic inputs (the
//! chaos failover bench gates byte-identical bundles across same-seed
//! reruns of the simulated cluster). The telemetry crate is a leaf, so
//! config and rule-list state arrive pre-rendered as JSON fragments from
//! the owning layer (`Esdb::debug_bundle()` / the cluster sim).

use crate::expo::TelemetrySnapshot;
use crate::journal::{events_to_json, Event};
use crate::slowlog::{SlowQueryEntry, SlowWriteEntry};
use crate::telemetry::Telemetry;
use crate::trace_export::trace_json;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a postmortem needs, in one serializable place.
#[derive(Debug, Clone, Default)]
pub struct DebugBundle {
    /// Configuration as `(key, raw JSON value)` pairs, rendered by the
    /// owning layer in a fixed order.
    pub config: Vec<(String, String)>,
    /// Rule-list state as a raw JSON fragment (`"null"` when absent).
    pub rules: String,
    /// Live-migration state as a raw JSON fragment (`"null"` when
    /// absent): tenant, old/new span, phase, progress per migration.
    pub migrations: String,
    /// Point-in-time metrics snapshot.
    pub metrics: TelemetrySnapshot,
    /// Journal tail, oldest first.
    pub journal: Vec<Event>,
    /// Journal eviction watermark at capture time.
    pub journal_evicted_max: u64,
    /// Slow-query log contents.
    pub slow_queries: Vec<SlowQueryEntry>,
    /// Slow-write log contents.
    pub slow_writes: Vec<SlowWriteEntry>,
}

impl DebugBundle {
    /// Captures the telemetry-owned parts (metrics, journal tail, slow
    /// logs); the caller fills `config` and `rules`.
    pub fn from_telemetry(telemetry: &Telemetry, journal_tail: usize) -> Self {
        DebugBundle {
            config: Vec::new(),
            rules: "null".to_string(),
            migrations: "null".to_string(),
            metrics: telemetry.snapshot(),
            journal: telemetry.journal().tail(journal_tail),
            journal_evicted_max: telemetry.journal().evicted_max(),
            slow_queries: telemetry.slow_queries(),
            slow_writes: telemetry.slow_writes(),
        }
    }

    /// Renders the bundle as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8 * 1024);
        out.push_str("{\n  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str("\n  },\n  \"rules\": ");
        out.push_str(if self.rules.is_empty() {
            "null"
        } else {
            &self.rules
        });
        out.push_str(",\n  \"migrations\": ");
        out.push_str(if self.migrations.is_empty() {
            "null"
        } else {
            &self.migrations
        });
        out.push_str(",\n  \"journal\": {\"evicted_max\": ");
        out.push_str(&self.journal_evicted_max.to_string());
        out.push_str(", \"events\": ");
        out.push_str(&events_to_json(&self.journal));
        out.push_str("},\n  \"slow_queries\": [");
        for (i, e) in self.slow_queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"trace_id\": {}, \"sql\": \"{}\", \"plan\": \"{}\", \
                 \"fingerprint\": \"{:032x}\", \"tenant\": {}, \"fanout\": {}, \
                 \"total_ns\": {}, \"trace\": {}}}",
                e.trace_id,
                json_escape(&e.sql),
                json_escape(&e.plan),
                e.fingerprint,
                e.tenant
                    .map_or_else(|| "null".to_string(), |t| t.to_string()),
                e.fanout,
                e.total_ns,
                trace_json(e.trace_id, &e.stages)
            ));
        }
        out.push_str("\n  ],\n  \"slow_writes\": [");
        for (i, e) in self.slow_writes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"trace_id\": {}, \"shard\": {}, \"group_size\": {}, \"ops\": {}, \
                 \"lock_wait_ns\": {}, \"translog_bytes\": {}, \"total_ns\": {}}}",
                e.trace_id,
                e.shard,
                e.group_size,
                e.ops,
                e.lock_wait_ns,
                e.translog_bytes,
                e.total_ns
            ));
        }
        out.push_str("\n  ],\n  \"metrics\": ");
        out.push_str(&self.metrics.to_json());
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;
    use crate::registry::Labels;
    use crate::telemetry::TelemetryConfig;

    #[test]
    fn bundle_renders_all_sections() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.registry()
            .counter("esdb_writes_total", Labels::none())
            .add(3);
        t.journal()
            .emit(EventKind::NodeCrashed { node: 1 }, Labels::node(1), 0);
        t.log_slow(SlowQueryEntry {
            trace_id: 5,
            sql: "SELECT \"x\"".into(),
            plan: "All".into(),
            fingerprint: 0xabc,
            tenant: None,
            fanout: 2,
            total_ns: 99,
            stages: Vec::new(),
        });
        t.log_slow_write(SlowWriteEntry {
            trace_id: 0,
            shard: 3,
            group_size: 2,
            ops: 5,
            lock_wait_ns: 10,
            translog_bytes: 512,
            total_ns: 88,
        });
        let mut bundle = DebugBundle::from_telemetry(&t, 64);
        bundle.config.push(("shards".to_string(), "8".to_string()));
        bundle.rules = "[{\"tenant\": 1, \"offset\": 4}]".to_string();
        bundle.migrations = "[{\"tenant\": 1, \"phase\": \"cutover\"}]".to_string();
        let json = bundle.to_json();
        for section in [
            "\"config\"",
            "\"shards\": 8",
            "\"rules\"",
            "\"migrations\"",
            "\"phase\": \"cutover\"",
            "\"journal\"",
            "\"node_crashed\"",
            "\"slow_queries\"",
            "SELECT \\\"x\\\"",
            "\"slow_writes\"",
            "\"translog_bytes\": 512",
            "\"metrics\"",
            "esdb_writes_total",
        ] {
            assert!(json.contains(section), "missing {section} in:\n{json}");
        }
    }

    #[test]
    fn same_state_renders_byte_identically() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.journal().emit(
            EventKind::CacheSweep {
                evicted: 2,
                entries: 8,
            },
            Labels::none(),
            0,
        );
        let a = DebugBundle::from_telemetry(&t, 16).to_json();
        let b = DebugBundle::from_telemetry(&t, 16).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn escaping_handles_control_and_quote_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
