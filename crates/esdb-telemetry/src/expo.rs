//! Exposition: Prometheus text format and a JSON snapshot, plus a
//! format lint used by CI.
//!
//! Both formats render the same [`TelemetrySnapshot`], so histogram
//! counts round-trip bit-exactly between them (the bench harness and
//! integration tests check this via [`prometheus_histogram_counts`] /
//! [`json_histogram_counts`]). Output is deterministic: series are
//! sorted by `(name, labels)`.

use crate::histogram::HistogramSnapshot;
use crate::registry::{Labels, Metric, MetricsRegistry};
use crate::slowlog::{SlowQueryEntry, SlowWriteEntry};

/// Quantiles every histogram reports.
const QUANTILES: [(&str, f64); 4] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A point-in-time copy of every registered series.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Counters: `(name, labels, value)`, sorted.
    pub counters: Vec<(String, Labels, u64)>,
    /// Gauges: `(name, labels, value)`, sorted.
    pub gauges: Vec<(String, Labels, i64)>,
    /// Histograms: `(name, labels, snapshot)`, sorted.
    pub histograms: Vec<(String, Labels, HistogramSnapshot)>,
    /// Slow-query log contents at snapshot time (filled by
    /// `Telemetry::snapshot`; empty for bare registry snapshots). Not
    /// part of the Prometheus/JSON series renderings.
    pub slow_queries: Vec<SlowQueryEntry>,
    /// Slow-write log contents at snapshot time (same caveats).
    pub slow_writes: Vec<SlowWriteEntry>,
}

impl TelemetrySnapshot {
    /// Snapshots a registry.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        let mut snap = TelemetrySnapshot::default();
        for (name, labels, metric) in registry.series() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.to_string(), labels, c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.to_string(), labels, g.get())),
                Metric::Histogram(h) => {
                    snap.histograms
                        .push((name.to_string(), labels, h.snapshot()))
                }
            }
        }
        snap
    }

    /// Renders the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        fn type_line(out: &mut String, name: &str, kind: &str) {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
        }
        let mut prev: Option<String> = None;
        for (name, labels, value) in &self.counters {
            if prev.as_deref() != Some(name) {
                type_line(&mut out, name, "counter");
                prev = Some(name.clone());
            }
            out.push_str(name);
            out.push_str(&render_labels(labels, None));
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        prev = None;
        for (name, labels, value) in &self.gauges {
            if prev.as_deref() != Some(name) {
                type_line(&mut out, name, "gauge");
                prev = Some(name.clone());
            }
            out.push_str(name);
            out.push_str(&render_labels(labels, None));
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        prev = None;
        for (name, labels, h) in &self.histograms {
            if prev.as_deref() != Some(name) {
                type_line(&mut out, name, "histogram");
                prev = Some(name.clone());
            }
            let mut cumulative = 0u64;
            for (upper, count) in h.buckets() {
                cumulative += count;
                out.push_str(name);
                out.push_str("_bucket");
                out.push_str(&render_labels(labels, Some(&upper.to_string())));
                out.push(' ');
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_bucket");
            out.push_str(&render_labels(labels, Some("+Inf")));
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_sum");
            out.push_str(&render_labels(labels, None));
            out.push(' ');
            out.push_str(&h.sum().to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_count");
            out.push_str(&render_labels(labels, None));
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
        }
        out
    }

    /// Renders a JSON snapshot (hand-rolled; only digits and fixed keys,
    /// no escaping needed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": [");
        for (i, (name, labels, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            out.push_str(name);
            out.push_str("\", \"labels\": ");
            out.push_str(&json_labels(labels));
            out.push_str(", \"value\": ");
            out.push_str(&value.to_string());
            out.push('}');
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (name, labels, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            out.push_str(name);
            out.push_str("\", \"labels\": ");
            out.push_str(&json_labels(labels));
            out.push_str(", \"value\": ");
            out.push_str(&value.to_string());
            out.push('}');
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, (name, labels, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            out.push_str(name);
            out.push_str("\", \"labels\": ");
            out.push_str(&json_labels(labels));
            out.push_str(&format!(
                ", \"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}",
                h.count(),
                h.sum(),
                h.max(),
                h.mean()
            ));
            for (qname, q) in QUANTILES {
                out.push_str(&format!(", \"{qname}\": {}", h.quantile(q)));
            }
            out.push_str(", \"buckets\": [");
            for (j, (upper, count)) in h.buckets().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{upper}, {count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Renders `{tenant="..",shard="..",node="..",stage="..",le=".."}` (empty
/// string when no label is set and `le` is `None`).
fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(t) = labels.tenant {
        parts.push(format!("tenant=\"{t}\""));
    }
    if let Some(s) = labels.shard {
        parts.push(format!("shard=\"{s}\""));
    }
    if let Some(n) = labels.node {
        parts.push(format!("node=\"{n}\""));
    }
    if let Some(st) = labels.stage {
        parts.push(format!("stage=\"{st}\""));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

pub(crate) fn json_labels(labels: &Labels) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(t) = labels.tenant {
        parts.push(format!("\"tenant\": {t}"));
    }
    if let Some(s) = labels.shard {
        parts.push(format!("\"shard\": {s}"));
    }
    if let Some(n) = labels.node {
        parts.push(format!("\"node\": {n}"));
    }
    if let Some(st) = labels.stage {
        parts.push(format!("\"stage\": \"{st}\""));
    }
    format!("{{{}}}", parts.join(", "))
}

/// Lints Prometheus text output. Checks:
///
/// - metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// - no duplicate series (same name + same label set);
/// - per histogram series: `le` bounds strictly increasing, cumulative
///   bucket values non-decreasing, a terminal `+Inf` bucket equal to the
///   series' `_count`.
///
/// Returns the list of violations (empty = clean).
pub fn lint_prometheus(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut seen_series = std::collections::HashSet::new();
    /// Per-histogram lint state.
    #[derive(Default)]
    struct HistState {
        last_le: Option<f64>,
        last_cumulative: Option<u64>,
        inf: Option<u64>,
    }
    let mut hist: std::collections::HashMap<String, HistState> = std::collections::HashMap::new();
    let mut counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            errors.push(format!("line {}: no value: {line}", lineno + 1));
            continue;
        };
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}').unwrap_or(rest)),
            None => (series, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            errors.push(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if !seen_series.insert(series.to_string()) {
            errors.push(format!("line {}: duplicate series {series}", lineno + 1));
        }
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => {
                errors.push(format!("line {}: bad value {value:?}", lineno + 1));
                continue;
            }
        };
        if let Some(base) = name.strip_suffix("_bucket") {
            let mut le = None;
            let others: Vec<&str> = labels
                .split(',')
                .filter(|kv| {
                    if let Some(v) = kv.strip_prefix("le=") {
                        le = Some(v.trim_matches('"').to_string());
                        false
                    } else {
                        !kv.is_empty()
                    }
                })
                .collect();
            let key = format!("{base}{{{}}}", others.join(","));
            let Some(le) = le else {
                errors.push(format!("line {}: bucket without le label", lineno + 1));
                continue;
            };
            let entry = hist.entry(key.clone()).or_default();
            if le == "+Inf" {
                entry.inf = Some(value as u64);
            } else {
                let bound: f64 = match le.parse() {
                    Ok(b) => b,
                    Err(_) => {
                        errors.push(format!("line {}: bad le bound {le:?}", lineno + 1));
                        continue;
                    }
                };
                if entry.inf.is_some() {
                    errors.push(format!("line {}: bucket after +Inf in {key}", lineno + 1));
                }
                if let Some(prev) = entry.last_le {
                    if bound <= prev {
                        errors.push(format!(
                            "line {}: le bounds not increasing in {key} ({prev} -> {bound})",
                            lineno + 1
                        ));
                    }
                }
                entry.last_le = Some(bound);
            }
            if let Some(prev) = entry.last_cumulative {
                if (value as u64) < prev {
                    errors.push(format!(
                        "line {}: cumulative count decreased in {key}",
                        lineno + 1
                    ));
                }
            }
            entry.last_cumulative = Some(value as u64);
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(format!("{base}{{{labels}}}"), value as u64);
        }
    }
    for (key, st) in &hist {
        match st.inf {
            None => errors.push(format!("histogram {key}: missing +Inf bucket")),
            Some(inf) => {
                if let Some(&count) = counts.get(key) {
                    if inf != count {
                        errors.push(format!(
                            "histogram {key}: +Inf bucket {inf} != _count {count}"
                        ));
                    }
                } else {
                    errors.push(format!("histogram {key}: missing _count"));
                }
            }
        }
    }
    errors.sort();
    errors
}

/// Extracts `(series-without-le, total count)` for every histogram in a
/// Prometheus text exposition, via the `_count` lines. Sorted.
pub fn prometheus_histogram_counts(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}').unwrap_or(rest)),
            None => (series, ""),
        };
        if let Some(base) = name.strip_suffix("_count") {
            if let Ok(v) = value.parse::<u64>() {
                out.push((format!("{base}{{{labels}}}"), v));
            }
        }
    }
    out.sort();
    out
}

/// Extracts `(series, total count)` for every histogram in a JSON
/// snapshot produced by [`TelemetrySnapshot::to_json`]. Sorted with the
/// same key format as [`prometheus_histogram_counts`].
pub fn json_histogram_counts(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let Some(start) = json.find("\"histograms\": [") else {
        return out;
    };
    for obj in json[start..].split("{\"name\": \"").skip(1) {
        let Some(name_end) = obj.find('"') else {
            continue;
        };
        let name = &obj[..name_end];
        let Some(lstart) = obj.find("\"labels\": {") else {
            continue;
        };
        let lrest = &obj[lstart + "\"labels\": {".len()..];
        let Some(lend) = lrest.find('}') else {
            continue;
        };
        let labels = render_labels_from_json(&lrest[..lend]);
        let Some(cstart) = obj.find("\"count\": ") else {
            continue;
        };
        let crest = &obj[cstart + "\"count\": ".len()..];
        let digits: String = crest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(v) = digits.parse::<u64>() {
            out.push((format!("{name}{{{labels}}}"), v));
        }
    }
    out.sort();
    out
}

/// Converts `"tenant": 1, "stage": "x"` back into Prometheus label
/// syntax `tenant="1",stage="x"`.
fn render_labels_from_json(inner: &str) -> String {
    inner
        .split(", ")
        .filter(|s| !s.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once(": ").unwrap_or((kv, ""));
            let k = k.trim_matches('"');
            let v = v.trim_matches('"');
            format!("{k}=\"{v}\"")
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("esdb_writes_total", Labels::tenant(1)).add(10);
        r.counter("esdb_writes_total", Labels::tenant(2)).add(4);
        r.gauge("esdb_rules_active", Labels::none()).set(3);
        let h = r.histogram("esdb_query_ns", Labels::stage("execute").with_shard(0));
        for v in [100, 200, 300, 40_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_passes_lint() {
        let snap = TelemetrySnapshot::from_registry(&sample_registry());
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE esdb_writes_total counter"));
        assert!(text.contains("esdb_writes_total{tenant=\"1\"} 10"));
        assert!(text.contains("esdb_query_ns_bucket{shard=\"0\",stage=\"execute\",le=\"+Inf\"} 4"));
        let errors = lint_prometheus(&text);
        assert!(errors.is_empty(), "lint errors: {errors:?}");
    }

    #[test]
    fn lint_catches_violations() {
        let bad = "esdb_x_total 1\nesdb_x_total 2\n";
        assert!(!lint_prometheus(bad).is_empty(), "duplicate series");
        let bad = "1bad_name 1\n";
        assert!(!lint_prometheus(bad).is_empty(), "bad name");
        let bad =
            "h_bucket{le=\"10\"} 5\nh_bucket{le=\"5\"} 6\nh_bucket{le=\"+Inf\"} 6\nh_count 6\n";
        assert!(!lint_prometheus(bad).is_empty(), "non-monotone le");
        let bad =
            "h_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        assert!(!lint_prometheus(bad).is_empty(), "decreasing cumulative");
        let bad = "h_bucket{le=\"10\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 7\n";
        assert!(!lint_prometheus(bad).is_empty(), "+Inf != _count");
    }

    #[test]
    fn histogram_counts_round_trip() {
        let snap = TelemetrySnapshot::from_registry(&sample_registry());
        let prom = prometheus_histogram_counts(&snap.to_prometheus());
        let json = json_histogram_counts(&snap.to_json());
        assert!(!prom.is_empty());
        assert_eq!(prom, json);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = TelemetrySnapshot::from_registry(&sample_registry()).to_prometheus();
        let b = TelemetrySnapshot::from_registry(&sample_registry()).to_prometheus();
        assert_eq!(a, b);
    }
}
