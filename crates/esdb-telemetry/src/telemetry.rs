//! The `Telemetry` facade the rest of the stack threads around: one
//! shared registry, the event journal, the slow-query and slow-write
//! logs, and the trace-sampling/tail-capture decisions.

use crate::expo::TelemetrySnapshot;
use crate::journal::{EventKind, Journal};
use crate::registry::{Labels, MetricsRegistry};
use crate::slowlog::{SlowQueryEntry, SlowQueryLog, SlowWriteEntry, SlowWriteLog};
use crate::span::StageSample;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Telemetry knobs (the `EsdbConfig.telemetry` field).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch. Off = no spans, no per-stage histograms, no slow
    /// logs, no journal, zero extra clock reads on the hot paths.
    pub enabled: bool,
    /// Feed per-stage histograms from 1 in N requests (total-latency
    /// histograms and slow-path *detection* are always on when
    /// `enabled`). 1 samples everything; 0 disables histogram feeding.
    pub trace_sample_every: u64,
    /// Queries slower than this land in the slow-query log.
    pub slow_query_threshold_us: u64,
    /// Group-commit drains slower than this land in the slow-write log.
    pub slow_write_threshold_us: u64,
    /// Slow-query / slow-write ring capacity (each).
    pub slow_log_capacity: usize,
    /// Tail-based capture: when on, *every* request buffers its span
    /// tree cheaply and promotes it into the slow log on crossing the
    /// threshold — slow requests always carry full traces even when not
    /// head-sampled. When off, unsampled slow queries log `stages: []`
    /// (the pre-flight-recorder behavior).
    pub tail_capture: bool,
    /// Event-journal retention (events). 0 disables the journal.
    pub journal_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            trace_sample_every: 8,
            slow_query_threshold_us: 50_000,
            slow_write_threshold_us: 50_000,
            slow_log_capacity: 128,
            tail_capture: true,
            journal_capacity: 1_024,
        }
    }
}

impl TelemetryConfig {
    /// Everything off.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        }
    }
}

/// Shared telemetry state. Cheap to clone the `Arc` into every layer.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Arc<MetricsRegistry>,
    slow_log: SlowQueryLog,
    slow_write_log: SlowWriteLog,
    journal: Arc<Journal>,
    trace_tick: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Telemetry with a fresh registry.
    pub fn new(config: TelemetryConfig) -> Self {
        Self::with_registry(config, Arc::new(MetricsRegistry::new()))
    }

    /// Telemetry over an existing registry (so e.g. the workload monitor
    /// and the query path share one).
    pub fn with_registry(config: TelemetryConfig, registry: Arc<MetricsRegistry>) -> Self {
        let cap = if config.enabled {
            config.slow_log_capacity
        } else {
            0
        };
        let journal = Arc::new(Journal::new(if config.enabled {
            config.journal_capacity
        } else {
            0
        }));
        Telemetry {
            config,
            registry,
            slow_log: SlowQueryLog::new(cap),
            slow_write_log: SlowWriteLog::new(cap),
            journal,
            trace_tick: AtomicU64::new(0),
        }
    }

    /// A disabled facade (every probe is a single branch).
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// Whether telemetry is on at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The event journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Emits a journal event; returns its sequence number (0 when the
    /// journal is disabled).
    #[inline]
    pub fn emit(&self, kind: EventKind, labels: Labels, parent_seq: u64) -> u64 {
        self.journal.emit(kind, labels, parent_seq)
    }

    /// Whether the *next* request's stage samples should feed the
    /// per-stage histograms (1-in-N sampling; the counter is shared
    /// across threads).
    #[inline]
    pub fn should_trace(&self) -> bool {
        if !self.config.enabled || self.config.trace_sample_every == 0 {
            return false;
        }
        let n = self.config.trace_sample_every;
        n == 1 || self.trace_tick.fetch_add(1, Ordering::Relaxed) % n == 0
    }

    /// Whether a request should buffer a span tree at all: head-sampled
    /// requests feed histograms, and under tail capture *every* request
    /// buffers so slow ones keep their trace. Returns
    /// `(capture, sampled)`.
    #[inline]
    pub fn trace_decision(&self) -> (bool, bool) {
        let sampled = self.should_trace();
        let capture = sampled || (self.config.enabled && self.config.tail_capture);
        (capture, sampled)
    }

    /// Slow-query threshold in nanoseconds.
    #[inline]
    pub fn slow_threshold_ns(&self) -> u64 {
        self.config.slow_query_threshold_us.saturating_mul(1_000)
    }

    /// Slow-write (group-drain) threshold in nanoseconds.
    #[inline]
    pub fn slow_write_threshold_ns(&self) -> u64 {
        self.config.slow_write_threshold_us.saturating_mul(1_000)
    }

    /// Records a finished request's stage samples into per-stage
    /// histograms under `name{stage,shard}`.
    pub fn record_stages(&self, name: &'static str, samples: &[StageSample]) {
        for s in samples {
            let mut labels = Labels::stage(s.stage);
            labels.shard = s.shard;
            self.registry.observe(name, labels, s.dur_ns);
        }
    }

    /// Appends a slow-query entry.
    pub fn log_slow(&self, entry: SlowQueryEntry) {
        self.slow_log.push(entry);
    }

    /// Appends a slow-write entry.
    pub fn log_slow_write(&self, entry: SlowWriteEntry) {
        self.slow_write_log.push(entry);
    }

    /// Current slow-query log contents, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slow_log.entries()
    }

    /// Current slow-write log contents, oldest first.
    pub fn slow_writes(&self) -> Vec<SlowWriteEntry> {
        self.slow_write_log.entries()
    }

    /// Point-in-time snapshot of every metric, with both slow logs
    /// attached.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::from_registry(&self.registry);
        snap.slow_queries = self.slow_log.snapshot().1;
        snap.slow_writes = self.slow_write_log.snapshot().1;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rate_is_one_in_n() {
        let t = Telemetry::new(TelemetryConfig {
            trace_sample_every: 4,
            ..TelemetryConfig::default()
        });
        let traced = (0..100).filter(|_| t.should_trace()).count();
        assert_eq!(traced, 25);
    }

    #[test]
    fn tail_capture_buffers_even_unsampled_requests() {
        let t = Telemetry::new(TelemetryConfig {
            trace_sample_every: 1_000_000,
            tail_capture: true,
            ..TelemetryConfig::default()
        });
        let (capture0, sampled0) = t.trace_decision();
        assert!(capture0 && sampled0, "first request head-samples");
        let (capture1, sampled1) = t.trace_decision();
        assert!(capture1, "tail capture buffers unsampled requests");
        assert!(!sampled1);
        let off = Telemetry::new(TelemetryConfig {
            trace_sample_every: 1_000_000,
            tail_capture: false,
            ..TelemetryConfig::default()
        });
        off.trace_decision();
        let (capture, _) = off.trace_decision();
        assert!(
            !capture,
            "without tail capture unsampled requests skip spans"
        );
    }

    #[test]
    fn disabled_never_traces_logs_or_journals() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert!(!t.should_trace());
        assert_eq!(t.trace_decision(), (false, false));
        t.log_slow(SlowQueryEntry {
            trace_id: 0,
            sql: "SELECT 1".into(),
            plan: String::new(),
            fingerprint: 0,
            tenant: None,
            fanout: 0,
            total_ns: u64::MAX,
            stages: Vec::new(),
        });
        t.log_slow_write(SlowWriteEntry {
            trace_id: 0,
            shard: 0,
            group_size: 1,
            ops: 1,
            lock_wait_ns: 0,
            translog_bytes: 0,
            total_ns: u64::MAX,
        });
        assert!(t.slow_queries().is_empty());
        assert!(t.slow_writes().is_empty());
        assert_eq!(
            t.emit(EventKind::NodeCrashed { node: 0 }, Labels::none(), 0),
            0
        );
        assert!(t.journal().is_empty());
    }

    #[test]
    fn record_stages_feeds_registry() {
        let t = Telemetry::default();
        t.record_stages(
            "esdb_query_stage_ns",
            &[
                StageSample {
                    stage: "route",
                    id: 1,
                    parent: 0,
                    shard: None,
                    start_ns: 0,
                    dur_ns: 500,
                },
                StageSample {
                    stage: "execute",
                    id: 2,
                    parent: 1,
                    shard: Some(3),
                    start_ns: 600,
                    dur_ns: 9_000,
                },
            ],
        );
        let snap = t.snapshot();
        assert_eq!(snap.histograms.len(), 2);
        let exec = snap
            .histograms
            .iter()
            .find(|(_, l, _)| l.stage == Some("execute"))
            .expect("execute series");
        assert_eq!(exec.1.shard, Some(3));
        assert_eq!(exec.2.count(), 1);
    }

    #[test]
    fn snapshot_carries_slow_logs() {
        let t = Telemetry::default();
        t.log_slow_write(SlowWriteEntry {
            trace_id: 0,
            shard: 2,
            group_size: 4,
            ops: 9,
            lock_wait_ns: 100,
            translog_bytes: 640,
            total_ns: 1,
        });
        let snap = t.snapshot();
        assert!(snap.slow_queries.is_empty());
        assert_eq!(snap.slow_writes.len(), 1);
        assert_eq!(snap.slow_writes[0].shard, 2);
    }
}
