//! The `Telemetry` facade the rest of the stack threads around: one
//! shared registry, the slow-query log, and the trace-sampling decision.

use crate::expo::TelemetrySnapshot;
use crate::registry::{Labels, MetricsRegistry};
use crate::slowlog::{SlowQueryEntry, SlowQueryLog};
use crate::span::StageSample;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Telemetry knobs (the `EsdbConfig.telemetry` field).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch. Off = no spans, no per-stage histograms, no slow
    /// log, zero extra clock reads on the hot paths.
    pub enabled: bool,
    /// Trace 1 in N requests with full per-stage spans (total-latency
    /// histograms and slow-query *detection* are always on when
    /// `enabled`). 1 traces everything; 0 disables stage tracing.
    pub trace_sample_every: u64,
    /// Queries slower than this land in the slow-query log.
    pub slow_query_threshold_us: u64,
    /// Slow-query ring capacity.
    pub slow_log_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            trace_sample_every: 8,
            slow_query_threshold_us: 50_000,
            slow_log_capacity: 128,
        }
    }
}

impl TelemetryConfig {
    /// Everything off.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        }
    }
}

/// Shared telemetry state. Cheap to clone the `Arc` into every layer.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Arc<MetricsRegistry>,
    slow_log: SlowQueryLog,
    trace_tick: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Telemetry with a fresh registry.
    pub fn new(config: TelemetryConfig) -> Self {
        Self::with_registry(config, Arc::new(MetricsRegistry::new()))
    }

    /// Telemetry over an existing registry (so e.g. the workload monitor
    /// and the query path share one).
    pub fn with_registry(config: TelemetryConfig, registry: Arc<MetricsRegistry>) -> Self {
        let slow_log = SlowQueryLog::new(if config.enabled {
            config.slow_log_capacity
        } else {
            0
        });
        Telemetry {
            config,
            registry,
            slow_log,
            trace_tick: AtomicU64::new(0),
        }
    }

    /// A disabled facade (every probe is a single branch).
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// Whether telemetry is on at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Whether the *next* request should carry full per-stage spans
    /// (1-in-N sampling; the counter is shared across threads).
    #[inline]
    pub fn should_trace(&self) -> bool {
        if !self.config.enabled || self.config.trace_sample_every == 0 {
            return false;
        }
        let n = self.config.trace_sample_every;
        n == 1 || self.trace_tick.fetch_add(1, Ordering::Relaxed) % n == 0
    }

    /// Slow-query threshold in nanoseconds.
    #[inline]
    pub fn slow_threshold_ns(&self) -> u64 {
        self.config.slow_query_threshold_us.saturating_mul(1_000)
    }

    /// Records a finished request's stage samples into per-stage
    /// histograms under `name{stage,shard}`.
    pub fn record_stages(&self, name: &'static str, samples: &[StageSample]) {
        for s in samples {
            let mut labels = Labels::stage(s.stage);
            labels.shard = s.shard;
            self.registry.observe(name, labels, s.dur_ns);
        }
    }

    /// Appends a slow-query entry.
    pub fn log_slow(&self, entry: SlowQueryEntry) {
        self.slow_log.push(entry);
    }

    /// Current slow-query log contents, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slow_log.entries()
    }

    /// Point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::from_registry(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rate_is_one_in_n() {
        let t = Telemetry::new(TelemetryConfig {
            trace_sample_every: 4,
            ..TelemetryConfig::default()
        });
        let traced = (0..100).filter(|_| t.should_trace()).count();
        assert_eq!(traced, 25);
    }

    #[test]
    fn disabled_never_traces_or_logs() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert!(!t.should_trace());
        t.log_slow(SlowQueryEntry {
            sql: "SELECT 1".into(),
            plan: String::new(),
            fingerprint: 0,
            tenant: None,
            fanout: 0,
            total_ns: u64::MAX,
            stages: Vec::new(),
        });
        assert!(t.slow_queries().is_empty());
    }

    #[test]
    fn record_stages_feeds_registry() {
        let t = Telemetry::default();
        t.record_stages(
            "esdb_query_stage_ns",
            &[
                StageSample {
                    stage: "route",
                    id: 1,
                    parent: 0,
                    shard: None,
                    dur_ns: 500,
                },
                StageSample {
                    stage: "execute",
                    id: 2,
                    parent: 1,
                    shard: Some(3),
                    dur_ns: 9_000,
                },
            ],
        );
        let snap = t.snapshot();
        assert_eq!(snap.histograms.len(), 2);
        let exec = snap
            .histograms
            .iter()
            .find(|(_, l, _)| l.stage == Some("execute"))
            .expect("execute series");
        assert_eq!(exec.1.shard, Some(3));
        assert_eq!(exec.2.count(), 1);
    }
}
