//! Multi-writer ingest benchmark: `EsdbWriter` clones on N threads
//! against the single-writer baseline, on a Zipf(0.99)-skewed tenant
//! mix (the paper's real-time ingest regime, §1/§3.1).
//!
//! The benchmark:
//!
//! 1. pre-generates one deterministic op schedule per writer thread
//!    (disjoint record-id ranges, shared Zipf-hot tenants),
//! 2. ingests it single-threaded, then with `WRITER_THREADS` concurrent
//!    `EsdbWriter` clones, each into a fresh instance, and times both,
//! 3. gates hard (all modes) on identity — the multi-writer instance's
//!    per-shard doc distribution and live totals must equal the
//!    sequential baseline's — and on conservation:
//!    `writes_total + write_errors_total == ops issued`, errors zero,
//! 4. gates multi-writer scaling at >= 2x single-writer ops/s in full
//!    mode on hosts with >= `WRITER_THREADS` cores (report-only and
//!    `degraded_single_core`-marked otherwise, per the bench-honesty
//!    policy), and
//! 5. writes `BENCH_write_throughput.json` at the repository root.
//!
//! Pass `--fast` (or set `WRITE_THROUGHPUT_BENCH_FAST=1`) for the CI
//! smoke configuration: identity and conservation gates stay hard, the
//! scaling gate turns report-only.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, EsdbWriter};
use esdb_doc::{CollectionSchema, Document};
use esdb_workload::{DocGenerator, WriteEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Zipf skew of tenant choice (the paper's regime).
const THETA: f64 = 0.99;

/// Concurrent writer threads in the multi-writer pass.
const WRITER_THREADS: usize = 4;

/// Minimum multi-writer ops/s over single-writer ops/s, enforced on
/// full runs with at least `WRITER_THREADS` cores.
const SCALING_GATE: f64 = 2.0;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    ops_per_thread: u64,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 8,
    tenants: 100,
    ops_per_thread: 10_000,
    samples: 5,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 4,
    tenants: 10,
    ops_per_thread: 500,
    samples: 2,
};

/// One writer thread's deterministic schedule: inserts with a private
/// record-id range and Zipf-skewed tenants, so every run (single or
/// multi, any sample) ingests the identical op multiset.
fn schedules(scale: &Scale) -> Vec<Vec<Document>> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    (0..WRITER_THREADS as u64)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(0xE5DB + t);
            let mut docs = DocGenerator::new(1_500, 20, 7 + t);
            (0..scale.ops_per_thread)
                .map(|i| {
                    let tenant = 1 + zipf.sample(&mut rng) as u64;
                    docs.materialize(&WriteEvent {
                        tenant: TenantId(tenant),
                        record: RecordId(t * 10_000_000 + i),
                        created_at: 1_000_000 + i * 250,
                        bytes: 512,
                    })
                })
                .collect()
        })
        .collect()
}

fn open(scale: &Scale, tag: &str) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-writetp-{}-{tag}-{}",
        scale.mode,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir).shards(scale.shards),
    )
    .expect("open bench instance")
}

/// Ingests every schedule on one thread; returns elapsed nanoseconds.
fn run_single(writer: &EsdbWriter, schedules: &[Vec<Document>]) -> u128 {
    let t0 = Instant::now();
    for sched in schedules {
        for doc in sched {
            writer.insert(doc.clone()).expect("single-writer insert");
        }
    }
    t0.elapsed().as_nanos()
}

/// Ingests schedule `t` on thread `t` through writer clones; returns
/// wall-clock elapsed nanoseconds across the whole fan-out.
fn run_multi(writer: &EsdbWriter, schedules: &[Vec<Document>]) -> u128 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for sched in schedules {
            let writer = writer.clone();
            scope.spawn(move || {
                for doc in sched {
                    writer.insert(doc.clone()).expect("multi-writer insert");
                }
            });
        }
    });
    t0.elapsed().as_nanos()
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Hard per-run gates: zero write errors and every issued op counted.
fn check_conservation(db: &Esdb, issued: u64, label: &str) -> bool {
    let stats = db.stats();
    let ok = stats.write_errors == 0 && stats.writes == issued;
    if !ok {
        eprintln!(
            "CONSERVATION VIOLATION ({label}): issued {issued}, \
             counted {} writes + {} errors",
            stats.writes, stats.write_errors
        );
    }
    ok
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("WRITE_THROUGHPUT_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };
    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(fast);

    let scheds = schedules(&scale);
    let issued = WRITER_THREADS as u64 * scale.ops_per_thread;

    let mut single_ns: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut multi_ns: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut identity_ok = true;
    let mut conservation_ok = true;
    let mut group_size_sum = 0u128;
    let mut group_size_count = 0u64;
    for sample in 0..scale.samples {
        let mut single_db = open(&scale, &format!("single-{sample}"));
        single_ns.push(run_single(&single_db.writer(), &scheds));
        conservation_ok &= check_conservation(&single_db, issued, "single");

        let mut multi_db = open(&scale, &format!("multi-{sample}"));
        multi_ns.push(run_multi(&multi_db.writer(), &scheds));
        conservation_ok &= check_conservation(&multi_db, issued, "multi");

        // Identity gate: routing is deterministic, so the multi-writer
        // instance must hold exactly the baseline's doc distribution.
        single_db.refresh();
        multi_db.refresh();
        if multi_db.shard_doc_counts() != single_db.shard_doc_counts()
            || multi_db.stats().live_docs as u64 != issued
        {
            eprintln!(
                "IDENTITY VIOLATION: multi-writer shard distribution {:?} \
                 != single-writer {:?} (issued {issued})",
                multi_db.shard_doc_counts(),
                single_db.shard_doc_counts()
            );
            identity_ok = false;
        }
        // Group-commit effectiveness: ops applied per leader drain.
        if let Some((_, _, h)) = multi_db
            .telemetry_snapshot()
            .histograms
            .iter()
            .find(|(n, _, _)| n == "esdb_write_group_size")
        {
            group_size_sum += h.sum();
            group_size_count += h.count();
        }
    }

    let sn = median(&mut single_ns);
    let mn = median(&mut multi_ns);
    let single_ops_s = issued as f64 / (sn as f64 / 1e9);
    let multi_ops_s = issued as f64 / (mn as f64 / 1e9);
    let scaling = multi_ops_s / single_ops_s;
    let mean_group = if group_size_count > 0 {
        group_size_sum as f64 / group_size_count as f64
    } else {
        0.0
    };

    println!(
        "write_throughput/{}: single-writer median {:.1}k ops/s, \
         {WRITER_THREADS}-writer median {:.1}k ops/s ({scaling:.2}x), \
         mean group size {mean_group:.2}",
        scale.mode,
        single_ops_s / 1e3,
        multi_ops_s / 1e3,
    );

    // The scaling gate needs real cores to mean anything: enforce on
    // full runs with >= WRITER_THREADS cores, report-only elsewhere.
    let gate_enforced = !fast && host_cores >= WRITER_THREADS;
    let json = format!(
        "{{\n  \"bench\": \"write_throughput\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"writer_threads\": {WRITER_THREADS},\n  \
         \"ops_per_thread\": {},\n  \"ops_per_run\": {issued},\n  \"samples\": {},\n  \
         \"host_cores\": {host_cores},\n  \"degraded_single_core\": {degraded},\n  \
         \"single_median_ns\": {sn},\n  \"multi_median_ns\": {mn},\n  \
         \"single_ops_per_s\": {single_ops_s:.1},\n  \"multi_ops_per_s\": {multi_ops_s:.1},\n  \
         \"scaling\": {scaling:.4},\n  \"mean_group_size\": {mean_group:.3},\n  \
         \"scaling_gate\": {SCALING_GATE},\n  \"scaling_gate_enforced\": {gate_enforced},\n  \
         \"identity_ok\": {identity_ok},\n  \"conservation_ok\": {conservation_ok}\n}}\n",
        scale.mode, scale.shards, scale.tenants, scale.ops_per_thread, scale.samples,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_write_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !identity_ok || !conservation_ok {
        eprintln!("write_throughput: FAILED identity/conservation gate");
        std::process::exit(1);
    }
    if gate_enforced && scaling < SCALING_GATE {
        eprintln!(
            "write_throughput: FAILED scaling gate: {scaling:.2}x \
             (need {SCALING_GATE}x with {WRITER_THREADS} writers)"
        );
        std::process::exit(1);
    }
    println!("write_throughput/{}: all gates passed", scale.mode);
}
