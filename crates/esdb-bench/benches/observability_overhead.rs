//! Observability overhead benchmark: the flight recorder (event
//! journal + trace ids + tail-based capture) against the PR 3 baseline
//! telemetry (histograms + head sampling only).
//!
//! The flight recorder's claim is that always-on forensic capture is
//! cheap enough to leave on: journal emission is a striped atomic
//! append, trace ids are one relaxed counter increment, and tail
//! capture buffers spans it would otherwise drop. This benchmark checks
//! that claim end to end:
//!
//! 1. loads identical data into a recorder-on instance (journal +
//!    tail capture, the defaults) and a baseline instance (telemetry
//!    enabled but `tail_capture: false`, `journal_capacity: 0` — the
//!    pre-flight-recorder configuration), parallelism 1,
//! 2. times interleaved write and warm query passes on both —
//!    sub-millisecond write chunks and individual queries, paired and
//!    order-alternated so the ratio median cancels drift and discards
//!    scheduler spikes,
//! 3. verifies row-identical query results between the two instances
//!    (the recorder must never change results),
//! 4. verifies every slow-query entry on the recorder arm carries a
//!    non-empty span tree (tail capture closes the `stages: []` gap),
//! 5. runs the same seeded `SimCluster` failover scenario twice and
//!    requires byte-identical `debug_bundle()` JSON (the forensic
//!    artifact is deterministic), and
//! 6. writes `BENCH_observability.json` at the repository root.
//!
//! Exits non-zero if row identity, the tail-capture gate, or bundle
//! determinism fails — or, in full mode on a host with >= 2 cores, if
//! the median paired overhead of either path exceeds the gate (3%). On
//! a single-core host the overhead gate is report-only and the JSON is
//! `degraded_single_core`-marked, per the bench-honesty policy: the
//! bench shares its only core with the rest of the system, so the
//! paired median still wanders by over a point between runs. Fast mode
//! (`--fast` / `OBSERVABILITY_BENCH_FAST=1`) reports overhead but only
//! enforces the correctness gates.

use esdb_chaos::{ChaosEvent, ChaosSchedule};
use esdb_cluster::{ClusterConfig, PolicySpec, SimCluster};
use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document};
use esdb_telemetry::TelemetryConfig;
use esdb_workload::{DocGenerator, RateSchedule, TraceGenerator, WriteEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Zipf skew of tenant choice, writes and queries alike.
const THETA: f64 = 0.99;

/// Full-mode overhead ceiling, percent, for each path.
const OVERHEAD_GATE_PCT: f64 = 3.0;

/// Seed of the failover scenario whose debug bundle must be
/// byte-identical across reruns.
const SIM_SEED: u64 = 42;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    preload_rows: u64,
    rows_per_pass: u64,
    queries_per_pass: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 8,
    tenants: 20,
    preload_rows: 24_000,
    rows_per_pass: 4_000,
    queries_per_pass: 200,
    samples: 21,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 4,
    tenants: 10,
    preload_rows: 4_000,
    rows_per_pass: 800,
    queries_per_pass: 60,
    samples: 5,
};

/// Query templates a hot tenant repeats (same shapes as the telemetry
/// overhead bench, so the two benches exercise the same paths).
fn templates(tenant: u64) -> [String; 3] {
    [
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND status = 1 ORDER BY created_time DESC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND group IN (1, 2, 3) ORDER BY created_time ASC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND created_time BETWEEN 1000000 AND 100000000 \
             ORDER BY created_time DESC LIMIT 50"
        ),
    ]
}

fn build(scale: &Scale, recorder: bool) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-observability-{}-{}-{}",
        scale.mode,
        recorder,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let telemetry = if recorder {
        // The flight recorder: journal + tail capture on (defaults).
        TelemetryConfig::default()
    } else {
        // PR 3 baseline: histograms and head sampling only.
        TelemetryConfig {
            tail_capture: false,
            journal_capacity: 0,
            ..TelemetryConfig::default()
        }
    };
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(scale.shards)
            .parallelism(1)
            .telemetry_config(telemetry),
    )
    .expect("open bench instance")
}

/// Deterministic stream of pre-materialized documents; both instances
/// insert clones of the same documents in the same order.
struct RowStream {
    docs: DocGenerator,
    zipf: ZipfSampler,
    rng: StdRng,
    next_record: u64,
}

impl RowStream {
    fn new(tenants: usize) -> Self {
        RowStream {
            docs: DocGenerator::new(1_500, 20, 7),
            zipf: ZipfSampler::new(tenants, THETA),
            rng: StdRng::seed_from_u64(7),
            next_record: 0,
        }
    }

    fn batch(&mut self, n: u64) -> Vec<Document> {
        (0..n)
            .map(|_| {
                let r = self.next_record;
                self.next_record += 1;
                let tenant = 1 + self.zipf.sample(&mut self.rng) as u64;
                self.docs.materialize(&WriteEvent {
                    tenant: TenantId(tenant),
                    record: RecordId(r),
                    created_at: 1_000_000 + r * 350,
                    bytes: 512,
                })
            })
            .collect()
    }
}

fn query_sequence(scale: &Scale) -> Vec<String> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(42);
    (0..scale.queries_per_pass)
        .map(|_| {
            let tenant = 1 + zipf.sample(&mut rng) as u64;
            let t = templates(tenant);
            t[rng.random_range(0..t.len())].clone()
        })
        .collect()
}

fn run_query_pass(db: &mut Esdb, seq: &[String]) -> Vec<u64> {
    let mut fingerprint = Vec::new();
    for sql in seq {
        let rows = db.query(sql).expect("query");
        fingerprint.push(rows.docs.len() as u64);
        fingerprint.extend(rows.docs.iter().map(|d| d.record_id.raw()));
    }
    fingerprint
}

fn time_query_pass(db: &mut Esdb, seq: &[String]) -> u128 {
    let t0 = Instant::now();
    black_box(run_query_pass(db, seq));
    t0.elapsed().as_nanos()
}

fn time_write_pass(db: &mut Esdb, docs: &[Document]) -> u128 {
    let t0 = Instant::now();
    for d in docs {
        black_box(db.insert(d.clone()).expect("insert row"));
    }
    t0.elapsed().as_nanos()
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Overhead from the median of *paired* chunk ratios (see the telemetry
/// overhead bench for the rationale: pairing cancels drift, the median
/// discards one-off events that land in one arm only).
fn paired_overhead_pct(pairs: &[(u128, u128)]) -> f64 {
    let mut ratios: Vec<f64> = pairs
        .iter()
        .filter(|&&(_, b)| b > 0)
        .map(|&(a, b)| a as f64 / b as f64)
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

/// One seeded failover scenario; returns the debug bundle JSON. Two
/// calls with the same seed must produce identical bytes.
fn sim_bundle_json(seed: u64) -> String {
    let mut cfg = ClusterConfig::small(PolicySpec::DoubleHashing { s: 8 });
    cfg.n_nodes = 4;
    cfg.n_shards = 32;
    cfg.node_capacity_per_sec = 1_000.0;
    cfg.balancer = esdb_balancer::BalancerConfig::new(32, 4);
    let tick_ms = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut gen = TraceGenerator::new(100, THETA, RateSchedule::constant(1_000.0), seed);
    let mut load = |cluster: &mut SimCluster, ticks: u64| {
        for _ in 0..ticks {
            let now = cluster.now();
            let events = gen.tick(now, tick_ms);
            cluster.step(events);
        }
    };
    load(&mut cluster, 20);
    let crash_ms = cluster.now();
    cluster.set_chaos_schedule(
        ChaosSchedule::new()
            .at(crash_ms, ChaosEvent::NodeCrash { node: 1 })
            .at(crash_ms + 3_000, ChaosEvent::NodeRestart { node: 1 }),
    );
    load(&mut cluster, 60);
    let mut drain = 0u64;
    while cluster.in_flight() > 0 && drain < 400 {
        cluster.step(Vec::new());
        drain += 1;
    }
    cluster.debug_bundle().to_json()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("OBSERVABILITY_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };

    let mut on = build(&scale, true);
    let mut off = build(&scale, false);
    let mut rows = RowStream::new(scale.tenants);

    // Identical preload.
    for d in rows.batch(scale.preload_rows) {
        on.insert(d.clone()).expect("insert row");
        off.insert(d).expect("insert row");
    }
    on.refresh();
    off.refresh();
    on.merge();
    off.merge();
    on.refresh();
    off.refresh();

    // Write-path timing, chunk-paired with alternating arm order (see
    // the telemetry overhead bench for the methodology). Chunks are
    // kept sub-millisecond so a scheduler preemption lands inside a few
    // pairs — which the ratio median then discards — instead of
    // skewing a whole pass.
    let chunk_rows = (scale.rows_per_pass / 64).max(1) as usize;
    for d in rows.batch(scale.rows_per_pass) {
        on.insert(d.clone()).expect("insert row");
        off.insert(d).expect("insert row");
    }
    on.refresh();
    off.refresh();
    let mut write_on: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut write_off: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut write_pairs: Vec<(u128, u128)> = Vec::new();
    for s in 0..scale.samples {
        let batch = rows.batch(scale.rows_per_pass);
        let mut t_on = 0u128;
        let mut t_off = 0u128;
        for (c, chunk) in batch.chunks(chunk_rows).enumerate() {
            let (a, b) = if (s + c) % 2 == 0 {
                let a = time_write_pass(&mut on, chunk);
                let b = time_write_pass(&mut off, chunk);
                (a, b)
            } else {
                let b = time_write_pass(&mut off, chunk);
                let a = time_write_pass(&mut on, chunk);
                (a, b)
            };
            t_on += a;
            t_off += b;
            write_pairs.push((a, b));
        }
        write_on.push(t_on);
        write_off.push(t_off);
        on.refresh();
        off.refresh();
    }

    // Row-identity gate: the recorder must never change results.
    let seq = query_sequence(&scale);
    let mut rows_identical = true;
    if run_query_pass(&mut on, &seq) != run_query_pass(&mut off, &seq) {
        eprintln!("ROW IDENTITY VIOLATION: recorder-on results diverged from recorder-off");
        rows_identical = false;
    }

    // Query-path timing: warm passes, paired per *individual query* —
    // the same SQL runs back-to-back on both arms in alternating order,
    // and the overhead estimate is the median over thousands of
    // same-query ratios. A multi-millisecond scheduler spike inflates
    // one ~100µs pair, not an entire 200-query pass, so the median
    // stays pinned to the systematic on/off difference.
    let mut query_on: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut query_off: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut query_pairs: Vec<(u128, u128)> = Vec::new();
    for s in 0..scale.samples {
        let mut t_on = 0u128;
        let mut t_off = 0u128;
        for (c, sql) in seq.iter().enumerate() {
            let q = std::slice::from_ref(sql);
            let (a, b) = if (s + c) % 2 == 0 {
                let a = time_query_pass(&mut on, q);
                let b = time_query_pass(&mut off, q);
                (a, b)
            } else {
                let b = time_query_pass(&mut off, q);
                let a = time_query_pass(&mut on, q);
                (a, b)
            };
            t_on += a;
            t_off += b;
            query_pairs.push((a, b));
        }
        query_on.push(t_on);
        query_off.push(t_off);
    }

    let write_overhead = paired_overhead_pct(&write_pairs);
    let query_overhead = paired_overhead_pct(&query_pairs);
    let write_on_med = median(&mut write_on);
    let write_off_med = median(&mut write_off);
    let query_on_med = median(&mut query_on);
    let query_off_med = median(&mut query_off);

    // Tail-capture gate: with the recorder on, every slow-query entry
    // must carry a non-empty span tree (no `stages: []` survivors). The
    // gate is vacuous when nothing crossed the threshold; the count is
    // reported so a vacuous pass is visible.
    let slow_entries = on.slow_queries();
    let slow_logged = slow_entries.len();
    let tail_capture_ok = slow_entries.iter().all(|e| !e.stages.is_empty());

    // Journal liveness: the write/maintenance workload above must have
    // left events in the recorder arm's journal.
    let journal_events = on.telemetry().journal().tail(usize::MAX).len();

    // Bundle determinism: same seed, same bytes.
    let bundle_a = sim_bundle_json(SIM_SEED);
    let bundle_b = sim_bundle_json(SIM_SEED);
    let bundle_identical = bundle_a == bundle_b;

    println!(
        "observability_overhead/{}: write on {:.3} ms / off {:.3} ms ({:+.2}%)",
        scale.mode,
        write_on_med as f64 / 1e6,
        write_off_med as f64 / 1e6,
        write_overhead,
    );
    println!(
        "observability_overhead/{}: query on {:.3} ms / off {:.3} ms ({:+.2}%)",
        scale.mode,
        query_on_med as f64 / 1e6,
        query_off_med as f64 / 1e6,
        query_overhead,
    );
    println!(
        "observability_overhead/{}: {} journal events, {} slow-logged \
         (stages {}), bundle determinism {}",
        scale.mode,
        journal_events,
        slow_logged,
        if tail_capture_ok { "ok" } else { "MISSING" },
        if bundle_identical { "ok" } else { "VIOLATED" },
    );

    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(scale.mode == "fast");
    // The overhead gate needs the bench to own a core: on a single-core
    // host the two arms share the CPU with the rest of the system, and
    // background load lands asymmetrically in whichever arm is running
    // when it hits — the paired-ratio median still wanders by more than
    // a percentage point run to run. Per the bench-honesty policy the
    // gate downgrades to report-only there (`degraded_single_core` is
    // already marked in the JSON); correctness gates stay hard always.
    let gate_enforced = !fast && !degraded;
    let json_out = format!(
        "{{\n  \"bench\": \"observability\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"preload_rows\": {},\n  \
         \"rows_per_pass\": {},\n  \"queries_per_pass\": {},\n  \"samples\": {},\n  \
         \"host_cores\": {host_cores},\n  \"degraded_single_core\": {degraded},\n  \
         \"write_on_median_ns\": {write_on_med},\n  \"write_off_median_ns\": {write_off_med},\n  \
         \"write_overhead_pct\": {write_overhead:.4},\n  \
         \"query_on_median_ns\": {query_on_med},\n  \"query_off_median_ns\": {query_off_med},\n  \
         \"query_overhead_pct\": {query_overhead:.4},\n  \
         \"overhead_gate_pct\": {OVERHEAD_GATE_PCT},\n  \
         \"overhead_gate_enforced\": {gate_enforced},\n  \
         \"results_identical_on_vs_off\": {rows_identical},\n  \
         \"journal_events\": {journal_events},\n  \
         \"slow_queries_logged\": {slow_logged},\n  \
         \"slow_queries_have_stages\": {tail_capture_ok},\n  \
         \"sim_seed\": {SIM_SEED},\n  \
         \"debug_bundle_byte_identical\": {bundle_identical}\n}}\n",
        scale.mode,
        scale.shards,
        scale.tenants,
        scale.preload_rows,
        scale.rows_per_pass,
        scale.queries_per_pass,
        scale.samples,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_observability.json"
    );
    match std::fs::write(path, &json_out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut failed = false;
    if !rows_identical {
        eprintln!("observability_overhead: FAILED row-identity gate");
        failed = true;
    }
    if !tail_capture_ok {
        eprintln!("observability_overhead: FAILED tail-capture gate (slow query without stages)");
        failed = true;
    }
    if journal_events == 0 {
        eprintln!("observability_overhead: FAILED journal liveness (no events recorded)");
        failed = true;
    }
    if !bundle_identical {
        eprintln!("observability_overhead: FAILED debug-bundle determinism gate");
        failed = true;
    }
    if gate_enforced && (write_overhead > OVERHEAD_GATE_PCT || query_overhead > OVERHEAD_GATE_PCT) {
        eprintln!(
            "observability_overhead: FAILED overhead gate (write {write_overhead:+.2}%, \
             query {query_overhead:+.2}% > {OVERHEAD_GATE_PCT}%)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
