//! Routing-policy micro-benchmarks: the per-write cost of each policy's
//! `route_write`, including dynamic secondary hashing's rule-list lookup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_common::{RecordId, TenantId};
use esdb_routing::{DoubleHashRouting, DynamicRouting, HashRouting, RoutingPolicy};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_write");
    let n = 512u32;

    let hash = HashRouting::new(n);
    group.bench_function("hashing", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(hash.route_write(TenantId(k % 100_000), RecordId(k), k))
        })
    });

    let double = DoubleHashRouting::new(n, 8);
    group.bench_function("double_hashing", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(double.route_write(TenantId(k % 100_000), RecordId(k), k))
        })
    });

    // Dynamic with a populated rule list (rules for the hot tenants, the
    // realistic steady state).
    for rules in [0usize, 10, 100, 1_000] {
        let dynamic = DynamicRouting::new(n);
        {
            let handle = dynamic.rules();
            let mut g = handle.write();
            for i in 0..rules {
                g.update(i as u64, 1 << (i % 5), TenantId((i % 64) as u64));
            }
        }
        group.bench_with_input(BenchmarkId::new("dynamic", rules), &rules, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(dynamic.route_write(TenantId(k % 100_000), RecordId(k), k + 2_000))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
