//! Query-execution benchmarks: posting-list algebra and the optimized vs
//! naive plan on the paper's example query shape (Fig. 6/7/8).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_common::{RecordId, TenantId};
use esdb_doc::CollectionSchema;
use esdb_index::{PostingList, Segment, SegmentBuilder};
use esdb_query::{execute_on_segments, parse_sql, translate, QueryOptions};
use esdb_workload::{DocGenerator, WriteEvent};

fn build_segment(n: u64) -> Segment {
    let mut gen = DocGenerator::new(1_500, 20, 7);
    let mut b = SegmentBuilder::without_attr_index(CollectionSchema::transaction_logs());
    for r in 0..n {
        b.add(gen.materialize(&WriteEvent {
            tenant: TenantId(1 + r % 100),
            record: RecordId(r),
            created_at: 1_000_000 + r,
            bytes: 512,
        }));
    }
    b.refresh(1)
}

fn bench_postings(c: &mut Criterion) {
    let mut group = c.benchmark_group("postings");
    let a = PostingList::from_sorted((0..100_000).step_by(3).collect());
    let b_list = PostingList::from_sorted((0..100_000).step_by(7).collect());
    let sparse = PostingList::from_sorted((0..100_000).step_by(997).collect());
    group.bench_function("intersect_balanced", |bch| {
        bch.iter(|| black_box(a.intersect(&b_list)))
    });
    group.bench_function("intersect_galloping", |bch| {
        bch.iter(|| black_box(sparse.intersect(&a)))
    });
    group.bench_function("union", |bch| bch.iter(|| black_box(a.union(&b_list))));
    group.finish();
}

fn bench_plans(c: &mut Criterion) {
    let seg = build_segment(50_000);
    let schema = CollectionSchema::transaction_logs();
    let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 1 \
               AND created_time BETWEEN 1010000 AND 1040000 \
               AND status = 1 AND group IN (1, 2, 3) OR province = 'zhejiang' \
               LIMIT 100";
    let q = translate(parse_sql(sql).expect("parse"));
    let mut group = c.benchmark_group("fig6_query");
    group.sample_size(30);
    for (name, use_optimizer) in [("optimized", true), ("naive_lucene", false)] {
        group.bench_with_input(BenchmarkId::new(name, 50_000), &use_optimizer, |b, &o| {
            b.iter(|| {
                black_box(execute_on_segments(
                    &q,
                    &schema,
                    &[&seg],
                    QueryOptions {
                        use_optimizer: o,
                        ..QueryOptions::default()
                    },
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sql_frontend");
    group.bench_function("parse_translate", |b| {
        b.iter(|| black_box(translate(parse_sql(sql).expect("parse"))))
    });
    group.finish();
}

criterion_group!(benches, bench_postings, bench_plans);
criterion_main!(benches);
