//! Rule-list benchmarks, including the paper's power-of-two design choice
//! (§4.2: "we choose s among exponents of 2 in order to limit the number
//! of secondary hashing rules and accelerate the search in the rule list").
//!
//! The ablation compares rule-list growth and match cost when offsets are
//! restricted to powers of two (many tenants share a rule) versus
//! unrestricted offsets (almost every tenant gets its own rule).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_common::TenantId;
use esdb_routing::RuleList;

/// Builds a rule list for `n_tenants` hot tenants whose raw desired offsets
/// span 2..=64, either rounded to powers of two or kept as-is.
fn build(n_tenants: u64, pow2: bool) -> RuleList {
    let mut r = RuleList::new();
    for t in 0..n_tenants {
        let raw = 2 + (t * 7) % 63;
        let s = if pow2 {
            (raw as u32).next_power_of_two()
        } else {
            raw as u32
        };
        // Tenants flagged in the same balancing pass share an effective
        // time (Algorithm 1 commits one batch per monitor period) — that
        // is what lets pow2 offsets share rules (Algorithm 2).
        r.update(100 + t / 50, s, TenantId(t));
    }
    r
}

fn bench_rule_list(c: &mut Criterion) {
    // Rule-list growth: how many distinct rules result.
    {
        let &n = &1_000u64;
        let pow2 = build(n, true);
        let raw = build(n, false);
        eprintln!(
            "[ablation] {n} hot tenants -> {} rules with pow2 offsets, {} without",
            pow2.len(),
            raw.len()
        );
    }

    let mut group = c.benchmark_group("rule_list_match");
    for &n in &[10u64, 100, 1_000, 10_000] {
        let list = build(n, true);
        group.bench_with_input(BenchmarkId::new("offset_for_write_pow2", n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(list.offset_for_write(TenantId(k % n), 10_000))
            })
        });
        let list = build(n, false);
        group.bench_with_input(BenchmarkId::new("offset_for_write_raw", n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(list.offset_for_write(TenantId(k % n), 10_000))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rule_list_update");
    group.bench_function("update_1000th_rule", |b| {
        b.iter_batched(
            || build(999, true),
            |mut list| {
                list.update(5_000, 16, TenantId(999));
                black_box(list.len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rule_list);
criterion_main!(benches);
