//! Translog benchmarks: append throughput, sync batching, and replay.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esdb_common::{RecordId, TenantId};
use esdb_doc::{Document, WriteOp};
use esdb_storage::codec::{decode_op, encode_op};
use esdb_storage::Translog;

fn op(r: u64) -> WriteOp {
    WriteOp::insert(
        Document::builder(TenantId(1), RecordId(r), 1_000 + r)
            .field("status", (r % 3) as i64)
            .field("auction_title", format!("translog bench item {r}"))
            .attr("activity", "1111")
            .build(),
    )
}

fn bench_translog(c: &mut Criterion) {
    let mut group = c.benchmark_group("translog");
    group.sample_size(20);

    group.bench_function("append_100_sync_once", |b| {
        let dir = std::env::temp_dir().join("esdb-bench-translog");
        let _ = std::fs::remove_dir_all(&dir);
        let mut log = Translog::open(&dir).expect("open");
        let ops: Vec<WriteOp> = (0..100).map(op).collect();
        b.iter(|| {
            for o in &ops {
                log.append(o).expect("append");
            }
            black_box(log.sync().expect("sync"))
        });
    });

    group.bench_function("replay_10k", |b| {
        let dir = std::env::temp_dir().join("esdb-bench-translog-replay");
        let _ = std::fs::remove_dir_all(&dir);
        let mut log = Translog::open(&dir).expect("open");
        for r in 0..10_000 {
            log.append(&op(r)).expect("append");
        }
        log.sync().expect("sync");
        b.iter(|| black_box(log.replay().expect("replay").len()));
    });
    group.finish();

    let mut group = c.benchmark_group("codec");
    let o = op(42);
    let bytes = encode_op(&o);
    group.bench_function("encode_op", |b| b.iter(|| black_box(encode_op(&o))));
    group.bench_function("decode_op", |b| {
        b.iter(|| black_box(decode_op(&bytes).expect("decode")))
    });
    group.finish();
}

criterion_group!(benches, bench_translog);
criterion_main!(benches);
