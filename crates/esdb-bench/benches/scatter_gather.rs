//! Scatter-gather parallelism benchmark: query throughput on a hot
//! tenant spanning 16–64 shards, at parallelism 1 (sequential baseline)
//! versus multi-threaded fan-out.
//!
//! Besides the human-readable report, writes a machine-readable summary
//! to `BENCH_scatter_gather.json` at the repository root so CI and the
//! paper-figure tooling can track the speedup without scraping stdout.

use criterion::black_box;
use esdb_common::exec::available_parallelism;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, RoutingMode};
use esdb_doc::CollectionSchema;
use esdb_workload::{DocGenerator, WriteEvent};
use std::path::PathBuf;
use std::time::Instant;

/// The hot tenant every query targets.
const HOT_TENANT: u64 = 10_086;
/// Rows the hot tenant holds on each shard of its span.
const ROWS_PER_SHARD: u64 = 2_000;
/// Timed samples per configuration (after warm-up).
const SAMPLES: usize = 15;

/// Fig. 17-shaped query templates (filter + sort + top-k, and a
/// range/IN combination), all pinned to the hot tenant.
fn templates() -> Vec<(&'static str, String)> {
    vec![
        (
            "status_topk",
            format!(
                "SELECT * FROM transaction_logs WHERE tenant_id = {HOT_TENANT} \
                 AND status = 1 ORDER BY created_time DESC LIMIT 100"
            ),
        ),
        (
            "range_in",
            format!(
                "SELECT * FROM transaction_logs WHERE tenant_id = {HOT_TENANT} \
                 AND created_time BETWEEN 1000000 AND 30000000 \
                 AND group IN (1, 2, 3) LIMIT 200"
            ),
        ),
    ]
}

/// Builds an instance whose hot tenant spans every one of `n_shards`
/// shards (static double hashing pins the span width deterministically,
/// so the bench needs no balancer warm-up).
fn build(n_shards: u32) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-scatter-{}-{}",
        n_shards,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(n_shards)
            .routing(RoutingMode::DoubleHashing(n_shards)),
    )
    .expect("open bench instance");
    let mut docs = DocGenerator::new(1_500, 20, 7);
    let total = ROWS_PER_SHARD * n_shards as u64;
    for r in 0..total {
        // 1-in-10 rows belong to background tenants so shards carry
        // unrelated data the query must skip past.
        let tenant = if r % 10 == 9 {
            1_000 + r % 97
        } else {
            HOT_TENANT
        };
        db.insert(docs.materialize(&WriteEvent {
            tenant: TenantId(tenant),
            record: RecordId(r),
            created_at: 1_000_000 + r * 350,
            bytes: 512,
        }))
        .expect("insert row");
    }
    db.refresh();
    db.merge();
    db.refresh();
    db
}

/// Runs every template once; returns the row keys in result order (the
/// determinism fingerprint).
fn run_all(db: &mut Esdb, qs: &[(&'static str, String)]) -> Vec<u64> {
    let mut fingerprint = Vec::new();
    for (_, sql) in qs {
        let rows = db.query(sql).expect("query");
        fingerprint.extend(rows.docs.iter().map(|d| d.record_id.raw()));
    }
    fingerprint
}

struct Measurement {
    shards: u32,
    parallelism: usize,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

fn measure(db: &mut Esdb, shards: u32, parallelism: usize) -> Measurement {
    let qs = templates();
    db.set_parallelism(parallelism);
    for _ in 0..2 {
        black_box(run_all(db, &qs));
    }
    let mut samples: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(run_all(db, &qs));
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    Measurement {
        shards,
        parallelism,
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    }
}

fn main() {
    let cores = available_parallelism();
    let mut results: Vec<Measurement> = Vec::new();
    let mut determinism_ok = true;

    // Degrees above the host's core count only measure scheduler
    // oversubscription, not scatter-gather: skip them, and say so in the
    // JSON so downstream tooling knows the grid was narrowed on purpose.
    let mut degrees = vec![1usize, 2, 4, 8];
    if !degrees.contains(&cores) {
        degrees.push(cores);
    }
    degrees.sort_unstable();
    let skipped: Vec<usize> = degrees.iter().copied().filter(|&d| d > cores).collect();
    degrees.retain(|&d| d <= cores);
    for d in &skipped {
        println!("scatter_gather: skipping parallelism={d} (> {cores} host cores)");
    }

    for shards in [16u32, 64] {
        let mut db = build(shards);

        // Determinism gate: every parallel degree must return
        // byte-identical rows in identical order to the sequential run.
        db.set_parallelism(1);
        let reference = run_all(&mut db, &templates());
        for degree in [2, 4, cores.max(2)] {
            db.set_parallelism(degree);
            if run_all(&mut db, &templates()) != reference {
                eprintln!("DETERMINISM VIOLATION at {shards} shards, parallelism {degree}");
                determinism_ok = false;
            }
        }

        for &degree in &degrees {
            let m = measure(&mut db, shards, degree);
            println!(
                "scatter_gather/{} shards/parallelism={}: median {:.3} ms (min {:.3}, max {:.3})",
                m.shards,
                m.parallelism,
                m.median_ns as f64 / 1e6,
                m.min_ns as f64 / 1e6,
                m.max_ns as f64 / 1e6,
            );
            results.push(m);
        }
    }

    // Speedup table vs the sequential baseline of the same shard count.
    println!();
    for shards in [16u32, 64] {
        let base = results
            .iter()
            .find(|m| m.shards == shards && m.parallelism == 1)
            .map(|m| m.median_ns)
            .unwrap_or(1);
        for m in results
            .iter()
            .filter(|m| m.shards == shards && m.parallelism > 1)
        {
            println!(
                "scatter_gather/{} shards: parallelism {} speedup {:.2}x",
                shards,
                m.parallelism,
                base as f64 / m.median_ns as f64
            );
        }
    }

    write_json(&results, cores, &skipped, determinism_ok);
    if !determinism_ok {
        std::process::exit(1);
    }
}

fn write_json(results: &[Measurement], cores: usize, skipped: &[usize], determinism_ok: bool) {
    // A parallelism grid measured on one core is inherently degraded.
    let degraded = esdb_bench::degraded_single_core(false);
    let mut configs = String::new();
    for (i, m) in results.iter().enumerate() {
        let base = results
            .iter()
            .find(|b| b.shards == m.shards && b.parallelism == 1)
            .map(|b| b.median_ns)
            .unwrap_or(1);
        if i > 0 {
            configs.push_str(",\n");
        }
        configs.push_str(&format!(
            "    {{\"shards\": {}, \"parallelism\": {}, \"median_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"samples\": {}, \"speedup_vs_sequential\": {:.4}}}",
            m.shards,
            m.parallelism,
            m.median_ns,
            m.min_ns,
            m.max_ns,
            SAMPLES,
            base as f64 / m.median_ns as f64,
        ));
    }
    let skipped_json = skipped
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"scatter_gather\",\n  \"hot_tenant\": {HOT_TENANT},\n  \
         \"rows_per_shard\": {ROWS_PER_SHARD},\n  \"host_cores\": {cores},\n  \
         \"degraded_single_core\": {degraded},\n  \
         \"skipped_degrees_above_host_cores\": [{skipped_json}],\n  \
         \"parallel_results_identical_to_sequential\": {determinism_ok},\n  \
         \"configs\": [\n{configs}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scatter_gather.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
