//! Failover benchmark: kill the hottest node mid-Zipf-workload and
//! measure recovery (§3.3, §5.2 availability).
//!
//! The scenario:
//!
//! 1. drives a Zipf(θ)-skewed write workload into a `SimCluster`,
//! 2. after a warmup, identifies the *hottest* node (most routed
//!    arrivals across the shards it hosts as primary) and schedules a
//!    deterministic chaos plan: crash it, restart it after a fixed
//!    downtime,
//! 3. keeps the load running through the failure — writes to dead or
//!    in-transition shards back off with bounded retry, replicas promote
//!    by replaying their translog tails,
//! 4. drains, then reports promotion latency p50/p99, per-node
//!    unavailability, replayed ops, and retry counts from the shared
//!    telemetry registry, and
//! 5. writes `BENCH_failover.json` at the repository root.
//!
//! Gates (non-zero exit on violation):
//!
//! - zero lost acknowledged writes and zero retry-exhausted failures
//!   (every generated write completes: conservation),
//! - at least one promotion with replayed ops (the failover actually ran),
//! - recovery drains within a bounded tick budget,
//! - the same seed produces a byte-identical JSON report across two full
//!   scenario runs (end-to-end determinism),
//! - the Prometheus exposition passes `lint_prometheus` and carries the
//!   recovery series.
//!
//! Pass `--fast` (or set `FAILOVER_BENCH_FAST=1`) for the CI smoke
//! configuration.

use esdb_chaos::{ChaosEvent, ChaosSchedule};
use esdb_cluster::{ClusterConfig, PolicySpec, SimCluster};
use esdb_telemetry::{lint_prometheus, unresolved_parents, Event};
use esdb_workload::{RateSchedule, TraceGenerator};

/// Zipf skew of the tenant choice (the paper's hot-tenant regime).
const THETA: f64 = 0.99;
/// Workload seed; the chaos schedule derives from the run itself (the
/// hottest node), so this one seed pins the whole scenario.
const SEED: u64 = 42;

struct Scale {
    mode: &'static str,
    n_nodes: u32,
    n_shards: u32,
    node_capacity_per_sec: f64,
    rate: f64,
    tenants: usize,
    /// Ticks of warmup before the kill.
    warmup_ticks: u64,
    /// Downtime of the killed node, ms.
    downtime_ms: u64,
    /// Ticks of load after the kill (covers downtime + restart).
    loaded_ticks: u64,
    /// Max drain ticks before the bounded-recovery gate fails.
    max_recovery_ticks: u64,
}

const FULL: Scale = Scale {
    mode: "full",
    n_nodes: 8,
    n_shards: 64,
    node_capacity_per_sec: 4_000.0,
    rate: 10_000.0,
    tenants: 1_000,
    warmup_ticks: 100,
    downtime_ms: 10_000,
    loaded_ticks: 200,
    max_recovery_ticks: 600,
};

const FAST: Scale = Scale {
    mode: "fast",
    n_nodes: 4,
    n_shards: 32,
    node_capacity_per_sec: 1_000.0,
    rate: 1_200.0,
    tenants: 200,
    warmup_ticks: 30,
    downtime_ms: 5_000,
    loaded_ticks: 90,
    max_recovery_ticks: 400,
};

struct ScenarioResult {
    json: String,
    prometheus: String,
    bundle_json: String,
    gates: Vec<String>,
}

/// Walks the flight-recorder journal for the full causal chain of one
/// failover: chaos fault → node crash → promotion start → translog
/// replay → promotion complete, plus restart → resync. Each link must
/// name its predecessor via `parent_seq`.
fn causal_chain_gates(journal: &[Event]) -> Vec<String> {
    let mut gates = Vec::new();
    let find = |name: &str, parent: Option<u64>| {
        journal
            .iter()
            .find(|e| e.kind.name() == name && parent.map_or(true, |p| e.parent_seq == p))
    };
    let Some(crash) = find("node_crashed", None) else {
        gates.push("journal missing node_crashed".into());
        return gates;
    };
    if crash.parent_seq == esdb_telemetry::NO_PARENT {
        gates.push("node_crashed is not linked to its chaos fault".into());
    } else if find("chaos_fault_injected", None).is_none() {
        gates.push("journal missing chaos_fault_injected".into());
    }
    let Some(started) = find("promotion_started", Some(crash.seq)) else {
        gates.push("no promotion_started caused by the node crash".into());
        return gates;
    };
    let Some(replayed) = find("translog_replayed", Some(started.seq)) else {
        gates.push("no translog_replayed caused by the promotion".into());
        return gates;
    };
    if find("promotion_completed", Some(replayed.seq)).is_none() {
        gates.push("no promotion_completed caused by the translog replay".into());
    }
    let Some(restarted) = find("node_restarted", Some(crash.seq)) else {
        gates.push("no node_restarted linked back to the crash".into());
        return gates;
    };
    // Resyncs are caused by the crash (dead replica rebuilt on a
    // survivor) or by the restart (returning node re-adopts a copy) —
    // either way the link must point into the failover chain.
    if find("replica_resynced", Some(crash.seq)).is_none()
        && find("replica_resynced", Some(restarted.seq)).is_none()
    {
        gates.push("no replica_resynced linked to the crash or restart".into());
    }
    gates
}

/// Hottest node = most routed arrivals summed over the shards it
/// currently hosts as primary.
fn hottest_node(cluster: &SimCluster, n_nodes: u32) -> u32 {
    let arrivals = &cluster.report_so_far().per_shard_arrivals;
    let mut per_node = vec![0u64; n_nodes as usize];
    for (s, &a) in arrivals.iter().enumerate() {
        per_node[cluster.primary_of(esdb_common::ShardId(s as u32)) as usize] += a;
    }
    per_node
        .iter()
        .enumerate()
        .max_by_key(|&(_, &a)| a)
        .map(|(i, _)| i as u32)
        .expect("at least one node")
}

fn run_scenario(scale: &Scale) -> ScenarioResult {
    let mut cfg = ClusterConfig::small(PolicySpec::DoubleHashing { s: 8 });
    cfg.n_nodes = scale.n_nodes;
    cfg.n_shards = scale.n_shards;
    cfg.node_capacity_per_sec = scale.node_capacity_per_sec;
    cfg.balancer = esdb_balancer::BalancerConfig::new(scale.n_shards, scale.n_nodes);
    let tick_ms = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut gen = TraceGenerator::new(
        scale.tenants,
        THETA,
        RateSchedule::constant(scale.rate),
        SEED,
    );
    let mut generated = 0u64;
    let load = |cluster: &mut SimCluster, gen: &mut TraceGenerator, ticks: u64| {
        let mut n = 0u64;
        for _ in 0..ticks {
            let now = cluster.now();
            let events = gen.tick(now, tick_ms);
            n += events.len() as u64;
            cluster.step(events);
        }
        n
    };

    // Warmup, then kill the node the skewed workload hits hardest.
    generated += load(&mut cluster, &mut gen, scale.warmup_ticks);
    let victim = hottest_node(&cluster, scale.n_nodes);
    let crash_ms = cluster.now();
    let restart_ms = crash_ms + scale.downtime_ms;
    cluster.set_chaos_schedule(
        ChaosSchedule::new()
            .at(crash_ms, ChaosEvent::NodeCrash { node: victim })
            .at(restart_ms, ChaosEvent::NodeRestart { node: victim }),
    );
    generated += load(&mut cluster, &mut gen, scale.loaded_ticks);

    // Drain: recovery must finish within the tick budget.
    let mut recovery_ticks = 0u64;
    while cluster.in_flight() > 0 && recovery_ticks < scale.max_recovery_ticks {
        cluster.step(Vec::new());
        recovery_ticks += 1;
    }
    let drained = cluster.in_flight() == 0;

    let snap = cluster.telemetry_snapshot();
    let prometheus = snap.to_prometheus();
    let bundle = cluster.debug_bundle();
    let bundle_json = bundle.to_json();
    let report = cluster.finish();
    let completed: u64 = report.ticks.iter().map(|t| t.completed).sum();

    let promo = snap
        .histograms
        .iter()
        .find(|(n, _, _)| n == "esdb_failover_promotion_ms")
        .map(|(_, _, h)| h.clone())
        .expect("promotion histogram registered");
    let unavail = snap
        .histograms
        .iter()
        .find(|(n, _, _)| n == "esdb_sim_node_unavailability_ms")
        .map(|(_, _, h)| h.clone())
        .expect("unavailability histogram registered");

    let mut gates = Vec::new();
    if report.lost_acknowledged_writes != 0 {
        gates.push(format!(
            "lost {} acknowledged writes (replica existed for every shard)",
            report.lost_acknowledged_writes
        ));
    }
    if report.failed_writes != 0 {
        gates.push(format!(
            "{} writes exhausted their retry budget",
            report.failed_writes
        ));
    }
    if completed != generated {
        gates.push(format!(
            "conservation broken: completed {completed} != generated {generated}"
        ));
    }
    if report.promotions == 0 {
        gates.push("no promotions — the kill never triggered failover".into());
    }
    if report.replayed_ops == 0 {
        gates.push("promotions replayed zero translog ops".into());
    }
    if !drained {
        gates.push(format!(
            "recovery did not drain within {} ticks",
            scale.max_recovery_ticks
        ));
    }
    gates.extend(causal_chain_gates(&bundle.journal));
    let orphans = unresolved_parents(&bundle.journal, bundle.journal_evicted_max);
    if !orphans.is_empty() {
        gates.push(format!("journal has unresolved parent links: {orphans:?}"));
    }
    let lint = lint_prometheus(&prometheus);
    if !lint.is_empty() {
        gates.push(format!("prometheus lint: {lint:?}"));
    }
    for series in [
        "esdb_failover_promotion_ms",
        "esdb_failover_promotions_total",
        "esdb_failover_replayed_ops_total",
        "esdb_sim_node_unavailability_ms",
        "esdb_sim_node_up",
        "esdb_sim_write_retries_total",
    ] {
        if !prometheus.contains(series) {
            gates.push(format!("prometheus output missing {series}"));
        }
    }

    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(scale.mode == "fast");
    let json = format!(
        "{{\n  \"bench\": \"failover\",\n  \"mode\": \"{}\",\n  \"seed\": {SEED},\n  \
         \"host_cores\": {host_cores},\n  \"degraded_single_core\": {degraded},\n  \
         \"theta\": {THETA},\n  \"nodes\": {},\n  \"shards\": {},\n  \"rate_tps\": {},\n  \
         \"killed_node\": {victim},\n  \"crash_ms\": {crash_ms},\n  \
         \"restart_ms\": {restart_ms},\n  \"generated\": {generated},\n  \
         \"completed\": {completed},\n  \"node_crashes\": {},\n  \"node_restarts\": {},\n  \
         \"promotions\": {},\n  \"replayed_ops\": {},\n  \"resync_ops\": {},\n  \
         \"promotion_p50_ms\": {},\n  \"promotion_p99_ms\": {},\n  \
         \"promotion_max_ms\": {},\n  \"node_unavailability_ms\": {},\n  \
         \"write_retries\": {},\n  \"failed_writes\": {},\n  \
         \"lost_acknowledged_writes\": {},\n  \"recovery_drain_ticks\": {recovery_ticks}\n}}\n",
        scale.mode,
        scale.n_nodes,
        scale.n_shards,
        scale.rate,
        report.node_crashes,
        report.node_restarts,
        report.promotions,
        report.replayed_ops,
        report.resync_ops,
        promo.quantile(0.50),
        promo.quantile(0.99),
        promo.max(),
        unavail.max(),
        report.write_retries,
        report.failed_writes,
        report.lost_acknowledged_writes,
    );
    ScenarioResult {
        json,
        prometheus,
        bundle_json,
        gates,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("FAILOVER_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };

    let first = run_scenario(&scale);
    let second = run_scenario(&scale);

    let mut gates = first.gates;
    if first.json != second.json {
        gates.push("DETERMINISM VIOLATION: same seed produced different reports".into());
    }
    if first.prometheus != second.prometheus {
        gates.push("DETERMINISM VIOLATION: telemetry diverged across reruns".into());
    }
    if first.bundle_json != second.bundle_json {
        gates.push("DETERMINISM VIOLATION: debug bundles diverged across reruns".into());
    }

    print!("{}", first.json);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_failover.json");
    match std::fs::write(path, &first.json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !gates.is_empty() {
        for g in &gates {
            eprintln!("failover: FAILED gate: {g}");
        }
        std::process::exit(1);
    }
    println!("failover/{}: all gates passed", scale.mode);
}
