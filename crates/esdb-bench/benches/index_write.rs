//! Indexing-path benchmarks: segment build (refresh), merge, and the
//! composite index's common-prefix compression (§5.1 ablation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_common::fastmap::fast_set;
use esdb_common::{RecordId, TenantId};
use esdb_doc::{CollectionSchema, Document};
use esdb_index::merge::merge_segments;
use esdb_index::SegmentBuilder;
use esdb_workload::{DocGenerator, WriteEvent};

fn docs(n: u64) -> Vec<Document> {
    let mut gen = DocGenerator::new(1_500, 20, 7);
    (0..n)
        .map(|r| {
            gen.materialize(&WriteEvent {
                tenant: TenantId(r % 50),
                record: RecordId(r),
                created_at: 1_000_000 + r,
                bytes: 512,
            })
        })
        .collect()
}

fn bench_index_write(c: &mut Criterion) {
    let schema = CollectionSchema::transaction_logs();

    let mut group = c.benchmark_group("segment_build");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        let ds = docs(n);
        group.bench_with_input(BenchmarkId::new("refresh", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut builder = SegmentBuilder::without_attr_index(schema.clone());
                    for d in &ds {
                        builder.add(d.clone());
                    }
                    builder
                },
                |mut builder| black_box(builder.refresh(1)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("segment_merge");
    group.sample_size(10);
    let parts: Vec<_> = (0..4u64)
        .map(|i| {
            let mut b = SegmentBuilder::without_attr_index(schema.clone());
            for d in docs(2_500) {
                let shifted = Document::builder(
                    d.tenant_id,
                    RecordId(d.record_id.raw() + i * 10_000),
                    d.created_at,
                )
                .build();
                b.add(shifted);
            }
            b.refresh(i)
        })
        .collect();
    group.bench_function("merge_4x2500", |b| {
        let refs: Vec<&esdb_index::Segment> = parts.iter().collect();
        b.iter(|| black_box(merge_segments(99, &refs, &schema, &fast_set())))
    });
    group.finish();

    // Ablation: composite-index common-prefix compression.
    let mut builder = SegmentBuilder::without_attr_index(schema.clone());
    for d in docs(10_000) {
        builder.add(d);
    }
    let seg = builder.refresh(1);
    let comp = seg.composite("tenant_id_created_time").expect("composite");
    eprintln!(
        "[ablation] composite index serialized size: {} B compressed vs {} B raw ({:.1}% saved)",
        comp.compressed_size(),
        comp.uncompressed_size(),
        100.0 * (1.0 - comp.compressed_size() as f64 / comp.uncompressed_size() as f64)
    );
}

criterion_group!(benches, bench_index_write);
criterion_main!(benches);
