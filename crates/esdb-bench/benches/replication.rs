//! Replication benchmarks: logical vs physical cost per write batch, and
//! the segment-diff computation (§5.2). The measured logical/physical cost
//! ratio is what calibrates the simulator's `replica_cost` (Fig. 15).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use esdb_common::{RecordId, SharedClock, TenantId};
use esdb_doc::{CollectionSchema, Document, WriteOp};
use esdb_replication::{segment_diff, ReplicatedPair, ReplicationMode, SnapshotInfo};

fn op(r: u64) -> WriteOp {
    WriteOp::insert(
        Document::builder(TenantId(1 + r % 10), RecordId(r), 1_000 + r)
            .field("status", (r % 3) as i64)
            .field("group", (r % 100) as i64)
            .field("auction_title", format!("benchmark item number {r}"))
            .build(),
    )
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("replicate_1000_writes_and_refresh");
    group.sample_size(10);
    for (name, mode) in [
        ("logical", ReplicationMode::Logical),
        (
            "physical",
            ReplicationMode::Physical {
                pre_replicate_merges: true,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let dir = std::env::temp_dir().join(format!("esdb-bench-repl-{name}-{round}"));
                let _ = std::fs::remove_dir_all(&dir);
                let (clock, _d) = SharedClock::manual(0);
                let mut pair =
                    ReplicatedPair::open(CollectionSchema::transaction_logs(), &dir, mode, clock)
                        .expect("open");
                for r in 0..1_000 {
                    pair.write(&op(r)).expect("write");
                }
                pair.refresh().expect("refresh");
                black_box(pair.replica_live_docs());
                let _ = std::fs::remove_dir_all(&dir);
            })
        });
    }
    group.finish();
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_diff");
    for n in [10usize, 100, 1_000] {
        let snapshot = SnapshotInfo {
            snapshot_id: 1,
            segments: (0..n as u64).map(|i| (i, 1_000)).collect(),
        };
        // Replica is missing every 10th segment and has 5 stale ones.
        let local: Vec<u64> = (0..n as u64)
            .filter(|i| i % 10 != 0)
            .chain(10_000..10_005)
            .collect();
        group.bench_function(format!("diff_{n}"), |b| {
            b.iter(|| black_box(segment_diff(&snapshot, &local)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_diff);
criterion_main!(benches);
