//! Zipf sampler benchmarks: table-based inverse CDF vs rejection
//! inversion, across population sizes (the workload generator samples one
//! tenant per simulated write, so this is on the simulator's hot path).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_common::zipf::{ZipfRejection, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sample");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        let table = ZipfSampler::new(n, 1.0);
        group.bench_with_input(BenchmarkId::new("table", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(table.sample(&mut rng)))
        });
        let rej = ZipfRejection::new(n as u64, 1.0);
        group.bench_with_input(BenchmarkId::new("rejection", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(rej.sample(&mut rng)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("zipf_build");
    group.sample_size(10);
    group.bench_function("table_1M", |b| {
        b.iter(|| black_box(ZipfSampler::new(1_000_000, 1.0)))
    });
    group.bench_function("rejection_1M", |b| {
        b.iter(|| black_box(ZipfRejection::new(1_000_000, 1.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_zipf);
criterion_main!(benches);
