//! Skew-aware query-cache benchmark: Zipf-distributed repeated queries
//! against hot tenants, cold versus warm, cache on versus off.
//!
//! The access pattern is the one the paper's workload analysis motivates
//! (§2, §6.1): a handful of hot tenants issue the same template queries
//! over and over between refresh intervals, so both cache tiers should
//! convert the repeats into hits. The benchmark:
//!
//! 1. loads identical data into a cache-enabled and a cache-disabled
//!    instance,
//! 2. draws one query sequence with Zipf(θ)-skewed tenant choice,
//! 3. verifies row-identical results between the two instances on a cold
//!    AND a warm pass (the determinism gate),
//! 4. times the cold pass, warm passes (enabled), and uncached passes
//!    (disabled), and
//! 5. writes `BENCH_query_cache.json` at the repository root.
//!
//! Exits non-zero if the determinism gate fails or the warm passes are
//! slower than the uncached baseline (speedup < 1.0). Pass `--fast` (or
//! set `QUERY_CACHE_BENCH_FAST=1`) for the CI smoke configuration.

use criterion::black_box;
use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::CollectionSchema;
use esdb_workload::{DocGenerator, WriteEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

/// Zipf skew of the tenant choice (the paper's hot-tenant regime).
const THETA: f64 = 0.99;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    rows: u64,
    queries_per_pass: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 8,
    tenants: 20,
    rows: 48_000,
    queries_per_pass: 200,
    samples: 9,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 4,
    tenants: 10,
    rows: 6_000,
    queries_per_pass: 60,
    samples: 5,
};

/// The template queries a hot tenant repeats (filter + sort + top-k
/// shapes from Fig. 17). Small LIMITs keep the fetch phase — paid by
/// cached and uncached execution alike — from hiding the index and sort
/// work the cache saves.
fn templates(tenant: u64) -> [String; 3] {
    [
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND status = 1 ORDER BY created_time DESC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND group IN (1, 2, 3) ORDER BY created_time ASC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND created_time BETWEEN 1000000 AND 100000000 \
             ORDER BY created_time DESC LIMIT 50"
        ),
    ]
}

fn build(scale: &Scale, caches: bool) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-qcache-{}-{}-{}",
        scale.mode,
        caches,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(scale.shards)
            .query_caches(caches),
    )
    .expect("open bench instance");
    let mut docs = DocGenerator::new(1_500, 20, 7);
    // Tenant data itself is Zipf-skewed too: hot tenants own most rows,
    // so their queries are the expensive ones the cache absorbs.
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(7);
    for r in 0..scale.rows {
        let tenant = 1 + zipf.sample(&mut rng) as u64;
        db.insert(docs.materialize(&WriteEvent {
            tenant: TenantId(tenant),
            record: RecordId(r),
            created_at: 1_000_000 + r * 350,
            bytes: 512,
        }))
        .expect("insert row");
    }
    db.refresh();
    db.merge();
    db.refresh();
    db
}

/// The Zipf-skewed query sequence: identical for every instance and pass.
fn query_sequence(scale: &Scale) -> Vec<String> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(42);
    (0..scale.queries_per_pass)
        .map(|_| {
            let tenant = 1 + zipf.sample(&mut rng) as u64;
            let t = templates(tenant);
            t[rng.random_range(0..t.len())].clone()
        })
        .collect()
}

/// Runs one pass; returns the row-key fingerprint of every result.
fn run_pass(db: &mut Esdb, seq: &[String]) -> Vec<u64> {
    let mut fingerprint = Vec::new();
    for sql in seq {
        let rows = db.query(sql).expect("query");
        fingerprint.push(rows.docs.len() as u64);
        fingerprint.extend(rows.docs.iter().map(|d| d.record_id.raw()));
    }
    fingerprint
}

fn time_pass(db: &mut Esdb, seq: &[String]) -> u128 {
    let t0 = Instant::now();
    black_box(run_pass(db, seq));
    t0.elapsed().as_nanos()
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("QUERY_CACHE_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };
    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(fast);
    let seq = query_sequence(&scale);

    let mut on = build(&scale, true);
    let mut off = build(&scale, false);

    // Determinism gate: cache-on must be row-identical to cache-off on
    // the cold pass (both empty) and on warm passes (hits serving).
    let mut determinism_ok = true;
    let reference = run_pass(&mut off, &seq);
    let cold_check = run_pass(&mut on, &seq);
    if cold_check != reference {
        eprintln!("DETERMINISM VIOLATION: cold cached pass diverged from uncached");
        determinism_ok = false;
    }
    for pass in 0..2 {
        if run_pass(&mut on, &seq) != reference {
            eprintln!("DETERMINISM VIOLATION: warm cached pass {pass} diverged from uncached");
            determinism_ok = false;
        }
    }

    // Tier-1 exercise: land new rows for the hottest tenants and refresh.
    // Every mutated shard's generation bumps, so tier 2 misses there —
    // but the *old* segments are untouched and their cached posting lists
    // must serve (tier-1 hits) under the new segment lists.
    let mut docs = DocGenerator::new(1_500, 20, 7);
    for (i, tenant) in (1..=3u64).enumerate() {
        for k in 0..20u64 {
            let r = scale.rows + i as u64 * 100 + k;
            let ev = WriteEvent {
                tenant: TenantId(tenant),
                record: RecordId(r),
                created_at: 1_000_000 + r * 350,
                bytes: 512,
            };
            let d = docs.materialize(&ev);
            on.insert(d.clone()).expect("insert row");
            off.insert(d).expect("insert row");
        }
    }
    on.refresh();
    off.refresh();
    for sql in &seq {
        let a = off.query(sql).expect("query");
        let b = on.query(sql).expect("query");
        let ka: Vec<u64> = a.docs.iter().map(|d| d.record_id.raw()).collect();
        let kb: Vec<u64> = b.docs.iter().map(|d| d.record_id.raw()).collect();
        if ka != kb {
            eprintln!(
                "DETERMINISM VIOLATION: post-mutation divergence on {sql}\n  uncached: {ka:?}\n  cached:   {kb:?}"
            );
            determinism_ok = false;
            break;
        }
    }
    let tier1_hits_after_mutation = on.stats().filter_cache.hits;

    // Timings. A fresh cache-enabled instance gives an honest cold pass;
    // `on` is already warm for the warm samples.
    let mut cold_db = build(&scale, true);
    let cold_ns = time_pass(&mut cold_db, &seq);
    let mut warm: Vec<u128> = (0..scale.samples)
        .map(|_| time_pass(&mut on, &seq))
        .collect();
    let mut uncached: Vec<u128> = (0..scale.samples)
        .map(|_| time_pass(&mut off, &seq))
        .collect();
    let warm_median = median(&mut warm);
    let uncached_median = median(&mut uncached);
    let warm_speedup = uncached_median as f64 / warm_median as f64;
    let cold_vs_warm = cold_ns as f64 / warm_median as f64;

    let stats = on.stats();
    println!(
        "query_cache/{}: cold {:.3} ms, warm median {:.3} ms, uncached median {:.3} ms",
        scale.mode,
        cold_ns as f64 / 1e6,
        warm_median as f64 / 1e6,
        uncached_median as f64 / 1e6,
    );
    println!(
        "query_cache/{}: warm speedup vs uncached {:.2}x, cold vs warm {:.2}x",
        scale.mode, warm_speedup, cold_vs_warm
    );
    println!(
        "query_cache/{}: tier1 hits {} (of which {} post-mutation) misses {} bytes {}, \
         tier2 hits {} misses {} entries {}",
        scale.mode,
        stats.filter_cache.hits,
        tier1_hits_after_mutation,
        stats.filter_cache.misses,
        stats.filter_cache.bytes,
        stats.request_cache.hits,
        stats.request_cache.misses,
        stats.request_cache.entries,
    );

    let json = format!(
        "{{\n  \"bench\": \"query_cache\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"rows\": {},\n  \"queries_per_pass\": {},\n  \
         \"samples\": {},\n  \"host_cores\": {host_cores},\n  \
         \"degraded_single_core\": {degraded},\n  \"cold_pass_ns\": {cold_ns},\n  \
         \"warm_median_ns\": {warm_median},\n  \"uncached_median_ns\": {uncached_median},\n  \
         \"warm_speedup_vs_uncached\": {warm_speedup:.4},\n  \
         \"cold_vs_warm_speedup\": {cold_vs_warm:.4},\n  \
         \"cached_results_identical_to_uncached\": {determinism_ok},\n  \
         \"tier1_hits_after_mutation\": {tier1_hits_after_mutation},\n  \
         \"filter_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"bytes\": {}, \"entries\": {}}},\n  \
         \"request_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {}}}\n}}\n",
        scale.mode,
        scale.shards,
        scale.tenants,
        scale.rows,
        scale.queries_per_pass,
        scale.samples,
        stats.filter_cache.hits,
        stats.filter_cache.misses,
        stats.filter_cache.evictions,
        stats.filter_cache.bytes,
        stats.filter_cache.entries,
        stats.request_cache.hits,
        stats.request_cache.misses,
        stats.request_cache.evictions,
        stats.request_cache.entries,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_cache.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !determinism_ok {
        eprintln!("query_cache: FAILED determinism gate");
        std::process::exit(1);
    }
    if warm_speedup < 1.0 {
        eprintln!("query_cache: FAILED warm speedup {warm_speedup:.2}x < 1.0x");
        std::process::exit(1);
    }
}
