//! Telemetry overhead benchmark: the same skewed write + query workload
//! against a telemetry-enabled and a telemetry-disabled instance.
//!
//! The tentpole claim the telemetry layer makes is that its hot paths
//! are cheap enough to leave on: atomic-only metric updates, 1-in-N
//! trace sampling, and branch-only probes when disabled. This benchmark
//! checks that claim end to end:
//!
//! 1. loads identical data into a telemetry-on and a telemetry-off
//!    instance (everything else identical, parallelism 1 so timings are
//!    not scheduler noise),
//! 2. times interleaved write passes (identical pre-materialized
//!    documents) and warm query passes (identical Zipf-skewed sequence)
//!    on both, alternating measurement order to cancel drift,
//! 3. verifies row-identical query results between the two instances
//!    (the determinism gate — telemetry must never change results),
//! 4. lints the Prometheus exposition of the enabled instance and
//!    checks histogram counts round-trip identically between the
//!    Prometheus and JSON renderings, and
//! 5. writes `BENCH_telemetry_overhead.json` at the repository root.
//!
//! Exits non-zero if determinism, the format lint, or the round-trip
//! gate fails — or, in full mode, if the median paired overhead of
//! either path exceeds the gate (3%). Fast mode (`--fast` /
//! `TELEMETRY_OVERHEAD_BENCH_FAST=1`) reports overhead but only
//! enforces the correctness gates, since CI timing noise at small
//! scales swamps single-digit percentages.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document};
use esdb_telemetry::{json_histogram_counts, lint_prometheus, prometheus_histogram_counts};
use esdb_workload::{DocGenerator, WriteEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Zipf skew of tenant choice, writes and queries alike.
const THETA: f64 = 0.99;

/// Full-mode overhead ceiling, percent, for each path.
const OVERHEAD_GATE_PCT: f64 = 3.0;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    preload_rows: u64,
    rows_per_pass: u64,
    queries_per_pass: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 8,
    tenants: 20,
    preload_rows: 24_000,
    rows_per_pass: 4_000,
    queries_per_pass: 200,
    samples: 13,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 4,
    tenants: 10,
    preload_rows: 4_000,
    rows_per_pass: 800,
    queries_per_pass: 60,
    samples: 5,
};

/// Query templates a hot tenant repeats (same shapes as the query-cache
/// bench, so both benches exercise the same paths).
fn templates(tenant: u64) -> [String; 3] {
    [
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND status = 1 ORDER BY created_time DESC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND group IN (1, 2, 3) ORDER BY created_time ASC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND created_time BETWEEN 1000000 AND 100000000 \
             ORDER BY created_time DESC LIMIT 50"
        ),
    ]
}

fn build(scale: &Scale, telemetry: bool) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-telemetry-{}-{}-{}",
        scale.mode,
        telemetry,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(scale.shards)
            .parallelism(1)
            .telemetry(telemetry),
    )
    .expect("open bench instance")
}

/// Deterministic stream of pre-materialized documents; both instances
/// insert clones of the same documents in the same order.
struct RowStream {
    docs: DocGenerator,
    zipf: ZipfSampler,
    rng: StdRng,
    next_record: u64,
}

impl RowStream {
    fn new(tenants: usize) -> Self {
        RowStream {
            docs: DocGenerator::new(1_500, 20, 7),
            zipf: ZipfSampler::new(tenants, THETA),
            rng: StdRng::seed_from_u64(7),
            next_record: 0,
        }
    }

    fn batch(&mut self, n: u64) -> Vec<Document> {
        (0..n)
            .map(|_| {
                let r = self.next_record;
                self.next_record += 1;
                let tenant = 1 + self.zipf.sample(&mut self.rng) as u64;
                self.docs.materialize(&WriteEvent {
                    tenant: TenantId(tenant),
                    record: RecordId(r),
                    created_at: 1_000_000 + r * 350,
                    bytes: 512,
                })
            })
            .collect()
    }
}

fn query_sequence(scale: &Scale) -> Vec<String> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(42);
    (0..scale.queries_per_pass)
        .map(|_| {
            let tenant = 1 + zipf.sample(&mut rng) as u64;
            let t = templates(tenant);
            t[rng.random_range(0..t.len())].clone()
        })
        .collect()
}

fn run_query_pass(db: &mut Esdb, seq: &[String]) -> Vec<u64> {
    let mut fingerprint = Vec::new();
    for sql in seq {
        let rows = db.query(sql).expect("query");
        fingerprint.push(rows.docs.len() as u64);
        fingerprint.extend(rows.docs.iter().map(|d| d.record_id.raw()));
    }
    fingerprint
}

fn time_query_pass(db: &mut Esdb, seq: &[String]) -> u128 {
    let t0 = Instant::now();
    black_box(run_query_pass(db, seq));
    t0.elapsed().as_nanos()
}

fn time_write_pass(db: &mut Esdb, docs: &[Document]) -> u128 {
    let t0 = Instant::now();
    for d in docs {
        black_box(db.insert(d.clone()).expect("insert row"));
    }
    t0.elapsed().as_nanos()
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Overhead from the median of *paired* chunk ratios. Each pair is the
/// two arms measured back-to-back on the same chunk, so slow drift
/// (instance growth, frequency scaling) cancels within the pair; taking
/// the median over ~100 pairs then discards the few where a one-off
/// event (scheduler preemption, page reclaim, translog rollover) landed
/// in one arm only. Far more stable than the ratio of per-arm medians.
fn paired_overhead_pct(pairs: &[(u128, u128)]) -> f64 {
    let mut ratios: Vec<f64> = pairs
        .iter()
        .filter(|&&(_, b)| b > 0)
        .map(|&(a, b)| a as f64 / b as f64)
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("TELEMETRY_OVERHEAD_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };

    let mut on = build(&scale, true);
    let mut off = build(&scale, false);
    let mut rows = RowStream::new(scale.tenants);

    // Identical preload.
    for d in rows.batch(scale.preload_rows) {
        on.insert(d.clone()).expect("insert row");
        off.insert(d).expect("insert row");
    }
    on.refresh();
    off.refresh();
    on.merge();
    off.merge();
    on.refresh();
    off.refresh();

    // Write-path timing: each sample inserts the same fresh batch into
    // both instances, alternating the arm order chunk by chunk so
    // system-level events (frequency scaling, reclaim) hit both arms
    // evenly, and refreshing between samples so buffered-write state
    // doesn't accumulate into monotone drift across the run.
    let chunk_rows = (scale.rows_per_pass / 8).max(1) as usize;
    // Untimed warm-up pass: the first writes after a merge pay one-off
    // costs (buffer growth, translog open) that belong to neither arm.
    for d in rows.batch(scale.rows_per_pass) {
        on.insert(d.clone()).expect("insert row");
        off.insert(d).expect("insert row");
    }
    on.refresh();
    off.refresh();
    let mut write_on: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut write_off: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut write_pairs: Vec<(u128, u128)> = Vec::new();
    for s in 0..scale.samples {
        let batch = rows.batch(scale.rows_per_pass);
        let mut t_on = 0u128;
        let mut t_off = 0u128;
        for (c, chunk) in batch.chunks(chunk_rows).enumerate() {
            let (a, b) = if (s + c) % 2 == 0 {
                let a = time_write_pass(&mut on, chunk);
                let b = time_write_pass(&mut off, chunk);
                (a, b)
            } else {
                let b = time_write_pass(&mut off, chunk);
                let a = time_write_pass(&mut on, chunk);
                (a, b)
            };
            t_on += a;
            t_off += b;
            write_pairs.push((a, b));
        }
        write_on.push(t_on);
        write_off.push(t_off);
        on.refresh();
        off.refresh();
    }

    // Determinism gate: telemetry must never change query results.
    let seq = query_sequence(&scale);
    let mut determinism_ok = true;
    if run_query_pass(&mut on, &seq) != run_query_pass(&mut off, &seq) {
        eprintln!("DETERMINISM VIOLATION: telemetry-on results diverged from telemetry-off");
        determinism_ok = false;
    }

    // Query-path timing: warm passes (both instances just ran the
    // sequence once), chunk-paired like the write passes.
    let chunk_queries = (scale.queries_per_pass / 8).max(1);
    let mut query_on: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut query_off: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut query_pairs: Vec<(u128, u128)> = Vec::new();
    for s in 0..scale.samples {
        let mut t_on = 0u128;
        let mut t_off = 0u128;
        for (c, chunk) in seq.chunks(chunk_queries).enumerate() {
            let (a, b) = if (s + c) % 2 == 0 {
                let a = time_query_pass(&mut on, chunk);
                let b = time_query_pass(&mut off, chunk);
                (a, b)
            } else {
                let b = time_query_pass(&mut off, chunk);
                let a = time_query_pass(&mut on, chunk);
                (a, b)
            };
            t_on += a;
            t_off += b;
            query_pairs.push((a, b));
        }
        query_on.push(t_on);
        query_off.push(t_off);
    }

    let write_overhead = paired_overhead_pct(&write_pairs);
    let query_overhead = paired_overhead_pct(&query_pairs);
    let write_on_med = median(&mut write_on);
    let write_off_med = median(&mut write_off);
    let query_on_med = median(&mut query_on);
    let query_off_med = median(&mut query_off);

    // Exposition gates on the enabled instance: the Prometheus text
    // must lint clean, and histogram counts must round-trip identically
    // between the Prometheus and JSON renderings.
    let snap = on.telemetry_snapshot();
    let prom = snap.to_prometheus();
    let json = snap.to_json();
    let lint = lint_prometheus(&prom);
    let prom_counts = prometheus_histogram_counts(&prom);
    let json_counts = json_histogram_counts(&json);
    let round_trip_ok = !prom_counts.is_empty() && prom_counts == json_counts;
    let histogram_series = snap.histograms.len();
    let slow_logged = on.slow_queries().len();

    println!(
        "telemetry_overhead/{}: write on {:.3} ms / off {:.3} ms ({:+.2}%)",
        scale.mode,
        write_on_med as f64 / 1e6,
        write_off_med as f64 / 1e6,
        write_overhead,
    );
    println!(
        "telemetry_overhead/{}: query on {:.3} ms / off {:.3} ms ({:+.2}%)",
        scale.mode,
        query_on_med as f64 / 1e6,
        query_off_med as f64 / 1e6,
        query_overhead,
    );
    println!(
        "telemetry_overhead/{}: {} histogram series, {} slow-logged, \
         lint violations {}, round-trip {}",
        scale.mode,
        histogram_series,
        slow_logged,
        lint.len(),
        if round_trip_ok { "ok" } else { "MISMATCH" },
    );
    for v in &lint {
        eprintln!("PROMETHEUS LINT: {v}");
    }

    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(scale.mode == "fast");
    let json_out = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"preload_rows\": {},\n  \
         \"rows_per_pass\": {},\n  \"queries_per_pass\": {},\n  \"samples\": {},\n  \
         \"host_cores\": {host_cores},\n  \"degraded_single_core\": {degraded},\n  \
         \"write_on_median_ns\": {write_on_med},\n  \"write_off_median_ns\": {write_off_med},\n  \
         \"write_overhead_pct\": {write_overhead:.4},\n  \
         \"query_on_median_ns\": {query_on_med},\n  \"query_off_median_ns\": {query_off_med},\n  \
         \"query_overhead_pct\": {query_overhead:.4},\n  \
         \"overhead_gate_pct\": {OVERHEAD_GATE_PCT},\n  \
         \"results_identical_on_vs_off\": {determinism_ok},\n  \
         \"prometheus_lint_violations\": {},\n  \
         \"histogram_counts_round_trip\": {round_trip_ok},\n  \
         \"histogram_series\": {histogram_series},\n  \
         \"slow_queries_logged\": {slow_logged}\n}}\n",
        scale.mode,
        scale.shards,
        scale.tenants,
        scale.preload_rows,
        scale.rows_per_pass,
        scale.queries_per_pass,
        scale.samples,
        lint.len(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry_overhead.json"
    );
    match std::fs::write(path, &json_out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut failed = false;
    if !determinism_ok {
        eprintln!("telemetry_overhead: FAILED determinism gate");
        failed = true;
    }
    if !lint.is_empty() {
        eprintln!(
            "telemetry_overhead: FAILED Prometheus lint ({} violations)",
            lint.len()
        );
        failed = true;
    }
    if !round_trip_ok {
        eprintln!("telemetry_overhead: FAILED histogram count round-trip");
        failed = true;
    }
    if !fast && (write_overhead > OVERHEAD_GATE_PCT || query_overhead > OVERHEAD_GATE_PCT) {
        eprintln!(
            "telemetry_overhead: FAILED overhead gate (write {write_overhead:+.2}%, \
             query {query_overhead:+.2}% > {OVERHEAD_GATE_PCT}%)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
