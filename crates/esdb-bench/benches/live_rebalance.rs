//! Live-rebalance benchmark: force dynamic secondary hashing to grow a
//! hot tenant's span mid-run on the real engine and measure the
//! migration (§3.2 online rule commits, §4.2 segment handoff).
//!
//! The scenario:
//!
//! 1. preloads a Zipf(θ=0.99)-skewed corpus across `tenants` tenants —
//!    the Zipf head draws the bulk of the writes,
//! 2. commits a grow-rule through the balancer (commit-wait applied on
//!    the manual clock, so activation is deterministic),
//! 3. keeps the skewed write load running while the migration walks its
//!    lifecycle — segment handoff, translog-tail drain, barriered
//!    cutover — stepping one phase every `step_every` writes,
//! 4. verifies physical collapse (every hot row at exactly its new-span
//!    placement) and row identity across the cutover, and
//! 5. writes `BENCH_live_rebalance.json` at the repository root.
//!
//! Gates (non-zero exit on violation):
//!
//! - the skew actually commits a grow-rule and the migration reaches
//!   `done` (the span growth is forced, not incidental),
//! - zero lost acknowledged writes: every acked insert for the hot
//!   tenant is visible afterwards, exactly once (no duplicates across
//!   shards),
//! - row identity across the cutover: the pre-migration result set is
//!   byte-identical to the prefix of the post-migration result set,
//! - the old span fully collapsed (physical placement oracle),
//! - the journal carries the parent-linked lifecycle chain and the
//!   Prometheus exposition passes `lint_prometheus` with every
//!   `esdb_migration_*` series present,
//! - the same seed produces a byte-identical JSON report across two
//!   full scenario runs (end-to-end determinism on the manual clock).
//!
//! Pass `--fast` (or set `LIVE_REBALANCE_BENCH_FAST=1`) for the CI
//! smoke configuration.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, ShardId, SharedClock, TenantId};
use esdb_core::{Esdb, EsdbConfig, MigrationPhase};
use esdb_doc::{CollectionSchema, Document};
use esdb_routing::place;
use esdb_telemetry::{lint_prometheus, unresolved_parents, Event};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Zipf skew of the tenant choice (the paper's hot-tenant regime).
const THETA: f64 = 0.99;
/// One seed pins the tenant sequence, and the manual clock pins every
/// timestamp — the whole scenario is deterministic.
const SEED: u64 = 42;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    /// Rows written before the rule commits.
    preload_rows: u64,
    /// Rows written while the migration is in flight.
    live_rows: u64,
    /// Step the migration one phase every this many live writes.
    step_every: u64,
    /// Commit-wait applied to the rule's activation timestamp, ms.
    commit_wait_ms: u64,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 16,
    tenants: 1_000,
    preload_rows: 20_000,
    live_rows: 4_000,
    step_every: 500,
    commit_wait_ms: 5,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 8,
    tenants: 200,
    preload_rows: 3_000,
    live_rows: 600,
    step_every: 150,
    commit_wait_ms: 5,
};

struct ScenarioResult {
    json: String,
    prometheus: String,
    gates: Vec<String>,
}

/// Walks the journal for each migration's causal chain: hot-tenant
/// detection → rule append → migration start → segment shipping →
/// tail drain → cutover → completion. Several tenants can migrate in
/// one run, so the check follows real `parent_seq` links upward from
/// every completion rather than matching event names globally.
fn causal_chain_gates(journal: &[Event]) -> Vec<String> {
    let mut gates = Vec::new();
    let by_seq: std::collections::HashMap<u64, &Event> =
        journal.iter().map(|e| (e.seq, e)).collect();
    let chain = [
        "migration_completed",
        "migration_cutover",
        "migration_tail_drained",
        "migration_segments_shipped",
        "migration_started",
        "rule_appended",
        "hot_tenant_detected",
    ];
    let completions: Vec<&Event> = journal
        .iter()
        .filter(|e| e.kind.name() == "migration_completed")
        .collect();
    if completions.is_empty() {
        gates.push("journal has no migration_completed event".into());
    }
    for done in completions {
        let mut cur = done;
        for pair in chain.windows(2) {
            let Some(parent) = by_seq.get(&cur.parent_seq) else {
                gates.push(format!("{} (seq {}) has no parent", pair[0], cur.seq));
                break;
            };
            if parent.kind.name() != pair[1] {
                gates.push(format!(
                    "{} parent is {}, expected {}",
                    pair[0],
                    parent.kind.name(),
                    pair[1]
                ));
                break;
            }
            cur = parent;
        }
    }
    gates
}

/// The wall-clock-free subset of the exposition: counters and gauges
/// from the migration path, safe to compare byte-for-byte across two
/// same-seed runs. (Timing histograms like `esdb_migration_cutover_ns`
/// are real elapsed time and legitimately vary.)
fn deterministic_series(prometheus: &str) -> String {
    prometheus
        .lines()
        .filter(|l| {
            [
                "esdb_migration_segments_moved_total",
                "esdb_migration_bytes_shipped_total",
                "esdb_migration_rows_moved_total",
                "esdb_migration_tail_ops_total",
                "esdb_migration_completed_total",
                "esdb_migration_aborted_total",
                "esdb_migrations_active",
                "esdb_rules_active",
            ]
            .iter()
            .any(|s| l.contains(s))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Every shard holding a live copy of `record` — the physical-placement
/// oracle used for the collapse and no-duplicates gates.
fn holders(db: &Esdb, shards: u32, record: u64) -> Vec<u32> {
    (0..shards)
        .filter(|s| db.pin_snapshot(ShardId(*s)).get_record(record).is_some())
        .collect()
}

fn bench_doc(tenant: u64, record: u64, at: u64) -> Document {
    Document::builder(TenantId(tenant), RecordId(record), at)
        .field("status", (record % 4) as i64)
        .field("group", (record % 5) as i64)
        .field("auction_title", format!("live rebalance {record}"))
        .build()
}

fn run_scenario(scale: &Scale, run: u32) -> ScenarioResult {
    let dir = std::env::temp_dir().join(format!(
        "esdb-bench-live-rebalance-{}-{}-{}",
        scale.mode,
        run,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (clock, driver) = SharedClock::manual(1_000_000);
    let mut cfg = EsdbConfig::new(&dir)
        .shards(scale.shards)
        .commit_wait_ms(scale.commit_wait_ms);
    // The bench drives the balancer and the migration lifecycle
    // explicitly (rebalance + step_every), so the write-count trigger
    // is off — phase boundaries land at deterministic write indices.
    cfg.balance_every_writes = 0;
    let mut db = Esdb::open_with_clock(CollectionSchema::transaction_logs(), cfg, clock)
        .expect("open bench engine");

    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut now = 1_000_000u64;
    let mut acked = 0u64;
    let mut counts = vec![0u64; scale.tenants + 1];
    // Every 4th write arrives out of order: its event timestamp lags the
    // clock far enough to land *before* the rule's activation timestamp
    // while the handoff is in flight — those are the writes the bounded
    // translog tail must carry across the cutover. The clock advances by
    // 2 per write and the lag is odd, so every created_time stays unique
    // (ORDER BY has no cross-shard tie-break freedom).
    let lag = 8 * scale.step_every + 1;
    let mut write = |db: &mut Esdb, now: &mut u64, counts: &mut Vec<u64>, record: u64| {
        driver.advance(2);
        *now += 2;
        let at = if record % 4 == 3 { *now - lag } else { *now };
        let tenant = zipf.sample(&mut rng) as u64;
        db.insert(bench_doc(tenant, record, at)).expect("insert");
        counts[tenant as usize] += 1;
    };

    // Phase 1: preload under skew.
    for r in 0..scale.preload_rows {
        write(&mut db, &mut now, &mut counts, r);
        acked += 1;
    }

    // Phase 2: the balancer commits the grow-rule under commit-wait.
    // The hot tenant is the one whose rule grew the widest span (the
    // Zipf head); the migration is forced, not incidental.
    let mut gates = Vec::new();
    db.rebalance();
    let Some(rule) = db.rules_snapshot().into_iter().max_by_key(|r| r.offset) else {
        gates.push("skew did not commit a grow-rule".into());
        return ScenarioResult {
            json: String::new(),
            prometheus: String::new(),
            gates,
        };
    };
    let hot = rule.tenants[0];
    if rule.offset <= 1 {
        gates.push(format!(
            "rule did not grow the span: offset {}",
            rule.offset
        ));
    }
    // Pre-migration snapshot: the rule is committed but still inside
    // its commit-wait, so nothing has physically moved yet.
    db.refresh();
    let sql = format!(
        "SELECT * FROM transaction_logs WHERE tenant_id = {} ORDER BY created_time ASC",
        hot.0
    );
    let before = db.query(&sql).expect("pre-migration query").docs;
    if before.len() as u64 != counts[hot.0 as usize] {
        gates.push(format!(
            "pre-migration visibility: {} hot rows acked, {} visible",
            counts[hot.0 as usize],
            before.len()
        ));
    }
    driver.advance(scale.commit_wait_ms + 1);
    now += scale.commit_wait_ms + 1;

    // Phase 3: writes keep flowing while the migration walks handoff →
    // drain → cutover, one phase per `step_every` writes.
    for r in 0..scale.live_rows {
        write(&mut db, &mut now, &mut counts, scale.preload_rows + r);
        acked += 1;
        if r % scale.step_every == scale.step_every - 1 {
            db.step_migrations();
        }
    }
    db.drive_migrations();
    let acked_hot = counts[hot.0 as usize];
    let status = db
        .migrations_snapshot()
        .into_iter()
        .find(|s| s.tenant == hot)
        .expect("hot-tenant migration registered");
    if status.phase != MigrationPhase::Done {
        gates.push(format!(
            "migration did not complete: stuck in {:?}",
            status.phase
        ));
    }

    // Phase 4: conservation, row identity, physical collapse.
    db.refresh();
    let after = db.query(&sql).expect("post-migration query").docs;
    if after.len() as u64 != acked_hot {
        gates.push(format!(
            "LOST ACKED WRITES: {} hot rows acked, {} visible after cutover",
            acked_hot,
            after.len()
        ));
    }
    // Row identity across the cutover: live writes (record ids past the
    // preload range, some with lagged timestamps) interleave into the
    // order, so compare the preload-era subsequence byte-for-byte.
    let preload_after: Vec<&Document> = after
        .iter()
        .filter(|d| d.record_id.raw() < scale.preload_rows)
        .collect();
    if preload_after.len() != before.len()
        || preload_after
            .iter()
            .zip(before.iter())
            .any(|(a, b)| **a != *b)
    {
        gates.push("row identity broken across the cutover".into());
    }
    if status.tail_ops == 0 {
        gates.push("translog tail never exercised: no out-of-order write was captured".into());
    }
    for d in &after {
        let h = holders(&db, scale.shards, d.record_id.raw());
        let dest = place(hot, d.record_id, rule.offset, scale.shards).0;
        if h != vec![dest] {
            gates.push(format!(
                "old span not collapsed: record {} held by {:?}, expected [{}]",
                d.record_id.raw(),
                h,
                dest
            ));
            break;
        }
    }

    // Phase 5: observability gates.
    let snap = db.telemetry_snapshot();
    let prometheus = snap.to_prometheus();
    let lint = lint_prometheus(&prometheus);
    if !lint.is_empty() {
        gates.push(format!("prometheus lint: {lint:?}"));
    }
    for series in [
        "esdb_migration_completed_total",
        "esdb_migration_rows_moved_total",
        "esdb_migration_segments_moved_total",
        "esdb_migration_bytes_shipped_total",
        "esdb_migration_tail_ops_total",
        "esdb_migration_cutover_ns",
        "esdb_migrations_active",
    ] {
        if !prometheus.contains(series) {
            gates.push(format!("prometheus output missing {series}"));
        }
    }
    let bundle = db.debug_bundle();
    gates.extend(causal_chain_gates(&bundle.journal));
    let orphans = unresolved_parents(&bundle.journal, bundle.journal_evicted_max);
    if !orphans.is_empty() {
        gates.push(format!("journal has unresolved parent links: {orphans:?}"));
    }

    // The JSON stays wall-clock-free (manual clock, no durations), so
    // the determinism gate can compare two runs byte-for-byte.
    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(scale.mode == "fast");
    let json = format!(
        "{{\n  \"bench\": \"live_rebalance\",\n  \"mode\": \"{}\",\n  \"seed\": {SEED},\n  \
         \"host_cores\": {host_cores},\n  \"degraded_single_core\": {degraded},\n  \
         \"theta\": {THETA},\n  \"shards\": {},\n  \"tenants\": {},\n  \
         \"hot_tenant\": {},\n  \"generated\": {acked},\n  \"acked_hot\": {acked_hot},\n  \
         \"hot_rows_before\": {},\n  \"hot_rows_after\": {},\n  \
         \"old_span\": {},\n  \"new_span\": {},\n  \"rule_effective_time\": {},\n  \
         \"segments_shipped\": {},\n  \"bytes_shipped\": {},\n  \"rows_moved\": {},\n  \
         \"tail_ops\": {},\n  \"migration_phase\": \"{}\"\n}}\n",
        scale.mode,
        scale.shards,
        scale.tenants,
        hot.0,
        before.len(),
        after.len(),
        status.old_span,
        status.new_span,
        status.effective_time,
        status.segments_shipped,
        status.bytes_shipped,
        status.rows_moved,
        status.tail_ops,
        status.phase.as_str(),
    );
    let _ = std::fs::remove_dir_all(&dir);
    ScenarioResult {
        json,
        prometheus,
        gates,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("LIVE_REBALANCE_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };

    let first = run_scenario(&scale, 0);
    let second = run_scenario(&scale, 1);

    let mut gates = first.gates;
    if first.json != second.json {
        gates.push("DETERMINISM VIOLATION: same seed produced different reports".into());
    }
    if deterministic_series(&first.prometheus) != deterministic_series(&second.prometheus) {
        gates.push("DETERMINISM VIOLATION: telemetry diverged across reruns".into());
    }

    print!("{}", first.json);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_live_rebalance.json"
    );
    match std::fs::write(path, &first.json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !gates.is_empty() {
        for g in &gates {
            eprintln!("live_rebalance: FAILED gate: {g}");
        }
        std::process::exit(1);
    }
    println!("live_rebalance/{}: all gates passed", scale.mode);
}
