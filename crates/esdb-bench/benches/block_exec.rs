//! Block-at-a-time execution benchmark: the vectorized read path against
//! the scalar executor on the Fig. 17/18-shaped workload.
//!
//! Hot tenants under Zipf(0.99) issue filter + top-k queries (Fig. 17
//! shapes) and aggregate-only queries (Fig. 18 shapes). Both executors run
//! single-threaded with every query cache disabled, so the comparison is
//! purely the execution strategy — block skip-pruning, typed columnar
//! residual filters, decorate-once ORDER BY, and aggregation pushdown
//! against late row materialization and per-comparison doc-value sorting.
//! The benchmark:
//!
//! 1. loads Zipf-skewed tenant data into one cache-disabled instance,
//! 2. verifies the block path is row-identical to the scalar oracle on
//!    every filter query and aggregate-identical (float-epsilon) on every
//!    aggregate query — the hard identity gate,
//! 3. verifies aggregate pushdown never touches a stored payload,
//! 4. times filter and aggregate passes on both executors and gates block
//!    throughput at >= 2x the scalar median (full mode), and
//! 5. writes `BENCH_block_exec.json` at the repository root.
//!
//! Pass `--fast` (or set `BLOCK_EXEC_BENCH_FAST=1`) for the CI smoke
//! configuration: identity and payload gates stay hard, the speedup gate
//! turns report-only.

use criterion::black_box;
use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, FieldValue};
use esdb_index::BlockStats;
use esdb_query::QueryOptions;
use esdb_workload::{DocGenerator, WriteEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

/// Zipf skew of tenant choice for data and queries (the paper's regime).
const THETA: f64 = 0.99;

/// Minimum block-vs-scalar median speedup the full mode enforces, for
/// both the filter-shaped and the aggregate-only workload.
const SPEEDUP_GATE: f64 = 2.0;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    rows: u64,
    queries_per_pass: usize,
    samples: usize,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 4,
    tenants: 20,
    rows: 60_000,
    queries_per_pass: 60,
    samples: 5,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 2,
    tenants: 10,
    rows: 3_000,
    queries_per_pass: 20,
    samples: 3,
};

/// Fig. 17-shaped filter + top-k templates for a hot tenant: selective
/// conjunctions whose match sets are large enough that the sort strategy
/// (decorate-once vs per-comparison doc-value fetch) dominates.
fn filter_templates(tenant: u64) -> [String; 3] {
    [
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND status = 1 ORDER BY created_time DESC LIMIT 10"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND amount BETWEEN 1000.0 AND 6000.0 \
             ORDER BY amount ASC LIMIT 10"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND status = 0 OR tenant_id = {tenant} AND status = 2 \
             ORDER BY created_time ASC LIMIT 10"
        ),
    ]
}

/// Fig. 18-shaped aggregate-only templates: every plan is
/// pushdown-eligible on the transaction_logs schema, so the block path
/// computes from columnar doc values and never materializes a payload.
fn agg_templates(tenant: u64) -> [String; 3] {
    [
        format!(
            "SELECT COUNT(*), SUM(amount), AVG(amount) FROM transaction_logs \
             WHERE tenant_id = {tenant} AND status = 1"
        ),
        format!(
            "SELECT MIN(amount), MAX(created_time) FROM transaction_logs \
             WHERE tenant_id = {tenant}"
        ),
        format!(
            "SELECT COUNT(*), SUM(amount) FROM transaction_logs \
             WHERE tenant_id = {tenant} GROUP BY province"
        ),
    ]
}

fn build(scale: &Scale) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-blockexec-{}-{}",
        scale.mode,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(scale.shards)
            .parallelism(1)
            .query_caches(false),
    )
    .expect("open bench instance");
    let mut docs = DocGenerator::new(1_500, 20, 7);
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(7);
    for r in 0..scale.rows {
        let tenant = 1 + zipf.sample(&mut rng) as u64;
        db.insert(docs.materialize(&WriteEvent {
            tenant: TenantId(tenant),
            record: RecordId(r),
            created_at: 1_000_000 + r * 350,
            bytes: 512,
        }))
        .expect("insert row");
    }
    db.refresh();
    db.merge();
    db.refresh();
    db
}

/// One Zipf-skewed query sequence per workload, identical for every pass
/// and both executors.
fn sequence(scale: &Scale, templates: fn(u64) -> [String; 3], seed: u64) -> Vec<String> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..scale.queries_per_pass)
        .map(|_| {
            let tenant = 1 + zipf.sample(&mut rng) as u64;
            let t = templates(tenant);
            t[rng.random_range(0..t.len())].clone()
        })
        .collect()
}

fn scalar_opts() -> QueryOptions {
    QueryOptions {
        block_execution: false,
        ..QueryOptions::default()
    }
}

/// Float values compare within a tiny relative epsilon (per-shard partial
/// sums may re-associate float addition); everything else exact.
fn values_close(a: &FieldValue, b: &FieldValue) -> bool {
    match (a, b) {
        (FieldValue::Float(x), FieldValue::Float(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => a == b,
    }
}

fn time_filter_pass(db: &Esdb, seq: &[String], opts: QueryOptions) -> u128 {
    let t0 = Instant::now();
    for sql in seq {
        black_box(db.query_opts(sql, opts).expect("filter query"));
    }
    t0.elapsed().as_nanos()
}

fn time_agg_pass(db: &Esdb, seq: &[String], opts: QueryOptions) -> u128 {
    let t0 = Instant::now();
    for sql in seq {
        black_box(db.aggregate_opts(sql, opts).expect("agg query"));
    }
    t0.elapsed().as_nanos()
}

fn median(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("BLOCK_EXEC_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };
    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(fast);

    let db = build(&scale);
    let filter_seq = sequence(&scale, filter_templates, 42);
    let agg_seq = sequence(&scale, agg_templates, 43);

    // Hard identity gate: block rows byte-identical to the scalar oracle
    // on every filter query of the sequence.
    let mut rows_identical = true;
    let mut block_stats = BlockStats::default();
    for sql in &filter_seq {
        let block = db.query(sql).expect("block filter query");
        let scalar = db
            .query_opts(sql, scalar_opts())
            .expect("scalar filter query");
        if block.docs != scalar.docs {
            eprintln!("IDENTITY VIOLATION: block rows diverged from scalar on {sql}");
            rows_identical = false;
        }
        block_stats.merge(&block.blocks);
    }

    // Hard aggregate gates: identical rows (float epsilon) and zero
    // stored-payload reads under pushdown.
    let mut aggs_identical = true;
    let mut payload_reads = 0u64;
    for sql in &agg_seq {
        let pushed = db.aggregate(sql).expect("block aggregate query");
        let oracle = db
            .aggregate_opts(sql, scalar_opts())
            .expect("scalar aggregate");
        let same = pushed.rows.len() == oracle.rows.len()
            && pushed.rows.iter().zip(&oracle.rows).all(|(p, o)| {
                p.group == o.group
                    && p.values.len() == o.values.len()
                    && p.values
                        .iter()
                        .zip(&o.values)
                        .all(|(a, b)| values_close(a, b))
            });
        if !same {
            eprintln!("IDENTITY VIOLATION: aggregate diverged from scalar oracle on {sql}");
            aggs_identical = false;
        }
        payload_reads += pushed.payload_reads;
    }

    // Timed passes: both executors, same sequences, interleaved samples.
    let mut filter_block: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut filter_scalar: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut agg_block: Vec<u128> = Vec::with_capacity(scale.samples);
    let mut agg_scalar: Vec<u128> = Vec::with_capacity(scale.samples);
    for _ in 0..scale.samples {
        filter_block.push(time_filter_pass(&db, &filter_seq, QueryOptions::default()));
        filter_scalar.push(time_filter_pass(&db, &filter_seq, scalar_opts()));
        agg_block.push(time_agg_pass(&db, &agg_seq, QueryOptions::default()));
        agg_scalar.push(time_agg_pass(&db, &agg_seq, scalar_opts()));
    }
    let fb = median(&mut filter_block);
    let fs = median(&mut filter_scalar);
    let ab = median(&mut agg_block);
    let as_ = median(&mut agg_scalar);
    let filter_speedup = fs as f64 / fb as f64;
    let agg_speedup = as_ as f64 / ab as f64;

    let stats = db.stats();
    println!(
        "block_exec/{}: filter block median {:.3} ms, scalar median {:.3} ms ({:.2}x)",
        scale.mode,
        fb as f64 / 1e6,
        fs as f64 / 1e6,
        filter_speedup,
    );
    println!(
        "block_exec/{}: aggregate block median {:.3} ms, scalar median {:.3} ms ({:.2}x)",
        scale.mode,
        ab as f64 / 1e6,
        as_ as f64 / 1e6,
        agg_speedup,
    );
    println!(
        "block_exec/{}: blocks scanned {} skipped {} pruned {}, \
         block queries {} scalar queries {}, pushdown payload reads {payload_reads}",
        scale.mode,
        block_stats.scanned,
        block_stats.skipped,
        block_stats.pruned,
        stats.block_queries,
        stats.scalar_queries,
    );

    // The comparison is single-threaded by construction, so the speedup
    // gate holds on any host — it is only relaxed in fast (smoke) mode.
    let gate_enforced = !fast;
    let json = format!(
        "{{\n  \"bench\": \"block_exec\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"rows\": {},\n  \
         \"queries_per_pass\": {},\n  \"samples\": {},\n  \
         \"host_cores\": {host_cores},\n  \"degraded_single_core\": {degraded},\n  \
         \"filter_block_median_ns\": {fb},\n  \"filter_scalar_median_ns\": {fs},\n  \
         \"filter_speedup\": {filter_speedup:.4},\n  \
         \"agg_block_median_ns\": {ab},\n  \"agg_scalar_median_ns\": {as_},\n  \
         \"agg_speedup\": {agg_speedup:.4},\n  \
         \"speedup_gate\": {SPEEDUP_GATE},\n  \"speedup_gate_enforced\": {gate_enforced},\n  \
         \"block_rows_identical_to_scalar\": {rows_identical},\n  \
         \"aggregates_identical_to_scalar\": {aggs_identical},\n  \
         \"aggregate_payload_reads\": {payload_reads},\n  \
         \"blocks\": {{\"scanned\": {}, \"skipped\": {}, \"pruned\": {}}}\n}}\n",
        scale.mode,
        scale.shards,
        scale.tenants,
        scale.rows,
        scale.queries_per_pass,
        scale.samples,
        block_stats.scanned,
        block_stats.skipped,
        block_stats.pruned,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_block_exec.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !rows_identical || !aggs_identical {
        eprintln!("block_exec: FAILED identity gate");
        std::process::exit(1);
    }
    if payload_reads != 0 {
        eprintln!("block_exec: FAILED payload gate: pushdown read {payload_reads} payloads");
        std::process::exit(1);
    }
    if gate_enforced && (filter_speedup < SPEEDUP_GATE || agg_speedup < SPEEDUP_GATE) {
        eprintln!(
            "block_exec: FAILED speedup gate: filter {filter_speedup:.2}x, \
             aggregate {agg_speedup:.2}x (need {SPEEDUP_GATE}x)"
        );
        std::process::exit(1);
    }
    println!("block_exec/{}: all gates passed", scale.mode);
}
