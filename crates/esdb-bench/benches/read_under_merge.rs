//! Snapshot-reader benchmark: Zipf-skewed queries racing forced merges.
//!
//! The lock-free read path's promise is that maintenance and queries
//! never wait on each other: a query pins the published snapshot once
//! and runs to completion against sealed segments, while refresh and
//! force-merge publish new snapshots without blocking. This bench
//! measures that promise directly:
//!
//! 1. loads Zipf(0.99)-skewed tenant data and draws one fixed query
//!    sequence (seeded — identical across runs and passes),
//! 2. times every query on an **uncontended** pass (no writer),
//! 3. times the same sequence **contended** — a writer thread loops
//!    insert-batch / refresh / force-merge the whole time, churning the
//!    segment set under the readers,
//! 4. verifies the determinism gate: churn touches only a noise tenant
//!    the queries never select, so every pass — quiescent or racing
//!    merges — must return byte-identical row keys, and
//! 5. writes `BENCH_snapshot_reads.json` at the repository root with
//!    contended vs. uncontended p50/p99.
//!
//! Exits non-zero if results ever diverge, or if the contended p99
//! exceeds 1.25x the uncontended p99. The timing gate needs the reader
//! and the writer to actually run simultaneously, so it is enforced
//! only in full mode on hosts with >= 2 available cores: on one core
//! the tail measures the OS scheduler's timeslice (the reader loses the
//! CPU to the merge for whole quanta), not the locking the gate is
//! about — and CI timing noise at smoke scale swamps the margin either
//! way. The ratio is always reported and recorded. Before this read
//! path existed, each forced merge held the shard's engine lock for its
//! full duration and contended readers stalled behind it outright.
//! Pass `--fast` (or set `READ_UNDER_MERGE_BENCH_FAST=1`) for the CI
//! smoke configuration.

use criterion::black_box;
use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig, EsdbReader};
use esdb_doc::CollectionSchema;
use esdb_workload::{DocGenerator, WriteEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Zipf skew of the tenant choice (the paper's hot-tenant regime).
const THETA: f64 = 0.99;

/// Churn lands here — far outside the queried tenant range, so merges
/// reshape every segment the queries read without changing any answer.
const NOISE_TENANT: u64 = 1_000_000;

/// Contended-p99 budget relative to uncontended (full mode only).
const P99_BUDGET: f64 = 1.25;

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    rows: u64,
    queries_per_pass: usize,
    repeats: usize,
    churn_batch: u64,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 4,
    tenants: 20,
    rows: 24_000,
    queries_per_pass: 160,
    repeats: 4,
    churn_batch: 600,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 2,
    tenants: 10,
    rows: 4_000,
    queries_per_pass: 50,
    repeats: 2,
    churn_batch: 250,
};

/// The template queries a hot tenant repeats (Fig. 17 filter + sort +
/// top-k shapes).
fn templates(tenant: u64) -> [String; 3] {
    [
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND status = 1 ORDER BY created_time DESC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND group IN (1, 2, 3) ORDER BY created_time ASC LIMIT 50"
        ),
        format!(
            "SELECT * FROM transaction_logs WHERE tenant_id = {tenant} \
             AND created_time BETWEEN 1000000 AND 100000000 \
             ORDER BY created_time DESC LIMIT 50"
        ),
    ]
}

/// Caches off: this bench isolates snapshot pin + execution latency;
/// cache hits would hide exactly the path under test.
fn build(scale: &Scale) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-rum-{}-{}",
        scale.mode,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir)
            .shards(scale.shards)
            .query_caches(false),
    )
    .expect("open bench instance");
    let mut docs = DocGenerator::new(1_500, 20, 7);
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(7);
    // Refresh in slices so the working set starts multi-segment — the
    // contended pass then races merges that actually have work to do.
    let slice = scale.rows / 6;
    for r in 0..scale.rows {
        let tenant = 1 + zipf.sample(&mut rng) as u64;
        db.insert(docs.materialize(&WriteEvent {
            tenant: TenantId(tenant),
            record: RecordId(r),
            created_at: 1_000_000 + r * 350,
            bytes: 512,
        }))
        .expect("insert row");
        if r % slice == slice - 1 {
            db.refresh();
        }
    }
    db.refresh();
    db
}

/// The Zipf-skewed query sequence: identical for every pass.
fn query_sequence(scale: &Scale) -> Vec<String> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    let mut rng = StdRng::seed_from_u64(42);
    (0..scale.queries_per_pass)
        .map(|_| {
            let tenant = 1 + zipf.sample(&mut rng) as u64;
            let t = templates(tenant);
            t[rng.random_range(0..t.len())].clone()
        })
        .collect()
}

/// Runs `repeats` passes over the sequence on the lock-free reader,
/// recording one latency per query execution and the row-key
/// fingerprint of every pass (all passes must agree).
fn measure(reader: &EsdbReader, seq: &[String], repeats: usize) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut latencies = Vec::with_capacity(seq.len() * repeats);
    let mut fingerprints = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let mut fp = Vec::new();
        for sql in seq {
            let t0 = Instant::now();
            let rows = black_box(reader.query(sql).expect("query"));
            latencies.push(t0.elapsed().as_nanos() as u64);
            fp.push(rows.docs.len() as u64);
            fp.extend(rows.docs.iter().map(|d| d.record_id.raw()));
        }
        fingerprints.push(fp);
    }
    (latencies, fingerprints)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn p50_p99(latencies: &mut [u64]) -> (u64, u64) {
    latencies.sort_unstable();
    (percentile(latencies, 0.50), percentile(latencies, 0.99))
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("READ_UNDER_MERGE_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };
    let seq = query_sequence(&scale);

    let cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(fast);

    let mut db = build(&scale);
    // Sequential per-query execution: one latency sample per query with
    // no scatter-gather thread-spawn jitter in it. The writer keeps the
    // default degree — merges are the contention source under test.
    db.set_parallelism(1);
    let reader = db.reader();
    db.set_parallelism(0);

    // Uncontended: nothing else touches the shards.
    let (mut lat_u, fp_u) = measure(&reader, &seq, scale.repeats);
    let mut determinism_ok = fp_u.iter().all(|fp| fp == &fp_u[0]);
    if !determinism_ok {
        eprintln!("DETERMINISM VIOLATION: uncontended passes disagree with each other");
    }

    // Contended: a writer thread churns insert/refresh/force-merge for
    // the whole measurement window. Only the noise tenant changes, so
    // answers must stay byte-identical to the quiescent pass.
    let done = AtomicBool::new(false);
    let merges = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);
    let (mut lat_c, fp_c) = std::thread::scope(|s| {
        let writer_db = &mut db;
        let (done, merges, refreshes, scale_ref) = (&done, &merges, &refreshes, &scale);
        s.spawn(move || {
            let mut docs = DocGenerator::new(2_500, 20, 11);
            let mut next = scale_ref.rows;
            // At least one full churn cycle even if the readers finish
            // first, so "contended" is never an empty claim.
            loop {
                for _ in 0..scale_ref.churn_batch {
                    writer_db
                        .insert(docs.materialize(&WriteEvent {
                            tenant: TenantId(NOISE_TENANT),
                            record: RecordId(next),
                            created_at: 1_000_000 + next * 350,
                            bytes: 512,
                        }))
                        .expect("churn insert");
                    next += 1;
                }
                writer_db.refresh();
                refreshes.fetch_add(1, Ordering::Relaxed);
                merges.fetch_add(writer_db.force_merge() as u64, Ordering::Relaxed);
                if done.load(Ordering::Acquire) {
                    break;
                }
            }
        });
        let out = measure(&reader, &seq, scale.repeats);
        done.store(true, Ordering::Release);
        out
    });
    let merges = merges.load(Ordering::Relaxed);
    let refreshes = refreshes.load(Ordering::Relaxed);

    for (i, fp) in fp_c.iter().enumerate() {
        if fp != &fp_u[0] {
            eprintln!(
                "DETERMINISM VIOLATION: contended pass {i} diverged from the quiescent answers"
            );
            determinism_ok = false;
        }
    }
    // And the facade agrees once the dust settles.
    for sql in &seq {
        let _ = db.query(sql).expect("post-churn query");
    }

    let (p50_u, p99_u) = p50_p99(&mut lat_u);
    let (p50_c, p99_c) = p50_p99(&mut lat_c);
    let p99_ratio = p99_c as f64 / p99_u as f64;

    println!(
        "read_under_merge/{}: uncontended p50 {:.1} us, p99 {:.1} us",
        scale.mode,
        p50_u as f64 / 1e3,
        p99_u as f64 / 1e3,
    );
    println!(
        "read_under_merge/{}: contended   p50 {:.1} us, p99 {:.1} us \
         ({refreshes} refreshes, {merges} forced merges during window)",
        scale.mode,
        p50_c as f64 / 1e3,
        p99_c as f64 / 1e3,
    );
    let gate_enforced = !fast && cores >= 2;
    println!(
        "read_under_merge/{}: contended/uncontended p99 ratio {p99_ratio:.3} \
         (budget {P99_BUDGET}, gate {}, {cores} cores)",
        scale.mode,
        if gate_enforced {
            "enforced"
        } else {
            "report-only"
        },
    );

    let json = format!(
        "{{\n  \"bench\": \"read_under_merge\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"rows\": {},\n  \
         \"queries_per_pass\": {},\n  \"repeats\": {},\n  \
         \"uncontended_p50_ns\": {p50_u},\n  \"uncontended_p99_ns\": {p99_u},\n  \
         \"contended_p50_ns\": {p50_c},\n  \"contended_p99_ns\": {p99_c},\n  \
         \"contended_p99_ratio\": {p99_ratio:.4},\n  \"p99_budget\": {P99_BUDGET},\n  \
         \"available_parallelism\": {cores},\n  \"host_cores\": {cores},\n  \
         \"degraded_single_core\": {degraded},\n  \"p99_gate_enforced\": {gate_enforced},\n  \
         \"refreshes_during_contended\": {refreshes},\n  \
         \"forced_merges_during_contended\": {merges},\n  \
         \"contended_results_identical_to_quiescent\": {determinism_ok}\n}}\n",
        scale.mode, scale.shards, scale.tenants, scale.rows, scale.queries_per_pass, scale.repeats,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_snapshot_reads.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !determinism_ok {
        eprintln!("read_under_merge: FAILED determinism gate");
        std::process::exit(1);
    }
    if gate_enforced && p99_ratio > P99_BUDGET {
        eprintln!(
            "read_under_merge: FAILED contended p99 {p99_ratio:.3}x > {P99_BUDGET}x uncontended"
        );
        std::process::exit(1);
    }
}
