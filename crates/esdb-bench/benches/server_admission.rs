//! Network front-end benchmark: hot-tenant load shedding under a
//! Zipf(0.99) tenant mix, over real TCP.
//!
//! The paper's motivating scenario (§1): one extremely hot tenant
//! dominates traffic, and the platform must keep every *other*
//! tenant's latency sane. This bench drives the `esdb-server`
//! front-end with concurrent clients whose tenant choice is
//! Zipf(0.99)-skewed, with a tight rate limit on the hot tenant, and
//! A/Bs admission shedding:
//!
//! * **pass off** — shedding disabled (rate limit only),
//! * **pass on** — shedding enabled (overload + hot-proportion 503s),
//! * **pass on, rerun** — same seed again, for the determinism gate.
//!
//! Clients retry throttled writes with the server-suggested back-off
//! until acknowledged, so every pass applies the identical dataset.
//!
//! Gates:
//!
//! * **hard (all modes)** — row identity: every pass's visible rows
//!   match an embedded oracle applying the same schedule; determinism:
//!   same-seed reruns produce byte-identical row signatures; the hot
//!   tenant was actually throttled (429 > 0); per-tenant admission
//!   conservation `issued == admitted + throttled + shed`.
//! * **timing (full mode, multi-core hosts)** — victim-tenant p99
//!   request latency with shedding on must be strictly better than
//!   with shedding off. Report-only under `--fast` or on degraded
//!   single-core hosts, per the bench-honesty policy.
//!
//! Pass `--fast` (or set `SERVER_ADMISSION_BENCH_FAST=1`) for the CI
//! smoke configuration. Writes `BENCH_server.json` at the repo root.

use esdb_common::zipf::ZipfSampler;
use esdb_common::{RecordId, TenantId};
use esdb_core::{Esdb, EsdbConfig};
use esdb_doc::{CollectionSchema, Document, FieldValue};
use esdb_server::{
    start, AdmissionConfig, EsdbClient, RateLimit, ServerConfig, TcpTransport, TokenTable,
    Transport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Zipf skew of tenant choice (the paper's regime).
const THETA: f64 = 0.99;

/// Concurrent client connections.
const CLIENT_THREADS: u64 = 4;

/// The Zipf-rank-1 tenant.
const HOT_TENANT: u64 = 1;

/// The hot tenant's rate limit: low enough that the client mix is
/// guaranteed to hit it.
const HOT_RATE: RateLimit = RateLimit {
    capacity: 20,
    per_sec: 500,
};

struct Scale {
    mode: &'static str,
    shards: u32,
    tenants: usize,
    ops_per_thread: u64,
}

const FULL: Scale = Scale {
    mode: "full",
    shards: 8,
    tenants: 20,
    ops_per_thread: 1_200,
};

const FAST: Scale = Scale {
    mode: "fast",
    shards: 4,
    tenants: 10,
    ops_per_thread: 150,
};

/// One client thread's deterministic schedule (disjoint record ids,
/// shared Zipf-hot tenant choice).
fn schedules(scale: &Scale) -> Vec<Vec<Document>> {
    let zipf = ZipfSampler::new(scale.tenants, THETA);
    (0..CLIENT_THREADS)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(0x5EDB + t);
            (0..scale.ops_per_thread)
                .map(|i| {
                    // sample() is 1-based: rank 1 == HOT_TENANT.
                    let tenant = zipf.sample(&mut rng) as u64;
                    let rid = t * 10_000_000 + i;
                    Document::builder(TenantId(tenant), RecordId(rid), 1_000_000 + i * 250)
                        .field("status", (rid % 7) as i64)
                        .field("amount", FieldValue::Float((rid % 100) as f64 + 0.5))
                        .field("province", format!("prov-{}", rid % 5))
                        .build()
                })
                .collect()
        })
        .collect()
}

fn open(scale: &Scale, tag: &str) -> Esdb {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "esdb-bench-srvadm-{}-{tag}-{}",
        scale.mode,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Esdb::open(
        CollectionSchema::transaction_logs(),
        EsdbConfig::new(&dir).shards(scale.shards),
    )
    .expect("open bench instance")
}

fn admission(shedding: bool) -> AdmissionConfig {
    AdmissionConfig {
        tenant_rates: vec![(TenantId(HOT_TENANT), HOT_RATE)],
        shedding,
        // Overload arms as soon as half the client fleet is in flight,
        // so the shed path actually exercises on a 4-connection bench.
        overload_inflight: 2,
        shed_proportion: 0.2,
        ..AdmissionConfig::default()
    }
}

fn tokens(scale: &Scale) -> TokenTable {
    let mut t = TokenTable::new().admin("root", TenantId(0));
    for k in 1..=scale.tenants as u64 {
        t = t.tenant(format!("tok-{k}"), TenantId(k));
    }
    t
}

/// FNV-1a over the visible row set: the byte-comparable image used by
/// the identity and determinism gates.
fn row_signature(db: &Esdb, scale: &Scale) -> (u64, u64) {
    // Rows are sorted before hashing: concurrent passes interleave
    // equal `created_time` keys differently, and insertion tie-order
    // is not part of the result contract.
    let mut rows: Vec<[u64; 4]> = Vec::new();
    for t in 1..=scale.tenants as u64 {
        let sql = format!("SELECT * FROM transaction_logs WHERE tenant_id = {t}");
        for d in db.query(&sql).expect("signature query").docs.iter() {
            let status = match d.get("status") {
                Some(FieldValue::Int(s)) => s,
                other => panic!("status missing: {other:?}"),
            };
            rows.push([
                d.tenant_id.0,
                d.record_id.raw(),
                d.created_at,
                status as u64,
            ]);
        }
    }
    rows.sort_unstable();
    let mut hash = 0xcbf29ce484222325u64;
    for row in &rows {
        for word in row {
            for b in word.to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        }
    }
    (hash, rows.len() as u64)
}

struct PassResult {
    wall_ns: u128,
    victim_p99_ns: u64,
    victim_samples: usize,
    hot_throttled: u64,
    hot_shed: u64,
    conserved: bool,
    signature: (u64, u64),
}

/// Runs one full pass: serve, fan out clients, retry-until-acked,
/// drain, and signature the surviving engine.
fn run_pass(scale: &Scale, shedding: bool, tag: &str) -> PassResult {
    let db = open(scale, tag);
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr();
    let handle = start(
        db,
        ServerConfig {
            tokens: tokens(scale),
            admission: admission(shedding),
        },
        Box::new(transport),
    );

    let scheds = schedules(scale);
    let t0 = Instant::now();
    let mut victim_ns: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = scheds
            .iter()
            .map(|sched| {
                let addr = addr.clone();
                scope.spawn(move || {
                    // One connection per tenant this thread writes for,
                    // opened lazily (tokens are per tenant).
                    let mut conns: std::collections::HashMap<u64, EsdbClient> =
                        std::collections::HashMap::new();
                    let mut victim_ns = Vec::new();
                    for doc in sched {
                        let tenant = doc.tenant_id.0;
                        let client = conns.entry(tenant).or_insert_with(|| {
                            EsdbClient::connect(&addr, &format!("tok-{tenant}")).expect("connect")
                        });
                        let started = Instant::now();
                        client
                            .insert_with_retry(doc.clone(), 1_000_000)
                            .expect("write eventually acknowledged");
                        if tenant != HOT_TENANT {
                            victim_ns.push(started.elapsed().as_nanos() as u64);
                        }
                    }
                    victim_ns
                })
            })
            .collect();
        for w in workers {
            victim_ns.extend(w.join().expect("client thread"));
        }
    });
    let wall_ns = t0.elapsed().as_nanos();

    let hot = handle.admission().tenant_counts(TenantId(HOT_TENANT));
    let mut conserved = hot.conserved();
    for k in 1..=scale.tenants as u64 {
        conserved &= handle.admission().tenant_counts(TenantId(k)).conserved();
    }
    let (mut db, _report) = handle.shutdown();
    db.refresh();
    let signature = row_signature(&db, scale);

    victim_ns.sort_unstable();
    let victim_p99_ns = if victim_ns.is_empty() {
        0
    } else {
        victim_ns[(victim_ns.len() - 1).min(victim_ns.len() * 99 / 100)]
    };
    PassResult {
        wall_ns,
        victim_p99_ns,
        victim_samples: victim_ns.len(),
        hot_throttled: hot.throttled(),
        hot_shed: hot.shed,
        conserved,
        signature,
    }
}

/// The embedded oracle: the same schedule applied directly, no server.
fn oracle_signature(scale: &Scale) -> (u64, u64) {
    let mut db = open(scale, "oracle");
    for sched in schedules(scale) {
        for doc in sched {
            db.insert(doc).expect("oracle insert");
        }
    }
    db.refresh();
    row_signature(&db, scale)
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "fast")
        || std::env::var("SERVER_ADMISSION_BENCH_FAST").is_ok_and(|v| v == "1");
    let scale = if fast { FAST } else { FULL };
    let host_cores = esdb_bench::host_cores();
    let degraded = esdb_bench::degraded_single_core(fast);

    let oracle = oracle_signature(&scale);
    let off = run_pass(&scale, false, "off");
    let on = run_pass(&scale, true, "on");
    let rerun = run_pass(&scale, true, "on-rerun");

    let identity_ok = off.signature == oracle && on.signature == oracle;
    let determinism_ok = on.signature == rerun.signature;
    let conservation_ok = off.conserved && on.conserved && rerun.conserved;
    let throttled_ok = off.hot_throttled > 0 && on.hot_throttled > 0;
    let p99_improved = on.victim_p99_ns < off.victim_p99_ns;

    println!(
        "server_admission/{}: victim p99 off {:.2}ms on {:.2}ms ({}), \
         hot throttled off {} on {}, hot shed on {}, rows {}",
        scale.mode,
        off.victim_p99_ns as f64 / 1e6,
        on.victim_p99_ns as f64 / 1e6,
        if p99_improved {
            "improved"
        } else {
            "regressed"
        },
        off.hot_throttled,
        on.hot_throttled,
        on.hot_shed,
        oracle.1,
    );

    // Timing gates need real parallelism to mean anything: enforce on
    // full runs with enough cores for the client fleet, report-only
    // elsewhere (same policy as the other benches).
    let gate_enforced = !fast && host_cores >= CLIENT_THREADS as usize;
    let json = format!(
        "{{\n  \"bench\": \"server_admission\",\n  \"mode\": \"{}\",\n  \"theta\": {THETA},\n  \
         \"shards\": {},\n  \"tenants\": {},\n  \"client_threads\": {CLIENT_THREADS},\n  \
         \"ops_per_thread\": {},\n  \"hot_tenant\": {HOT_TENANT},\n  \
         \"hot_rate_per_sec\": {},\n  \"host_cores\": {host_cores},\n  \
         \"degraded_single_core\": {degraded},\n  \
         \"wall_ns_shed_off\": {},\n  \"wall_ns_shed_on\": {},\n  \
         \"victim_p99_ns_shed_off\": {},\n  \"victim_p99_ns_shed_on\": {},\n  \
         \"victim_samples\": {},\n  \
         \"hot_throttled_shed_off\": {},\n  \"hot_throttled_shed_on\": {},\n  \
         \"hot_shed_shed_on\": {},\n  \"rows\": {},\n  \
         \"p99_gate_enforced\": {gate_enforced},\n  \"p99_improved\": {p99_improved},\n  \
         \"identity_ok\": {identity_ok},\n  \"determinism_ok\": {determinism_ok},\n  \
         \"conservation_ok\": {conservation_ok},\n  \"throttled_ok\": {throttled_ok}\n}}\n",
        scale.mode,
        scale.shards,
        scale.tenants,
        scale.ops_per_thread,
        HOT_RATE.per_sec,
        off.wall_ns,
        on.wall_ns,
        off.victim_p99_ns,
        on.victim_p99_ns,
        on.victim_samples,
        off.hot_throttled,
        on.hot_throttled,
        on.hot_shed,
        oracle.1,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !identity_ok {
        eprintln!(
            "server_admission: FAILED identity gate: oracle {:?}, off {:?}, on {:?}",
            oracle, off.signature, on.signature
        );
        std::process::exit(1);
    }
    if !determinism_ok {
        eprintln!(
            "server_admission: FAILED determinism gate: {:?} != {:?}",
            on.signature, rerun.signature
        );
        std::process::exit(1);
    }
    if !conservation_ok || !throttled_ok {
        eprintln!(
            "server_admission: FAILED conservation/throttle gate \
             (conserved {conservation_ok}, throttled {throttled_ok})"
        );
        std::process::exit(1);
    }
    if gate_enforced && !p99_improved {
        eprintln!(
            "server_admission: FAILED victim-p99 gate: shedding on {} ns \
             >= shedding off {} ns",
            on.victim_p99_ns, off.victim_p99_ns
        );
        std::process::exit(1);
    }
    println!("server_admission/{}: all gates passed", scale.mode);
}
