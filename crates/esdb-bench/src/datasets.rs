//! Real-engine dataset builders for the query experiments (Fig. 17/18).
//!
//! The paper's query evaluation targets 40M rows over 100K tenants on 8
//! VMs; we scale to an embedded single-process dataset (default 200K rows,
//! 2K tenants) — shapes, not absolute numbers (see DESIGN.md §1).

use esdb_common::SharedClock;
use esdb_core::{Esdb, EsdbConfig, RoutingMode};
use esdb_doc::CollectionSchema;
use esdb_workload::{DocGenerator, RateSchedule, TraceGenerator};
use std::path::PathBuf;

/// Dataset knobs.
#[derive(Debug, Clone)]
pub struct DatasetParams {
    /// Total rows.
    pub n_rows: u64,
    /// Tenant population.
    pub n_tenants: usize,
    /// Zipf θ for tenant sampling.
    pub theta: f64,
    /// Sub-attribute names in the "attributes" column (paper: 1500).
    pub n_attrs: usize,
    /// Sub-attributes sampled per row (paper: 20).
    pub attrs_per_doc: usize,
    /// Frequency-based indexing budget (paper: 30; 0 disables).
    pub attr_top_k: usize,
    /// Shards in the embedded instance.
    pub n_shards: u32,
    /// Seed.
    pub seed: u64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            n_rows: 200_000,
            n_tenants: 2_000,
            theta: 1.0,
            n_attrs: 1_500,
            attrs_per_doc: 20,
            attr_top_k: 30,
            n_shards: 16,
            seed: 42,
        }
    }
}

/// Time window the dataset's rows span (and queries should target).
pub const DATASET_T0: u64 = 1_631_750_400_000; // 2021-09-16 00:00:00
/// One day in ms.
pub const DAY_MS: u64 = 86_400_000;

/// Builds an embedded instance populated per `params`, refreshed and ready
/// to query. Returns the db and the trace generator (for rank→tenant
/// lookups).
pub fn build_embedded(params: &DatasetParams, dir: PathBuf) -> (Esdb, TraceGenerator) {
    let _ = std::fs::remove_dir_all(&dir);
    let mut schema = CollectionSchema::transaction_logs();
    schema.attr_index_top_k = params.attr_top_k;
    let (clock, driver) = SharedClock::manual(DATASET_T0);
    let mut db = Esdb::open_with_clock(
        schema,
        EsdbConfig::new(dir)
            .shards(params.n_shards)
            .routing(RoutingMode::Dynamic),
        clock,
    )
    .expect("open dataset instance");

    let mut trace = TraceGenerator::new(
        params.n_tenants,
        params.theta,
        RateSchedule::constant(1_000.0),
        params.seed,
    );
    let mut docs = DocGenerator::new(params.n_attrs, params.attrs_per_doc, params.seed);

    // Rows spread uniformly over one day.
    let step = DAY_MS / params.n_rows.max(1);
    let mut produced = 0u64;
    while produced < params.n_rows {
        for mut ev in trace.tick(DATASET_T0 + produced * step, 1_000) {
            if produced >= params.n_rows {
                break;
            }
            ev.created_at = DATASET_T0 + produced * step;
            db.insert(docs.materialize(&ev)).expect("insert row");
            produced += 1;
        }
    }
    driver.advance(DAY_MS + 1_000);
    // Two refreshes with a rebalance between them: the first makes data
    // searchable, the rebalance lets frequency-based indexing + the
    // balancer settle, the merge compacts.
    db.refresh();
    db.rebalance();
    db.merge();
    db.refresh();
    (db, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_builds_and_queries() {
        let params = DatasetParams {
            n_rows: 2_000,
            n_tenants: 50,
            n_shards: 4,
            ..DatasetParams::default()
        };
        let dir = std::env::temp_dir().join(format!("esdb-ds-test-{}", std::process::id()));
        let (db, trace) = build_embedded(&params, dir);
        assert_eq!(db.stats().live_docs, 2_000);
        let top = trace.tenant_of_rank(1);
        let rows = db
            .query(&format!(
                "SELECT * FROM transaction_logs WHERE tenant_id = {} LIMIT 100",
                top.raw()
            ))
            .expect("query");
        assert!(!rows.docs.is_empty());
    }
}
