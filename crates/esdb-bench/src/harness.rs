//! Simulation runners shared by the figure reproductions.

use esdb_cluster::{ClusterConfig, PolicySpec, RunReport, SimCluster};
use esdb_workload::{RateSchedule, TraceGenerator};

/// Parameters of one write-simulation run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Routing policy.
    pub policy: PolicySpec,
    /// Zipf skew θ.
    pub theta: f64,
    /// Tenant population (paper: 100K).
    pub n_tenants: usize,
    /// Generating rate, writes/sec.
    pub rate: f64,
    /// Run length, seconds.
    pub duration_s: u64,
    /// Replica execution cost (1.0 logical, <1 physical).
    pub replica_cost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimParams {
    /// Paper defaults at θ=1.
    pub fn paper(policy: PolicySpec) -> Self {
        SimParams {
            policy,
            theta: 1.0,
            n_tenants: 100_000,
            rate: 160_000.0,
            duration_s: 90,
            replica_cost: 1.0,
            seed: 42,
        }
    }

    /// Scales run length and tenant population down for `--quick`.
    pub fn quick(mut self) -> Self {
        self.duration_s = (self.duration_s / 3).max(20);
        self
    }
}

/// Runs one write simulation and returns the report.
pub fn run_write_sim(p: &SimParams) -> RunReport {
    let mut cfg = ClusterConfig::paper(p.policy);
    cfg.replica_cost = p.replica_cost;
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut gen = TraceGenerator::new(p.n_tenants, p.theta, RateSchedule::constant(p.rate), p.seed);
    for _ in 0..(p.duration_s * 1_000 / tick) {
        let now = cluster.now();
        let events = gen.tick(now, tick);
        cluster.step(events);
    }
    cluster.finish()
}

/// The three policies every figure compares.
pub fn all_policies() -> [PolicySpec; 3] {
    [
        PolicySpec::Hashing,
        PolicySpec::DoubleHashing { s: 8 },
        PolicySpec::Dynamic,
    ]
}

/// Warm-up cutoff used when averaging steady-state metrics.
pub fn warmup_ms(p: &SimParams) -> u64 {
    (p.duration_s * 1_000) / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scales_down() {
        let p = SimParams::paper(PolicySpec::Hashing).quick();
        assert_eq!(p.duration_s, 30);
    }

    #[test]
    fn small_run_produces_report() {
        let mut p = SimParams::paper(PolicySpec::DoubleHashing { s: 8 });
        p.duration_s = 5;
        p.rate = 50_000.0;
        p.n_tenants = 1_000;
        let r = run_write_sim(&p);
        assert!(r.throughput_tps(1_000) > 40_000.0);
        assert_eq!(r.per_shard_writes.len(), 512);
    }
}
