//! Plain-text table output for figure reproduction.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells rendered by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with thousands-scale suffix (e.g. `140.2K`).
pub fn fmt_k(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}K", v / 1_000.0)
    } else {
        format!("{v:.1}")
    }
}

/// Section banner for figure output.
pub fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn k_formatting() {
        assert_eq!(fmt_k(950.0), "950.0");
        assert_eq!(fmt_k(140_200.0), "140.2K");
        assert_eq!(fmt_k(2_500_000.0), "2.50M");
    }
}
