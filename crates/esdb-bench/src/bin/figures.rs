//! Regenerates the paper's evaluation figures (§6).
//!
//! ```sh
//! cargo run -p esdb-bench --release --bin figures -- all
//! cargo run -p esdb-bench --release --bin figures -- fig10 fig16 --quick
//! ```
//!
//! Figure ids: fig1 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18
//! fig19 ablations. `--quick` shrinks runs for smoke-testing.

use esdb_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() {
        eprintln!(
            "usage: figures [--quick] <fig1|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|ablations|all> ..."
        );
        std::process::exit(2);
    }
    let all = wanted.contains(&"all");
    let want = |id: &str| all || wanted.contains(&id);

    let started = std::time::Instant::now();
    if want("fig1") {
        figures::fig01::run(quick);
    }
    if want("fig10") {
        figures::fig10::run(quick);
    }
    // Figures 11 and 12 share the θ sweep.
    if want("fig11") || want("fig12") {
        figures::fig11_12::run(quick);
    }
    if want("fig13") {
        figures::fig13::run(quick);
    }
    if want("fig14") {
        figures::fig14::run(quick);
    }
    if want("fig15") {
        figures::fig15::run(quick);
    }
    if want("fig16") {
        figures::fig16::run(quick);
    }
    // Figures 17 and 18 share the real-engine dataset.
    if want("fig17") || want("fig18") {
        figures::fig17_18::run(quick);
    }
    if want("fig19") {
        figures::fig19::run(quick);
    }
    if want("ablations") {
        figures::ablations::run(quick);
    }
    eprintln!(
        "\n[figures completed in {:.1}s]",
        started.elapsed().as_secs_f64()
    );
}
