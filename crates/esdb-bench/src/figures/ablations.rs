//! Ablations of the design choices DESIGN.md calls out (not figures in the
//! paper, but decisions §4–5 argue for):
//!
//! 1. power-of-two offsets vs unrestricted (`rule-list growth`, §4.2),
//! 2. the commit-wait interval `T` (§4.3),
//! 3. the hotspot threshold (`CheckHotSpot` sensitivity),
//! 4. pre-replication of merged segments (visibility delay, §5.2).

use crate::output::{banner, Table};
use esdb_cluster::{ClusterConfig, PolicySpec, SimCluster};
use esdb_common::{RecordId, TenantId};
use esdb_workload::{RateSchedule, TraceGenerator};

/// Runs all ablations. (The pow2-vs-unrestricted offset ablation lives in
/// the `rule_list` Criterion bench, where rule-list growth and match cost
/// are measured directly.)
pub fn run(quick: bool) {
    banner("Ablations — commit-wait T, hotspot threshold, pre-replication, one-hop routing");
    ablate_t(quick);
    ablate_threshold(quick);
    ablate_prereplication();
    ablate_one_hop(quick);
}

/// One-hop vs two-hop write routing (§3.1): routing-aware clients skip the
/// coordinator forward, removing one network hop from every write.
fn ablate_one_hop(quick: bool) {
    println!("\n(5) one-hop vs two-hop routing: avg write delay at 120K TPS");
    let mut table = Table::new(&["client", "avg delay (ms)"]);
    for one_hop in [true, false] {
        let mut cfg = ClusterConfig::paper(PolicySpec::DoubleHashing { s: 8 });
        cfg.client.one_hop = one_hop;
        cfg.client.hop_latency_ms = 25;
        let tick = cfg.tick_ms;
        let mut cluster = SimCluster::new(cfg);
        let mut gen = TraceGenerator::new(10_000, 1.0, RateSchedule::constant(120_000.0), 8);
        let duration = if quick { 20_000 } else { 40_000 };
        for _ in 0..(duration / tick) {
            let now = cluster.now();
            let events = gen.tick(now, tick);
            cluster.step(events);
        }
        let r = cluster.finish();
        table.row(vec![
            if one_hop {
                "one-hop (ESDB)".into()
            } else {
                "two-hop (stock ES)".to_string()
            },
            format!("{:.0}", r.avg_completed_delay_ms(duration / 2)),
        ]);
    }
    table.print();
}

/// Sweep the commit-wait interval T: larger T delays the effect of rules
/// (recovery slows); the protocol stays non-blocking as long as rounds
/// finish within T.
fn ablate_t(quick: bool) {
    println!("\n(2) commit-wait interval T: time for dynamic to recover from a hotspot wave");
    let mut table = Table::new(&["T (ms)", "backlog peak", "drained by (s)"]);
    for t_ms in [1_000u64, 5_000, 15_000, 30_000] {
        let mut cfg = ClusterConfig::paper(PolicySpec::Dynamic);
        cfg.consensus_t_ms = t_ms;
        cfg.monitor_period_ms = 10_000;
        let tick = cfg.tick_ms;
        let mut cluster = SimCluster::new(cfg);
        let mut base = TraceGenerator::new(10_000, 0.5, RateSchedule::constant(100_000.0), 3);
        let mut hot = TraceGenerator::new(3, 0.0, RateSchedule::constant(40_000.0), 4)
            .with_offsets(5_000_000, 5_000_000_000);
        let duration = if quick { 120_000 } else { 180_000 };
        let mut peak = 0usize;
        let mut drained_at = None;
        for _ in 0..(duration / tick) {
            let now = cluster.now();
            let mut events = base.tick(now, tick);
            if now >= 30_000 {
                events.extend(hot.tick(now, tick));
            }
            cluster.step(events);
            let b = cluster.backlog();
            peak = peak.max(b);
            if now > 40_000 && b == 0 && drained_at.is_none() {
                drained_at = Some(now / 1_000);
            }
            if now > 40_000 && b > 0 {
                drained_at = None;
            }
        }
        table.row(vec![
            t_ms.to_string(),
            peak.to_string(),
            drained_at.map_or("never".into(), |s| s.to_string()),
        ]);
    }
    table.print();
}

/// Hotspot-threshold sweep: a lower threshold reacts to smaller tenants
/// (more rules, more balance); a higher one leaves mid-size hotspots
/// unsplit.
fn ablate_threshold(quick: bool) {
    println!("\n(3) CheckHotSpot threshold factor: balance vs rule churn, θ=1.5 @ 150K TPS");
    let mut table = Table::new(&["hot_factor", "rules", "node stddev (TPS)", "tput (TPS)"]);
    for factor in [0.25, 0.5, 1.0, 2.0] {
        let mut cfg = ClusterConfig::paper(PolicySpec::Dynamic);
        cfg.balancer.offset.hot_factor = factor;
        let tick = cfg.tick_ms;
        let mut cluster = SimCluster::new(cfg);
        let mut gen = TraceGenerator::new(100_000, 1.5, RateSchedule::constant(150_000.0), 9);
        let duration = if quick { 60_000 } else { 120_000 };
        for _ in 0..(duration / tick) {
            let now = cluster.now();
            let events = gen.tick(now, tick);
            cluster.step(events);
        }
        let r = cluster.finish();
        table.row(vec![
            format!("{factor:.2}"),
            r.rules_committed.to_string(),
            format!("{:.0}", r.node_throughput_stddev()),
            format!("{:.0}", r.throughput_tps(duration / 3)),
        ]);
    }
    table.print();
}

/// Pre-replication of merged segments: visibility delay of refreshed
/// segments with and without it (§5.2).
fn ablate_prereplication() {
    println!("\n(4) pre-replication of merged segments: refreshed-segment shipping");
    use esdb_common::SharedClock;
    use esdb_doc::{CollectionSchema, Document, WriteOp};
    use esdb_replication::{ReplicatedPair, ReplicationMode};
    let mut table = Table::new(&[
        "mode",
        "segments via diff",
        "segments pre-replicated",
        "bytes shipped",
    ]);
    for pre in [false, true] {
        let dir = std::env::temp_dir().join(format!("esdb-ablate-prerepl-{pre}"));
        let _ = std::fs::remove_dir_all(&dir);
        let (clock, _driver) = SharedClock::manual(0);
        let mut pair = ReplicatedPair::open(
            CollectionSchema::transaction_logs(),
            dir,
            ReplicationMode::Physical {
                pre_replicate_merges: pre,
            },
            clock,
        )
        .expect("open pair");
        let mut rid = 0u64;
        for _round in 0..3 {
            for batch in 0..4 {
                for _ in 0..50 {
                    pair.write(&WriteOp::insert(
                        Document::builder(TenantId(1), RecordId(rid), 100 + rid)
                            .field("status", (rid % 2) as i64)
                            .build(),
                    ))
                    .expect("write");
                    rid += 1;
                }
                let _ = batch;
                pair.refresh().expect("refresh");
            }
            pair.maybe_merge();
            pair.refresh().expect("refresh");
        }
        let m = pair.metrics();
        table.row(vec![
            if pre {
                "pre-replication".into()
            } else {
                "diff-only".to_string()
            },
            m.segments_shipped_incremental.to_string(),
            m.segments_shipped_prereplicated.to_string(),
            m.segment_bytes_shipped.to_string(),
        ]);
    }
    table.print();
    println!("with pre-replication, merged segments never appear in a segment diff (§5.2)");
}
