//! Figure 16: query throughput (QPS) of the top-2000 tenants under the
//! three routing policies.
//!
//! Paper shape: double hashing is far below the others (every query fans
//! out to 8 subqueries); dynamic secondary hashing matches hashing for
//! small tenants (up to 63% above double hashing) and does not drop for
//! large tenants (smaller shards, parallel subqueries).
//!
//! Method: run the write simulation (which produces per-tenant doc counts,
//! per-shard sizes and — for dynamic — the committed rule spans), then
//! apply the calibrated analytic query model (`esdb_cluster::query_model`)
//! per tenant rank.

use crate::harness::{run_write_sim, SimParams};
use crate::output::{banner, fmt_k, Table};
use esdb_cluster::{PolicySpec, QueryCostModel, QueryThroughputModel, SimCluster};
use esdb_common::TenantId;
use esdb_routing::ShardSpan;
use esdb_workload::{RateSchedule, TraceGenerator};

const RANKS: [usize; 10] = [1, 10, 50, 100, 200, 400, 600, 1_000, 1_500, 2_000];

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 16 — query throughput of the top-2000 tenants");
    let duration_s = if quick { 30 } else { 60 };
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for policy in [
        PolicySpec::Hashing,
        PolicySpec::DoubleHashing { s: 8 },
        PolicySpec::Dynamic,
    ] {
        eprintln!("  building {} dataset ...", policy.label());
        let mut p = SimParams::paper(policy);
        p.duration_s = duration_s;
        // The dynamic run needs the live cluster to expose rule spans, so
        // replay the run with a retained cluster here.
        let mut cfg = esdb_cluster::ClusterConfig::paper(policy);
        cfg.replica_cost = p.replica_cost;
        let tick = cfg.tick_ms;
        let mut cluster = SimCluster::new(cfg);
        let mut gen =
            TraceGenerator::new(p.n_tenants, p.theta, RateSchedule::constant(p.rate), p.seed);
        for _ in 0..(p.duration_s * 1_000 / tick) {
            let now = cluster.now();
            let events = gen.tick(now, tick);
            cluster.step(events);
        }
        let spans: Vec<(TenantId, ShardSpan)> = RANKS
            .iter()
            .map(|&rank| {
                let t = gen.tenant_of_rank(rank);
                (t, cluster.read_span(t))
            })
            .collect();
        let report = cluster.finish();
        let model = QueryThroughputModel::new(&report, QueryCostModel::default());
        columns.push(spans.iter().map(|(t, span)| model.qps(*t, span)).collect());
        let _ = run_write_sim; // (kept for parity with other figures)
    }
    let mut t = Table::new(&["tenant rank", "Hashing", "Double hashing", "Dynamic"]);
    for (i, &rank) in RANKS.iter().enumerate() {
        t.row(vec![
            rank.to_string(),
            fmt_k(columns[0][i]),
            fmt_k(columns[1][i]),
            fmt_k(columns[2][i]),
        ]);
    }
    t.print();
    let dyn_small = columns[2][RANKS.len() - 1];
    let dbl_small = columns[1][RANKS.len() - 1];
    println!(
        "small-tenant QPS gain of dynamic over double hashing: {:.0}% (paper: up to 63%)",
        100.0 * (dyn_small - dbl_small) / dbl_small
    );
}
