//! Figure 15: write throughput (a) and average cluster CPU usage (b),
//! logical versus physical replication.
//!
//! Paper shape: logical replication saturates at ~140K TPS while physical
//! climbs past 180K; at equal rates physical uses less CPU. In the
//! simulator physical replication prices a replica execution at 0.3 of a
//! primary (translog append + segment install instead of re-indexing) —
//! calibrated against the micro-benchmarked engine (see
//! `benches/replication.rs`).

use crate::harness::{run_write_sim, warmup_ms, SimParams};
use crate::output::{banner, fmt_k, Table};
use esdb_cluster::PolicySpec;

/// Replica cost factor under physical replication.
pub const PHYSICAL_REPLICA_COST: f64 = 0.3;

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 15 — logical vs physical replication: throughput (a), CPU (b)");
    let rates: &[f64] = if quick {
        &[120_000.0, 160_000.0, 200_000.0]
    } else {
        &[
            100_000.0, 120_000.0, 140_000.0, 160_000.0, 180_000.0, 200_000.0, 220_000.0,
        ]
    };
    let mut tput = Table::new(&["rate", "logical (TPS)", "physical (TPS)"]);
    let mut cpu = Table::new(&["rate", "logical cpu (%)", "physical cpu (%)"]);
    for &rate in rates {
        let mut t_row = vec![fmt_k(rate)];
        let mut c_row = vec![fmt_k(rate)];
        for cost in [1.0, PHYSICAL_REPLICA_COST] {
            let mut p = SimParams::paper(PolicySpec::DoubleHashing { s: 8 });
            p.rate = rate;
            p.replica_cost = cost;
            if quick {
                p = p.quick();
            }
            let r = run_write_sim(&p);
            t_row.push(fmt_k(r.throughput_tps(warmup_ms(&p))));
            let avg_cpu: f64 =
                r.per_node_utilization.iter().sum::<f64>() / r.per_node_utilization.len() as f64;
            c_row.push(format!("{:.0}", avg_cpu * 100.0));
        }
        tput.row(t_row);
        cpu.row(c_row);
    }
    println!("(a) write throughput");
    tput.print();
    println!("\n(b) average cluster CPU usage");
    cpu.print();
}
