//! Figure 19: online performance at the Singles' Day festival kickoff —
//! max write delay and average query latency over ~30 minutes around
//! midnight.
//!
//! Paper shape: the max write delay spikes at 00:00 (the kickoff burst),
//! ESDB detects the hotspots, commits new secondary hashing rules, and
//! fully eliminates write delays within ~7 minutes; average query latency
//! stays ≤164 ms throughout. (Previous years without ESDB: >100 minutes.)

use crate::output::{banner, Table};
use esdb_cluster::{ClusterConfig, PolicySpec, QueryCostModel, QueryThroughputModel, SimCluster};
use esdb_workload::{RateSchedule, TraceGenerator};

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 19 — festival kickoff: max write delay & avg query latency");
    // Timeline: 10 min pre-midnight calm, a 60 s kickoff burst at
    // "00:00", then sustained festival traffic.
    let pre_ms = if quick { 120_000 } else { 600_000 };
    let post_ms = if quick { 480_000 } else { 1_200_000 };
    let calm = 40_000.0;
    // Kickoff burst sized so the backlog drains within the paper's ~7 min
    // (the cluster's spare capacity post-burst is ~20K writes/s).
    let burst = 220_000.0;
    let festival = 140_000.0;

    let mut cfg = ClusterConfig::paper(PolicySpec::Dynamic);
    cfg.monitor_period_ms = 10_000;
    cfg.consensus_t_ms = 5_000;
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let schedule = RateSchedule::steps(vec![
        (0, calm),
        (pre_ms, burst),
        (pre_ms + 60_000, festival),
    ]);
    let mut gen = TraceGenerator::new(100_000, 1.0, schedule, 1111);

    let duration = pre_ms + post_ms;
    let window_ms = 60_000u64;
    let mut rows: Vec<(i64, u64, f64)> = Vec::new();
    let mut next_window = window_ms;
    for _ in 0..(duration / tick) {
        let now = cluster.now();
        let events = gen.tick(now, tick);
        cluster.step(events);
        if now + tick >= next_window {
            let report = cluster.report_so_far();
            let max_delay = report.max_delay_in(next_window - window_ms, next_window);
            // Query latency from the analytic model against the current
            // state (top-100 tenant average).
            let model = QueryThroughputModel::new(report, QueryCostModel::default());
            let mut lat = 0.0;
            for rank in 1..=100 {
                let t = gen.tenant_of_rank(rank);
                lat += model.latency_ms(t, &cluster.read_span(t));
            }
            // Queries share the workers with writes: apply an M/M/1-style
            // queueing factor from the window's utilization so latency
            // rises with load like the paper's online trace.
            let window_ticks: Vec<_> = report
                .ticks
                .iter()
                .filter(|t| t.time_ms >= next_window - window_ms && t.time_ms < next_window)
                .collect();
            let completed: u64 = window_ticks.iter().map(|t| t.completed).sum();
            let rho = (completed as f64 / (window_ms as f64 / 1_000.0) / 160_000.0).min(0.99);
            let queueing = (1.0 / (1.0 - 0.9 * rho)).min(12.0);
            rows.push((
                (next_window as i64 - pre_ms as i64) / 1_000,
                max_delay,
                lat / 100.0 * queueing,
            ));
            next_window += window_ms;
        }
    }
    let mut t = Table::new(&[
        "t rel. midnight (s)",
        "max write delay (s)",
        "avg query latency (ms)",
    ]);
    for (ts, delay, lat) in rows {
        t.row(vec![
            format!("{ts:+}"),
            format!("{:.1}", delay as f64 / 1_000.0),
            format!("{lat:.0}"),
        ]);
    }
    t.print();
    println!(
        "kickoff burst: {calm:.0}→{burst:.0} TPS for 60 s, then {festival:.0} TPS; \
         delays should vanish within minutes of the rules committing (paper: <7 min)"
    );
}
