//! Figures 11 and 12 share the θ sweep at 160K TPS:
//!
//! * Fig. 11 — write throughput (a) and average delay (b) vs θ ∈
//!   {0, 0.5, 1, 1.5, 2}. Paper shape: all equal at θ=0; hashing's
//!   throughput collapses and its delay grows >100× as θ rises, while
//!   double/dynamic stay flat (~0.2 s delays).
//! * Fig. 12 — stddev of per-node (a) and per-shard (b) throughput vs θ.
//!   Paper shape: hashing's stddev explodes with θ; dynamic stays near
//!   double hashing.

use crate::harness::{all_policies, run_write_sim, warmup_ms, SimParams};
use crate::output::{banner, fmt_k, Table};

const THETAS: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];

/// Runs both reproductions (they share the sweep).
pub fn run(quick: bool) {
    banner("Figures 11/12 — θ sweep at 160K TPS: throughput, delay, node/shard stddev");
    let mut tput = Table::new(&["theta", "Hashing", "Double hashing", "Dynamic"]);
    let mut delay = Table::new(&[
        "theta",
        "Hashing (ms)",
        "Double hashing (ms)",
        "Dynamic (ms)",
    ]);
    let mut node_sd = Table::new(&["theta", "Hashing", "Double hashing", "Dynamic"]);
    let mut shard_sd = Table::new(&["theta", "Hashing", "Double hashing", "Dynamic"]);
    for theta in THETAS {
        let mut t_row = vec![format!("{theta:.1}")];
        let mut d_row = vec![format!("{theta:.1}")];
        let mut n_row = vec![format!("{theta:.1}")];
        let mut s_row = vec![format!("{theta:.1}")];
        for policy in all_policies() {
            let mut p = SimParams::paper(policy);
            p.theta = theta;
            // The paper averages >15 minutes; we use a shorter steady
            // window (shapes converge long before).
            p.duration_s = if quick { 40 } else { 120 };
            let r = run_write_sim(&p);
            let w = warmup_ms(&p);
            t_row.push(fmt_k(r.throughput_tps(w)));
            d_row.push(format!("{:.0}", r.avg_delay_ms(w)));
            n_row.push(fmt_k(r.node_throughput_stddev()));
            s_row.push(format!("{:.1}", r.shard_throughput_stddev()));
        }
        tput.row(t_row);
        delay.row(d_row);
        node_sd.row(n_row);
        shard_sd.row(s_row);
    }
    println!("Fig 11(a) write throughput (TPS)");
    tput.print();
    println!("\nFig 11(b) average write delay (ms)");
    delay.print();
    println!("\nFig 12(a) stddev of per-node throughput (TPS)");
    node_sd.print();
    println!("\nFig 12(b) stddev of per-shard throughput (TPS)");
    shard_sd.print();
}
