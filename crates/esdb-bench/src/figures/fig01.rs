//! Figure 1: normalized throughput of the top 1000 sellers in the first
//! 10 s of the Singles' Day festival (log-log power-law curve; the paper
//! reports the top-10 sellers carrying 14.14% of total throughput).

use crate::output::{banner, Table};
use esdb_workload::{RateSchedule, TraceGenerator};

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 1 — normalized throughput of top-1000 sellers, first 10 s of the spike");
    let n_tenants = 1_000_000;
    let rate = if quick { 200_000.0 } else { 500_000.0 };
    // The production curve sits between Zipf(0.9) and Zipf(1); θ=0.95 gives
    // the paper's top-10 share (~14%) over a 1M-seller population.
    let mut gen = TraceGenerator::new(n_tenants, 0.95, RateSchedule::constant(rate), 1111);
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for t in 0..100 {
        for ev in gen.tick(t * 100, 100) {
            *counts.entry(ev.tenant.raw()).or_insert(0) += 1;
        }
    }
    let total: u64 = counts.values().sum();
    let mut ranked: Vec<u64> = counts.values().copied().collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    ranked.truncate(1_000);
    let base = *ranked.last().expect("1000 sellers") as f64;

    let mut table = Table::new(&["rank", "normalized tput"]);
    for &rank in &[1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1_000] {
        if rank <= ranked.len() {
            table.row(vec![
                rank.to_string(),
                format!("{:.1}", ranked[rank - 1] as f64 / base),
            ]);
        }
    }
    table.print();
    let top10: u64 = ranked.iter().take(10).sum();
    println!(
        "top-10 sellers carry {:.2}% of total throughput (paper: 14.14%)",
        100.0 * top10 as f64 / total as f64
    );
}
