//! One module per reproduced figure (paper §6). Each exposes
//! `run(quick: bool)`, printing the same series the paper plots.

pub mod ablations;
pub mod fig01;
pub mod fig10;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17_18;
pub mod fig19;
