//! Figure 10: write throughput (a) and average delay (b) versus generating
//! rate at θ=1, for the three routing policies. Paper shape: Hashing
//! plateaus around 90K TPS while double/dynamic climb to ~140K; delays
//! explode once a policy passes its saturation point, hashing first and
//! steepest.

use crate::harness::{all_policies, run_write_sim, warmup_ms, SimParams};
use crate::output::{banner, fmt_k, Table};

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 10 — write throughput (a) and average delay (b) vs generating rate, θ=1");
    let rates: &[f64] = if quick {
        &[80_000.0, 120_000.0, 160_000.0, 200_000.0]
    } else {
        &[
            40_000.0, 80_000.0, 100_000.0, 120_000.0, 140_000.0, 160_000.0, 180_000.0, 200_000.0,
        ]
    };
    let mut tput = Table::new(&["rate", "Hashing", "Double hashing", "Dynamic"]);
    let mut delay = Table::new(&[
        "rate",
        "Hashing (ms)",
        "Double hashing (ms)",
        "Dynamic (ms)",
    ]);
    for &rate in rates {
        let mut t_row = vec![fmt_k(rate)];
        let mut d_row = vec![fmt_k(rate)];
        for policy in all_policies() {
            let mut p = SimParams::paper(policy);
            p.rate = rate;
            if quick {
                p = p.quick();
            }
            let r = run_write_sim(&p);
            let w = warmup_ms(&p);
            t_row.push(fmt_k(r.throughput_tps(w)));
            d_row.push(format!("{:.0}", r.avg_delay_ms(w)));
        }
        tput.row(t_row);
        delay.row(d_row);
    }
    println!("(a) cluster write throughput (TPS)");
    tput.print();
    println!("\n(b) average write delay (ms)");
    delay.print();
}
