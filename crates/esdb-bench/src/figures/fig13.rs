//! Figure 13: per-node write throughput and CPU usage under each policy
//! (a–c) and normalized shard sizes (d), at θ=1.
//!
//! Paper shape: with hashing, one node pair (primary+replica of the hot
//! shard) works at full capacity while the rest idle; with dynamic
//! secondary hashing every node is busy (≈85% CPU) and throughput is close
//! to even. Shard sizes: hashing's largest shard is >100× the smallest;
//! dynamic ≈16×; double hashing ≈13×.
//!
//! Shard sizes are measured over the steady-state window (bytes written
//! after the balancer has adapted) — the paper's cluster had been serving
//! the workload long before the measurement too.

use crate::harness::{all_policies, SimParams};
use crate::output::{banner, fmt_k, Table};
use esdb_cluster::SimCluster;
use esdb_workload::{RateSchedule, TraceGenerator};

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 13 — per-node throughput + CPU (a–c) and normalized shard sizes (d), θ=1");
    let mut size_rows: Vec<(String, f64, f64)> = Vec::new();
    for policy in all_policies() {
        let mut p = SimParams::paper(policy);
        p.duration_s = if quick { 60 } else { 150 };
        let warmup_s = p.duration_s / 3;

        let cfg = esdb_cluster::ClusterConfig::paper(policy);
        let tick = cfg.tick_ms;
        let mut cluster = SimCluster::new(cfg);
        let mut gen =
            TraceGenerator::new(p.n_tenants, p.theta, RateSchedule::constant(p.rate), p.seed);
        let mut bytes_at_warmup: Vec<u64> = Vec::new();
        for t in 0..(p.duration_s * 1_000 / tick) {
            let now = cluster.now();
            let events = gen.tick(now, tick);
            cluster.step(events);
            if t == warmup_s * 1_000 / tick {
                bytes_at_warmup = cluster.report_so_far().per_shard_bytes.clone();
            }
        }
        // Per-node completion-delay percentiles from the sim's telemetry
        // histograms (`esdb_sim_write_delay_ms{node}`).
        let delay_qs = cluster.node_delay_quantiles(&[0.5, 0.99]);
        let r = cluster.finish();

        println!(
            "\n({}) per-node throughput, CPU usage, and write delay",
            policy.label()
        );
        let mut t = Table::new(&[
            "node",
            "tput (TPS)",
            "cpu (%)",
            "p50 delay (ms)",
            "p99 (ms)",
        ]);
        for (i, (tps, util)) in r
            .node_throughput_tps()
            .iter()
            .zip(&r.per_node_utilization)
            .enumerate()
        {
            t.row(vec![
                format!("{i}"),
                fmt_k(*tps),
                format!("{:.0}", util * 100.0),
                format!("{}", delay_qs[i][0]),
                format!("{}", delay_qs[i][1]),
            ]);
        }
        t.print();

        // (d): normalized steady-state shard sizes.
        let mut sizes: Vec<u64> = r
            .per_shard_bytes
            .iter()
            .zip(&bytes_at_warmup)
            .map(|(&total, &warm)| total - warm)
            .filter(|&b| b > 0)
            .collect();
        sizes.sort_unstable();
        let min = *sizes.first().unwrap_or(&1) as f64;
        let max = *sizes.last().unwrap_or(&1) as f64;
        size_rows.push((
            policy.label().to_string(),
            max / min.max(1.0),
            esdb_common::stats::quantile(
                &sizes
                    .iter()
                    .map(|&b| b as f64 / min.max(1.0))
                    .collect::<Vec<_>>(),
                0.5,
            ),
        ));
    }
    println!("\n(d) normalized shard sizes (largest / smallest, median)");
    let mut t = Table::new(&["policy", "max/min ratio", "median (normalized)"]);
    for (label, ratio, med) in size_rows {
        t.row(vec![label, format!("{ratio:.0}x"), format!("{med:.1}")]);
    }
    t.print();
    println!("paper: hashing >100x, dynamic ≈16x, double hashing ≈13x");
}
