//! Figures 17 and 18: real-engine query latency.
//!
//! * Fig. 17 — query sets for the top-100 tenants executed with and
//!   without ESDB's rule-based optimizer (§5.1). Paper shape: the
//!   optimizer improves average latency ~2.4×, up to ~5× for the largest
//!   tenant; p99 stays under 200 ms.
//! * Fig. 18 — the same queries with a Zipf-sampled sub-attribute filter
//!   appended, with and without frequency-based indexing of the top-30
//!   sub-attributes (§3.2). Paper shape: average latency drops by up to
//!   94%, at ~6.7% storage overhead.
//!
//! These run against the real embedded engine (real segments, posting
//! lists, composite indexes) on a scaled-down dataset — see DESIGN.md §1.

use crate::datasets::{build_embedded, DatasetParams, DATASET_T0, DAY_MS};
use crate::output::{banner, Table};
use esdb_common::stats::quantile;
use esdb_common::TenantId;
use esdb_query::QueryOptions;
use esdb_workload::QueryGenerator;
use std::time::Instant;

struct LatencyRun {
    /// Per-tenant mean latency (µs), indexed by rank order.
    per_tenant_mean_us: Vec<f64>,
    /// All latencies (µs).
    all_us: Vec<f64>,
}

/// Times the same generated queries under both plan modes, interleaved
/// (A/B then B/A per query) so cache warm-up cannot bias either side.
/// Returns `(with_optimizer, naive)`.
fn run_queries_ab(
    db: &mut esdb_core::Esdb,
    tenants: &[TenantId],
    queries_per_tenant: usize,
    with_attr: bool,
    seed: u64,
) -> (LatencyRun, LatencyRun) {
    let mut generator = QueryGenerator::new(1_500, seed);
    generator.with_attr_filter = with_attr;
    let opt = QueryOptions {
        use_optimizer: true,
        ..QueryOptions::default()
    };
    let naive = QueryOptions {
        use_optimizer: false,
        ..QueryOptions::default()
    };
    let mut runs = (
        LatencyRun {
            per_tenant_mean_us: Vec::new(),
            all_us: Vec::new(),
        },
        LatencyRun {
            per_tenant_mean_us: Vec::new(),
            all_us: Vec::new(),
        },
    );
    let time_one = |db: &mut esdb_core::Esdb, sql: &str, o: QueryOptions| -> f64 {
        let start = Instant::now();
        let rows = db.query_opts(sql, o).expect("query");
        std::hint::black_box(rows.docs.len());
        start.elapsed().as_secs_f64() * 1e6
    };
    for (qi, &tenant) in tenants.iter().enumerate() {
        let (mut sum_opt, mut sum_naive) = (0.0f64, 0.0f64);
        for q in 0..queries_per_tenant {
            let from = DATASET_T0 + (DAY_MS / 4);
            let to = DATASET_T0 + (3 * DAY_MS / 4);
            let sql = generator.generate(tenant, from, to);
            // Untimed warm-up of both paths, then timed runs in
            // alternating order.
            let _ = time_one(db, &sql, opt);
            let _ = time_one(db, &sql, naive);
            let (o_us, n_us) = if (qi + q) % 2 == 0 {
                let o = time_one(db, &sql, opt);
                let n = time_one(db, &sql, naive);
                (o, n)
            } else {
                let n = time_one(db, &sql, naive);
                let o = time_one(db, &sql, opt);
                (o, n)
            };
            sum_opt += o_us;
            sum_naive += n_us;
            runs.0.all_us.push(o_us);
            runs.1.all_us.push(n_us);
        }
        runs.0
            .per_tenant_mean_us
            .push(sum_opt / queries_per_tenant as f64);
        runs.1
            .per_tenant_mean_us
            .push(sum_naive / queries_per_tenant as f64);
    }
    runs
}

/// Times queries under one plan mode (per-query untimed warm-up first).
fn run_queries(
    db: &mut esdb_core::Esdb,
    tenants: &[TenantId],
    queries_per_tenant: usize,
    attr_probe: bool,
    opts: QueryOptions,
    seed: u64,
) -> LatencyRun {
    let mut generator = QueryGenerator::new(1_500, seed);
    let mut per_tenant = Vec::with_capacity(tenants.len());
    let mut all = Vec::new();
    for &tenant in tenants {
        let mut sum = 0.0f64;
        for _ in 0..queries_per_tenant {
            let from = DATASET_T0 + (DAY_MS / 4);
            let to = DATASET_T0 + (3 * DAY_MS / 4);
            let sql = if attr_probe {
                generator.generate_attr_probe(tenant, from, to)
            } else {
                generator.generate(tenant, from, to)
            };
            let _ = db.query_opts(&sql, opts).expect("warmup");
            let start = Instant::now();
            let rows = db.query_opts(&sql, opts).expect("query");
            let us = start.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(rows.docs.len());
            sum += us;
            all.push(us);
        }
        per_tenant.push(sum / queries_per_tenant as f64);
    }
    LatencyRun {
        per_tenant_mean_us: per_tenant,
        all_us: all,
    }
}

fn print_quantiles(label_a: &str, a: &LatencyRun, label_b: &str, b: &LatencyRun) {
    let mut t = Table::new(&["quantile", label_a, label_b]);
    for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        t.row(vec![
            name.to_string(),
            format!("{:.2} ms", quantile(&a.all_us, q) / 1_000.0),
            format!("{:.2} ms", quantile(&b.all_us, q) / 1_000.0),
        ]);
    }
    t.print();
}

fn mean(xs: &[f64]) -> f64 {
    esdb_common::stats::mean(xs)
}

/// Runs both reproductions (they share the dataset).
pub fn run(quick: bool) {
    banner("Figures 17/18 — query optimizer and frequency-based indexing (real engine)");
    // Per-shard doc counts are what separate the plans (the naive plan
    // materializes per-predicate posting lists proportional to shard
    // size), so favor fewer, larger shards at a given row budget.
    let params = DatasetParams {
        n_rows: if quick { 80_000 } else { 400_000 },
        n_tenants: if quick { 500 } else { 2_000 },
        n_shards: if quick { 4 } else { 8 },
        ..DatasetParams::default()
    };
    let n_top = if quick { 30 } else { 100 };
    let qpt = if quick { 20 } else { 100 };
    eprintln!(
        "  building dataset: {} rows / {} tenants ...",
        params.n_rows, params.n_tenants
    );
    let dir = std::env::temp_dir().join("esdb-fig17");
    let (mut db, trace) = build_embedded(&params, dir);
    let tenants: Vec<TenantId> = (1..=n_top).map(|r| trace.tenant_of_rank(r)).collect();

    // ---- Figure 17: optimizer on/off -------------------------------
    eprintln!(
        "  fig 17: running {} queries x {} tenants x 2 plans ...",
        qpt, n_top
    );
    let (opt, naive) = run_queries_ab(&mut db, &tenants, qpt, false, 1);
    println!("\nFig 17(a) mean query latency per tenant rank (ms)");
    let mut t = Table::new(&["tenant rank", "no optimizer", "with optimizer", "speedup"]);
    for (i, rank) in [1usize, 2, 5, 10, 20, 50, n_top].iter().enumerate() {
        let idx = rank - 1;
        if idx < opt.per_tenant_mean_us.len() && i < 7 {
            t.row(vec![
                rank.to_string(),
                format!("{:.2}", naive.per_tenant_mean_us[idx] / 1_000.0),
                format!("{:.2}", opt.per_tenant_mean_us[idx] / 1_000.0),
                format!(
                    "{:.2}x",
                    naive.per_tenant_mean_us[idx] / opt.per_tenant_mean_us[idx]
                ),
            ]);
        }
    }
    t.print();
    println!(
        "overall mean speedup: {:.2}x; largest-tenant speedup: {:.2}x (paper: 2.41x avg, 5.08x top)",
        mean(&naive.all_us) / mean(&opt.all_us),
        naive.per_tenant_mean_us[0] / opt.per_tenant_mean_us[0],
    );
    println!("\nFig 17(b) latency quantiles");
    print_quantiles("no optimizer", &naive, "with optimizer", &opt);

    // ---- Figure 18: frequency-based indexing on/off -----------------
    eprintln!("  fig 18: rebuilding dataset without sub-attribute indexes ...");
    let with_idx_size = db.stats().size_bytes;
    let with_attr_on = run_queries(
        &mut db,
        &tenants,
        qpt,
        true,
        QueryOptions {
            use_optimizer: true,
            ..QueryOptions::default()
        },
        2,
    );
    drop(db);
    let mut params_noidx = params.clone();
    params_noidx.attr_top_k = 0;
    let dir = std::env::temp_dir().join("esdb-fig18");
    let (mut db_noidx, _) = build_embedded(&params_noidx, dir);
    let no_idx_size = db_noidx.stats().size_bytes;
    let with_attr_off = run_queries(
        &mut db_noidx,
        &tenants,
        qpt,
        true,
        QueryOptions {
            use_optimizer: true,
            ..QueryOptions::default()
        },
        2,
    );
    println!("\nFig 18(a) mean latency with a sub-attribute filter (ms)");
    let mut t = Table::new(&[
        "tenant rank",
        "no attr index",
        "freq-based index",
        "reduction",
    ]);
    for rank in [1usize, 5, 20, n_top] {
        let idx = rank - 1;
        t.row(vec![
            rank.to_string(),
            format!("{:.2}", with_attr_off.per_tenant_mean_us[idx] / 1_000.0),
            format!("{:.2}", with_attr_on.per_tenant_mean_us[idx] / 1_000.0),
            format!(
                "{:.0}%",
                100.0
                    * (1.0
                        - with_attr_on.per_tenant_mean_us[idx]
                            / with_attr_off.per_tenant_mean_us[idx])
            ),
        ]);
    }
    t.print();
    println!(
        "overall mean reduction: {:.0}% (paper: up to 94.1%); storage overhead of the \
         top-30 attr indexes: {:.1}% (paper: 6.7%)",
        100.0 * (1.0 - mean(&with_attr_on.all_us) / mean(&with_attr_off.all_us)),
        100.0 * (with_idx_size as f64 - no_idx_size as f64) / no_idx_size as f64,
    );
    println!("\nFig 18(b) latency quantiles");
    print_quantiles(
        "no attr index",
        &with_attr_off,
        "freq-based index",
        &with_attr_on,
    );
}
