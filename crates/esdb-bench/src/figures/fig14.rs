//! Figure 14: real-time write throughput over 6 minutes with two groups of
//! hotspots arriving mid-run.
//!
//! Paper shape: when each hotspot group arrives, hashing and dynamic both
//! drop sharply; dynamic recovers to full throughput once the new secondary
//! hashing rules commit; hashing never recovers; double hashing is
//! unaffected throughout.

use crate::output::{banner, Table};
use esdb_cluster::{ClusterConfig, PolicySpec, SimCluster};
use esdb_workload::{RateSchedule, TraceGenerator};

/// Base traffic below saturation for every policy.
const BASE_RATE: f64 = 105_000.0;
/// Extra traffic concentrated on 3 fresh sellers per wave.
const HOTSPOT_RATE: f64 = 35_000.0;
/// Hotspot-group arrival times.
const WAVES: [u64; 2] = [60_000, 210_000];

fn run_policy(policy: PolicySpec, duration_s: u64) -> Vec<(u64, f64)> {
    let mut cfg = ClusterConfig::paper(policy);
    cfg.monitor_period_ms = 10_000;
    cfg.consensus_t_ms = 5_000;
    let tick = cfg.tick_ms;
    let mut cluster = SimCluster::new(cfg);
    let mut base = TraceGenerator::new(100_000, 0.8, RateSchedule::constant(BASE_RATE), 21);
    let mut overlay: Option<TraceGenerator> = None;
    let mut series = Vec::new();
    let mut window = 0u64;
    for t in 0..(duration_s * 1_000 / tick) {
        let now = cluster.now();
        if let Some(i) = WAVES.iter().position(|&w| w == now) {
            overlay = Some(
                TraceGenerator::new(3, 0.0, RateSchedule::constant(HOTSPOT_RATE), 100 + i as u64)
                    .with_offsets(1_000_000 * (i as u64 + 1), 1_000_000_000 * (i as u64 + 1)),
            );
        }
        let mut events = base.tick(now, tick);
        if let Some(o) = overlay.as_mut() {
            events.extend(o.tick(now, tick));
        }
        cluster.step(events);
        window += cluster
            .report_so_far()
            .ticks
            .last()
            .expect("tick")
            .completed;
        if (t + 1) % (10_000 / tick) == 0 {
            series.push((now / 1_000, window as f64 / 10.0));
            window = 0;
        }
    }
    series
}

/// Runs the reproduction.
pub fn run(quick: bool) {
    banner("Figure 14 — real-time throughput, hotspot groups at 60s and 210s");
    let duration_s = if quick { 240 } else { 360 };
    let mut series = Vec::new();
    for p in [
        PolicySpec::Hashing,
        PolicySpec::DoubleHashing { s: 8 },
        PolicySpec::Dynamic,
    ] {
        eprintln!("  simulating {} ...", p.label());
        series.push(run_policy(p, duration_s));
    }
    let mut t = Table::new(&["time (s)", "Hashing", "Double hashing", "Dynamic"]);
    for (i, &(ts, v0)) in series[0].iter().enumerate() {
        t.row(vec![
            format!("{ts}"),
            format!("{v0:.0}"),
            format!("{:.0}", series[1][i].1),
            format!("{:.0}", series[2][i].1),
        ]);
    }
    t.print();
    println!(
        "completed writes/s in 10s windows; hotspot groups arrive at t=60s and t=210s \
         (generating rate {:.0}→{:.0})",
        BASE_RATE,
        BASE_RATE + HOTSPOT_RATE
    );
}
