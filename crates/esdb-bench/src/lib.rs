//! Benchmark harness for ESDB-RS.
//!
//! The `figures` binary (`src/bin/figures.rs`) regenerates every figure of
//! the paper's evaluation (§6); the Criterion benches under `benches/`
//! micro-benchmark the engine pieces. This library holds the shared
//! plumbing: simulation runners, dataset builders for the real-engine
//! experiments, and plain-text table output.

pub mod datasets;
pub mod figures;
pub mod harness;
pub mod output;

pub use harness::{run_write_sim, SimParams};
pub use output::Table;
