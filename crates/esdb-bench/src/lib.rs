//! Benchmark harness for ESDB-RS.
//!
//! The `figures` binary (`src/bin/figures.rs`) regenerates every figure of
//! the paper's evaluation (§6); the Criterion benches under `benches/`
//! micro-benchmark the engine pieces. This library holds the shared
//! plumbing: simulation runners, dataset builders for the real-engine
//! experiments, and plain-text table output.

pub mod datasets;
pub mod figures;
pub mod harness;
pub mod output;

pub use harness::{run_write_sim, SimParams};
pub use output::Table;

/// Host CPU count every `BENCH_*.json` reports as `host_cores`, so a
/// result can never masquerade as a multi-core measurement.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether a full-mode run is degraded by a single-core host. Benches
/// mark their JSON with `"degraded_single_core": true` and warn on
/// stderr; parallelism-dependent gates must downgrade to report-only.
/// Fast (CI smoke) runs are never marked — they make no perf claims.
pub fn degraded_single_core(fast: bool) -> bool {
    let degraded = !fast && host_cores() < 2;
    if degraded {
        eprintln!(
            "WARNING: full-mode benchmark on a single-core host — concurrent \
             and parallel measurements are serialized; marking degraded_single_core"
        );
    }
    degraded
}
