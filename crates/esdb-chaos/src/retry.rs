//! Bounded retry-with-backoff for writes hitting dead or in-transition
//! shards.

/// Exponential backoff with a delay cap and an attempt bound. Attempt 0 is
/// the first *retry* (the initial dispatch is not an attempt).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, ms.
    pub base_delay_ms: u64,
    /// Per-retry delay cap, ms.
    pub max_delay_ms: u64,
    /// Retries before the write is failed back to the client.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay_ms: 100,
            max_delay_ms: 2_000,
            max_attempts: 64,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based), or `None` once the
    /// attempt budget is exhausted. Doubling, capped at `max_delay_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let shifted = self.base_delay_ms.saturating_shl(attempt.min(16));
        Some(shifted.min(self.max_delay_ms).max(1))
    }

    /// Worst-case total time spent retrying, ms (the recovery budget a
    /// schedule must fit inside for zero client-visible write failures).
    pub fn max_total_delay_ms(&self) -> u64 {
        (0..self.max_attempts)
            .map(|a| self.backoff_ms(a).unwrap_or(0))
            .sum()
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_then_caps_then_exhausts() {
        let p = RetryPolicy {
            base_delay_ms: 100,
            max_delay_ms: 500,
            max_attempts: 5,
        };
        let delays: Vec<Option<u64>> = (0..6).map(|a| p.backoff_ms(a)).collect();
        assert_eq!(
            delays,
            vec![Some(100), Some(200), Some(400), Some(500), Some(500), None]
        );
        assert_eq!(p.max_total_delay_ms(), 1_700);
    }

    #[test]
    fn default_budget_covers_typical_recovery() {
        let p = RetryPolicy::default();
        // Default budget is well over a minute of simulated time — a
        // single-node recovery at small scale finishes far inside it.
        assert!(p.max_total_delay_ms() > 60_000);
    }
}
