//! The unified, seed-driven fault schedule.

use esdb_common::{NodeId, TimestampMs};
use esdb_consensus::{FaultPlan, LinkFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault. Events are applied at the first simulation tick
/// whose start time is `>=` the event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// The node dies: its queue is lost, its primary shards promote their
    /// replicas, its links partition.
    NodeCrash {
        /// Victim node.
        node: u32,
    },
    /// The node rejoins empty (diskless restart) and becomes a placement
    /// candidate again.
    NodeRestart {
        /// Restarting node.
        node: u32,
    },
    /// Service-rate degradation: the node's capacity is multiplied by
    /// `factor` (1.0 restores full speed).
    SlowNode {
        /// Affected node.
        node: u32,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Consensus link fault for one participant ([`LinkFault::Healthy`]
    /// clears it). Subsumes what `SimCluster::set_fault_plan` injected.
    Link {
        /// Affected participant.
        node: u32,
        /// The link behaviour.
        fault: LinkFault,
    },
}

impl ChaosEvent {
    /// The node the event targets.
    pub fn node(&self) -> u32 {
        match *self {
            ChaosEvent::NodeCrash { node }
            | ChaosEvent::NodeRestart { node }
            | ChaosEvent::SlowNode { node, .. }
            | ChaosEvent::Link { node, .. } => node,
        }
    }
}

/// Shape of a randomly generated failure scenario (see
/// [`ChaosSchedule::seeded`]).
#[derive(Debug, Clone, Copy)]
pub struct ChaosProfile {
    /// Nodes in the cluster (victims are drawn from `0..n_nodes`).
    pub n_nodes: u32,
    /// Events are placed in `[start_ms, end_ms)`.
    pub start_ms: TimestampMs,
    /// End of the placement window.
    pub end_ms: TimestampMs,
    /// Crash/restart pairs to generate.
    pub crashes: usize,
    /// Downtime range for each crash, ms.
    pub downtime_ms: (u64, u64),
    /// Slow-node windows to generate.
    pub slow_windows: usize,
    /// Degradation factor range for slow windows.
    pub slow_factor: (f64, f64),
    /// Consensus link-fault windows to generate.
    pub link_faults: usize,
}

impl ChaosProfile {
    /// A mild default: one crash, one slow window, one link fault.
    pub fn mild(n_nodes: u32, end_ms: TimestampMs) -> Self {
        ChaosProfile {
            n_nodes,
            start_ms: end_ms / 4,
            end_ms,
            crashes: 1,
            downtime_ms: (end_ms / 8, end_ms / 4),
            slow_windows: 1,
            slow_factor: (0.3, 0.8),
            link_faults: 1,
        }
    }
}

/// A time-ordered plan of fault events plus the base consensus fault plan,
/// the single source of truth for every fault class in a run.
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    /// `(at_ms, event)`, kept sorted by time (stable for equal times).
    events: Vec<(TimestampMs, ChaosEvent)>,
    /// Events before this index have already been taken.
    cursor: usize,
    /// Base consensus plan; `Link` events mutate it as they fire, and
    /// `SimCluster::set_fault_plan` writes it directly (the legacy shim).
    base_consensus: FaultPlan,
}

impl ChaosSchedule {
    /// An empty schedule with a healthy consensus network.
    pub fn new() -> Self {
        ChaosSchedule {
            events: Vec::new(),
            cursor: 0,
            base_consensus: FaultPlan::healthy(50),
        }
    }

    /// Builder: sets the base consensus plan.
    pub fn with_base_consensus(mut self, plan: FaultPlan) -> Self {
        self.base_consensus = plan;
        self
    }

    /// Builder: schedules `event` at `at_ms`.
    pub fn at(mut self, at_ms: TimestampMs, event: ChaosEvent) -> Self {
        self.push(at_ms, event);
        self
    }

    /// Schedules `event` at `at_ms`. Events already consumed by
    /// [`ChaosSchedule::take_due`] are unaffected.
    pub fn push(&mut self, at_ms: TimestampMs, event: ChaosEvent) {
        // Stable insertion position: after every event with time <= at_ms,
        // but never before the cursor (the past is immutable).
        let mut i = self.events.len();
        while i > self.cursor && self.events[i - 1].0 > at_ms {
            i -= 1;
        }
        self.events.insert(i, (at_ms, event));
    }

    /// Generates a random scenario from `seed`: each crash gets a matching
    /// restart after a profile-ranged downtime, each slow window and link
    /// fault gets a matching clear. Same seed + profile ⇒ same schedule.
    pub fn seeded(seed: u64, profile: &ChaosProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = ChaosSchedule::new();
        let window = profile.end_ms.saturating_sub(profile.start_ms).max(1);
        let at = |rng: &mut StdRng| profile.start_ms + rng.random_range(0..window);
        for _ in 0..profile.crashes {
            let node = rng.random_range(0..profile.n_nodes);
            let t = at(&mut rng);
            let (lo, hi) = profile.downtime_ms;
            let down = if hi > lo {
                rng.random_range(lo..hi)
            } else {
                lo
            };
            s.push(t, ChaosEvent::NodeCrash { node });
            s.push(t + down.max(1), ChaosEvent::NodeRestart { node });
        }
        for _ in 0..profile.slow_windows {
            let node = rng.random_range(0..profile.n_nodes);
            let t = at(&mut rng);
            let (lo, hi) = profile.slow_factor;
            let factor = lo + (hi - lo) * rng.random_range(0..1_000u32) as f64 / 1_000.0;
            s.push(t, ChaosEvent::SlowNode { node, factor });
            s.push(t + window / 4, ChaosEvent::SlowNode { node, factor: 1.0 });
        }
        for _ in 0..profile.link_faults {
            let node = rng.random_range(0..profile.n_nodes);
            let t = at(&mut rng);
            let fault = match rng.random_range(0..3u32) {
                0 => LinkFault::Delay(200),
                1 => LinkFault::DropPrepare,
                _ => LinkFault::DropCommit,
            };
            s.push(t, ChaosEvent::Link { node, fault });
            s.push(
                t + window / 4,
                ChaosEvent::Link {
                    node,
                    fault: LinkFault::Healthy,
                },
            );
        }
        s
    }

    /// Drains every event scheduled at or before `now`, in (time,
    /// insertion) order. `Link` events also update the base consensus plan
    /// so consumers that only read [`ChaosSchedule::consensus_plan`] see
    /// them too.
    pub fn take_due(&mut self, now: TimestampMs) -> Vec<ChaosEvent> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= now {
            let (_, ev) = self.events[self.cursor];
            if let ChaosEvent::Link { node, fault } = ev {
                self.base_consensus.set(NodeId(node), fault);
            }
            out.push(ev);
            self.cursor += 1;
        }
        out
    }

    /// The current base consensus plan (base latency + the link faults
    /// fired so far).
    pub fn consensus_plan(&self) -> &FaultPlan {
        &self.base_consensus
    }

    /// Overwrites the base consensus plan (the `set_fault_plan` shim).
    pub fn set_consensus_plan(&mut self, plan: FaultPlan) {
        self.base_consensus = plan;
    }

    /// Events not yet taken.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Every scheduled event (taken or not), in order.
    pub fn events(&self) -> &[(TimestampMs, ChaosEvent)] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut s = ChaosSchedule::new()
            .at(500, ChaosEvent::NodeRestart { node: 1 })
            .at(100, ChaosEvent::NodeCrash { node: 1 })
            .at(
                100,
                ChaosEvent::SlowNode {
                    node: 2,
                    factor: 0.5,
                },
            );
        assert_eq!(s.pending(), 3);
        let due = s.take_due(100);
        // Both t=100 events, crash first (insertion order at equal times).
        assert_eq!(due.len(), 2);
        assert_eq!(due[0], ChaosEvent::NodeCrash { node: 1 });
        assert!(matches!(due[1], ChaosEvent::SlowNode { node: 2, .. }));
        assert!(s.take_due(499).is_empty());
        assert_eq!(s.take_due(500).len(), 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn link_events_mutate_consensus_plan() {
        let mut s = ChaosSchedule::new()
            .at(
                100,
                ChaosEvent::Link {
                    node: 2,
                    fault: LinkFault::DropPrepare,
                },
            )
            .at(
                200,
                ChaosEvent::Link {
                    node: 2,
                    fault: LinkFault::Healthy,
                },
            );
        assert_eq!(s.consensus_plan().fault(NodeId(2)), LinkFault::Healthy);
        s.take_due(100);
        assert_eq!(s.consensus_plan().fault(NodeId(2)), LinkFault::DropPrepare);
        s.take_due(200);
        assert_eq!(s.consensus_plan().fault(NodeId(2)), LinkFault::Healthy);
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let p = ChaosProfile::mild(8, 60_000);
        let a = ChaosSchedule::seeded(42, &p);
        let b = ChaosSchedule::seeded(42, &p);
        assert_eq!(a.events(), b.events());
        let c = ChaosSchedule::seeded(43, &p);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
        // Crash/restart pairing: every crash has a later restart of the
        // same node.
        for &(t, ev) in a.events() {
            if let ChaosEvent::NodeCrash { node } = ev {
                assert!(a
                    .events()
                    .iter()
                    .any(|&(t2, e2)| t2 > t && e2 == ChaosEvent::NodeRestart { node }));
            }
        }
    }

    #[test]
    fn push_after_take_keeps_past_immutable() {
        let mut s = ChaosSchedule::new().at(100, ChaosEvent::NodeCrash { node: 0 });
        assert_eq!(s.take_due(100).len(), 1);
        // Scheduling "in the past" lands at the cursor and fires next take.
        s.push(50, ChaosEvent::NodeRestart { node: 0 });
        assert_eq!(s.take_due(100), vec![ChaosEvent::NodeRestart { node: 0 }]);
    }
}
