//! Deterministic torn-write injection for the translog.

use esdb_storage::WriteFault;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stateless 64-bit mixer (splitmix64 finalizer) — turns (seed, index)
/// into an offset without any global RNG state, so concurrent appends
/// can't perturb each other's draws.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A [`WriteFault`] that tears every `period`-th append at a seed-derived
/// byte offset strictly inside the frame — the short/torn write a crash
/// mid-`write(2)` produces. `period == 0` disables injection.
///
/// Deterministic: the k-th append under seed `s` always tears (or not) at
/// the same offset, regardless of wall-clock or thread timing.
#[derive(Debug)]
pub struct TornWriteInjector {
    seed: u64,
    period: u64,
    appends: AtomicU64,
}

impl TornWriteInjector {
    /// Tears one in `period` appends under `seed`.
    pub fn new(seed: u64, period: u64) -> Self {
        TornWriteInjector {
            seed,
            period,
            appends: AtomicU64::new(0),
        }
    }

    /// Appends observed so far.
    pub fn appends_seen(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }
}

impl WriteFault for TornWriteInjector {
    fn torn_write_len(&self, frame_len: usize) -> Option<usize> {
        let i = self.appends.fetch_add(1, Ordering::Relaxed);
        if self.period == 0 || (i + 1) % self.period != 0 {
            return None;
        }
        // Offset in [0, frame_len): 0 = nothing of the frame lands,
        // frame_len - 1 = one byte short. Never a full write.
        Some((mix(self.seed ^ i) % frame_len.max(1) as u64) as usize)
    }
}

/// A [`WriteFault`] that kills one deterministic *window* of appends:
/// every append whose global index falls in `[start, start + len)` tears
/// at offset 0 — nothing of the frame lands, the op errors out and is
/// never acknowledged — and appends outside the window land whole. This
/// is the disk's view of a node dying and restarting at a scheduled
/// instant, e.g. mid-way through a live migration's segment handoff:
/// the engine keeps running, a contiguous burst of writes fails loudly,
/// then service resumes.
///
/// `len == 0` disables injection. With `seeded`, the window start is
/// drawn deterministically from the seed, so one `u64` reproduces the
/// entire crash placement.
#[derive(Debug)]
pub struct CrashWindowInjector {
    start: u64,
    len: u64,
    appends: AtomicU64,
}

impl CrashWindowInjector {
    /// Fails appends `[start, start + len)`.
    pub fn new(start: u64, len: u64) -> Self {
        CrashWindowInjector {
            start,
            len,
            appends: AtomicU64::new(0),
        }
    }

    /// Draws the window start uniformly from `[lo, hi)` under `seed`.
    pub fn seeded(seed: u64, lo: u64, hi: u64, len: u64) -> Self {
        let span = hi.saturating_sub(lo).max(1);
        CrashWindowInjector::new(lo + mix(seed) % span, len)
    }

    /// The first append index the window kills.
    pub fn window_start(&self) -> u64 {
        self.start
    }

    /// Appends observed so far.
    pub fn appends_seen(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Whether the crash window has fully passed (every append in it was
    /// attempted and failed).
    pub fn window_elapsed(&self) -> bool {
        self.appends.load(Ordering::Relaxed) >= self.start + self.len
    }
}

impl WriteFault for CrashWindowInjector {
    fn torn_write_len(&self, _frame_len: usize) -> Option<usize> {
        let i = self.appends.fetch_add(1, Ordering::Relaxed);
        (self.len > 0 && i >= self.start && i < self.start + self.len).then_some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tears_exactly_every_period() {
        let inj = TornWriteInjector::new(7, 3);
        let torn: Vec<bool> = (0..9).map(|_| inj.torn_write_len(100).is_some()).collect();
        assert_eq!(
            torn,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(inj.appends_seen(), 9);
    }

    #[test]
    fn offsets_are_seed_deterministic_and_short() {
        let a = TornWriteInjector::new(42, 1);
        let b = TornWriteInjector::new(42, 1);
        for _ in 0..50 {
            let (x, y) = (a.torn_write_len(64), b.torn_write_len(64));
            assert_eq!(x, y);
            assert!(x.expect("period 1 always tears") < 64);
        }
        let c = TornWriteInjector::new(43, 1);
        let first_a = TornWriteInjector::new(42, 1).torn_write_len(64);
        assert_ne!(first_a, c.torn_write_len(64), "seed changes the offsets");
    }

    #[test]
    fn zero_period_never_tears() {
        let inj = TornWriteInjector::new(1, 0);
        assert!((0..100).all(|_| inj.torn_write_len(32).is_none()));
    }

    #[test]
    fn crash_window_kills_exactly_its_range() {
        let inj = CrashWindowInjector::new(3, 2);
        let torn: Vec<bool> = (0..7).map(|_| inj.torn_write_len(100).is_some()).collect();
        assert_eq!(torn, vec![false, false, false, true, true, false, false]);
        assert!(inj.window_elapsed());
        // Window tears leave nothing of the frame on disk.
        let inj = CrashWindowInjector::new(0, 1);
        assert_eq!(inj.torn_write_len(64), Some(0));
    }

    #[test]
    fn seeded_crash_window_is_deterministic() {
        let a = CrashWindowInjector::seeded(99, 100, 200, 5);
        let b = CrashWindowInjector::seeded(99, 100, 200, 5);
        assert_eq!(a.window_start(), b.window_start());
        assert!((100..200).contains(&a.window_start()));
        let c = CrashWindowInjector::seeded(100, 100, 200, 5);
        assert_ne!(a.window_start(), c.window_start(), "seed moves the window");
    }

    #[test]
    fn zero_len_crash_window_never_fires() {
        let inj = CrashWindowInjector::new(0, 0);
        assert!((0..50).all(|_| inj.torn_write_len(32).is_none()));
    }
}
