//! Node-health tracking, promotion bookkeeping and recovery telemetry.

use crate::retry::RetryPolicy;
use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{NodeId, TimestampMs};
use esdb_consensus::{FaultPlan, LinkFault};
use esdb_telemetry::{
    Counter, EventKind, Gauge, Histogram, Journal, Labels, MetricsRegistry, NO_PARENT,
};
use std::sync::Arc;

/// Liveness of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Serving.
    Up,
    /// Crashed at `since`; not serving, links partitioned.
    Down {
        /// Crash time, ms.
        since: TimestampMs,
    },
}

/// Failover knobs consumed by the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverConfig {
    /// Work units charged per replayed translog op during promotion
    /// (translog replay re-indexes, but into a warm empty engine — the
    /// physical-replication experiments price that below a primary write).
    pub replay_cost: f64,
    /// Simulated flush cadence: each interval rolls the translog
    /// generation, bounding the tail a promotion must replay.
    pub flush_interval_ms: u64,
    /// Backoff for writes hitting a dead or in-transition shard.
    pub retry: RetryPolicy,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            replay_cost: 0.5,
            flush_interval_ms: 5_000,
            retry: RetryPolicy::default(),
        }
    }
}

/// Tracks node health and in-flight shard promotions, and owns the
/// recovery telemetry series:
///
/// * `esdb_sim_node_up{node}` — liveness gauge (1/0),
/// * `esdb_failover_promotion_ms` — crash → replay-complete latency per
///   promoted shard (the write-unavailability window of that shard),
/// * `esdb_sim_node_unavailability_ms` — crash → restart per node
///   (still-down nodes are closed out by [`FailoverController::finish`]),
/// * `esdb_failover_replayed_ops_total` — translog ops replayed by
///   promotions,
/// * `esdb_failover_resync_ops_total` — ops replayed to rebuild replicas
///   on surviving nodes,
/// * `esdb_failover_promotions_total`, `esdb_sim_node_crashes_total`,
///   `esdb_sim_node_restarts_total`.
pub struct FailoverController {
    health: Vec<NodeHealth>,
    slow: Vec<f64>,
    /// shard index → (crash time of the primary it is recovering from,
    /// journal seq of its `promotion_started` event).
    in_transition: FastMap<u32, (TimestampMs, u64)>,
    /// Flight-recorder journal; `None` records metrics only. The crash →
    /// promotion → replay → recovery chain is causally linked through
    /// the tracked sequence numbers below.
    journal: Option<Arc<Journal>>,
    /// node → journal seq of its latest `node_crashed` event.
    crash_seq: FastMap<u32, u64>,
    /// Journal seq of the latest `node_restarted` event (parents
    /// subsequent replica resyncs).
    last_restart_seq: u64,
    node_up: Vec<Arc<Gauge>>,
    promotion_ms: Arc<Histogram>,
    node_unavail_ms: Arc<Histogram>,
    replayed_ops: Arc<Counter>,
    resync_ops: Arc<Counter>,
    promotions: Arc<Counter>,
    crashes: Arc<Counter>,
    restarts: Arc<Counter>,
}

impl FailoverController {
    /// A controller for `n_nodes` nodes, all up, recording into
    /// `registry`.
    pub fn new(n_nodes: u32, registry: &Arc<MetricsRegistry>) -> Self {
        let node_up: Vec<Arc<Gauge>> = (0..n_nodes)
            .map(|i| {
                let g = registry.gauge("esdb_sim_node_up", Labels::node(i));
                g.set(1);
                g
            })
            .collect();
        FailoverController {
            health: vec![NodeHealth::Up; n_nodes as usize],
            slow: vec![1.0; n_nodes as usize],
            in_transition: fast_map(),
            journal: None,
            crash_seq: fast_map(),
            last_restart_seq: NO_PARENT,
            node_up,
            promotion_ms: registry.histogram("esdb_failover_promotion_ms", Labels::none()),
            node_unavail_ms: registry.histogram("esdb_sim_node_unavailability_ms", Labels::none()),
            replayed_ops: registry.counter("esdb_failover_replayed_ops_total", Labels::none()),
            resync_ops: registry.counter("esdb_failover_resync_ops_total", Labels::none()),
            promotions: registry.counter("esdb_failover_promotions_total", Labels::none()),
            crashes: registry.counter("esdb_sim_node_crashes_total", Labels::none()),
            restarts: registry.counter("esdb_sim_node_restarts_total", Labels::none()),
        }
    }

    /// Attaches the flight-recorder journal: crash/restart/promotion/
    /// replay events are emitted with causal `parent_seq` links.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Emits a journal event (no-op without a journal); returns its seq.
    fn emit(&self, kind: EventKind, labels: Labels, parent_seq: u64) -> u64 {
        self.journal
            .as_ref()
            .map_or(NO_PARENT, |j| j.emit(kind, labels, parent_seq))
    }

    /// Whether `node` is serving.
    pub fn is_up(&self, node: u32) -> bool {
        matches!(self.health[node as usize], NodeHealth::Up)
    }

    /// Health of `node`.
    pub fn health(&self, node: u32) -> NodeHealth {
        self.health[node as usize]
    }

    /// Serving nodes.
    pub fn up_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| matches!(h, NodeHealth::Up))
            .count()
    }

    /// Current capacity multiplier of `node`.
    pub fn slow_factor(&self, node: u32) -> f64 {
        self.slow[node as usize]
    }

    /// Sets the capacity multiplier of `node` (clamped to `(0, 1]`).
    pub fn set_slow_factor(&mut self, node: u32, factor: f64) {
        self.slow[node as usize] = factor.clamp(0.01, 1.0);
    }

    /// Marks `node` down at `now`. Returns `false` (no-op) if it already
    /// was.
    pub fn on_crash(&mut self, node: u32, now: TimestampMs) -> bool {
        self.on_crash_caused_by(node, now, NO_PARENT)
    }

    /// [`FailoverController::on_crash`] with a causal parent — typically
    /// the `chaos_fault_injected` journal event that fired the crash.
    pub fn on_crash_caused_by(&mut self, node: u32, now: TimestampMs, cause_seq: u64) -> bool {
        if !self.is_up(node) {
            return false;
        }
        self.health[node as usize] = NodeHealth::Down { since: now };
        self.node_up[node as usize].set(0);
        self.crashes.add(1);
        let seq = self.emit(
            EventKind::NodeCrashed { node },
            Labels::node(node),
            cause_seq,
        );
        self.crash_seq.insert(node, seq);
        true
    }

    /// Marks `node` up at `now`, recording its unavailability window.
    /// Returns the downtime, or `None` (no-op) if it wasn't down.
    pub fn on_restart(&mut self, node: u32, now: TimestampMs) -> Option<u64> {
        let NodeHealth::Down { since } = self.health[node as usize] else {
            return None;
        };
        self.health[node as usize] = NodeHealth::Up;
        self.node_up[node as usize].set(1);
        self.restarts.add(1);
        let downtime = now.saturating_sub(since);
        self.node_unavail_ms.record(downtime);
        let parent = self.crash_seq.get(&node).copied().unwrap_or(NO_PARENT);
        self.last_restart_seq = self.emit(
            EventKind::NodeRestarted {
                node,
                downtime_ms: downtime,
            },
            Labels::node(node),
            parent,
        );
        Some(downtime)
    }

    /// Starts tracking a promotion for `shard` whose primary
    /// `crashed_node` crashed at `crashed_at`.
    pub fn begin_promotion(&mut self, shard: u32, crashed_node: u32, crashed_at: TimestampMs) {
        let parent = self
            .crash_seq
            .get(&crashed_node)
            .copied()
            .unwrap_or(NO_PARENT);
        let seq = self.emit(
            EventKind::PromotionStarted {
                shard,
                crashed_node,
            },
            Labels::shard(shard),
            parent,
        );
        self.in_transition.insert(shard, (crashed_at, seq));
    }

    /// Whether `shard` is mid-promotion (writes must retry).
    pub fn is_in_transition(&self, shard: u32) -> bool {
        self.in_transition.contains_key(&shard)
    }

    /// Shards currently mid-promotion.
    pub fn transitions_in_flight(&self) -> usize {
        self.in_transition.len()
    }

    /// Completes the promotion of `shard` at `now` after replaying
    /// `replayed` translog ops; returns the promotion latency.
    pub fn complete_promotion(
        &mut self,
        shard: u32,
        now: TimestampMs,
        replayed: u64,
    ) -> Option<u64> {
        let (crashed_at, start_seq) = self.in_transition.remove(&shard)?;
        let latency = now.saturating_sub(crashed_at);
        self.promotion_ms.record(latency);
        self.replayed_ops.add(replayed);
        self.promotions.add(1);
        let replay_seq = self.emit(
            EventKind::TranslogReplayed {
                shard,
                ops: replayed,
            },
            Labels::shard(shard),
            start_seq,
        );
        self.emit(
            EventKind::PromotionCompleted {
                shard,
                replayed_ops: replayed,
                latency_ms: latency,
            },
            Labels::shard(shard),
            replay_seq,
        );
        Some(latency)
    }

    /// Accounts ops replayed to rebuild a replica on a surviving node,
    /// parented to the latest restart.
    pub fn record_resync(&mut self, ops: u64) {
        let parent = self.last_restart_seq;
        self.record_resync_caused_by(ops, parent);
    }

    /// [`FailoverController::record_resync`] with an explicit causal
    /// parent — the crash or restart event that triggered the rebuild.
    pub fn record_resync_caused_by(&mut self, ops: u64, cause_seq: u64) {
        self.resync_ops.add(ops);
        self.emit(
            EventKind::ReplicaResynced { ops },
            Labels::none(),
            cause_seq,
        );
    }

    /// Journal seq of `node`'s `node_crashed` event ([`NO_PARENT`] if it
    /// never crashed or the journal is disabled).
    pub fn crash_seq_of(&self, node: u32) -> u64 {
        self.crash_seq.get(&node).copied().unwrap_or(NO_PARENT)
    }

    /// Journal seq of the latest `node_restarted` event.
    pub fn last_restart_seq(&self) -> u64 {
        self.last_restart_seq
    }

    /// The effective consensus plan: `base` with every down node fully
    /// partitioned (a dead participant can't ack prepares or receive
    /// commits).
    pub fn consensus_overlay(&self, base: &FaultPlan) -> FaultPlan {
        let mut plan = base.clone();
        for (i, h) in self.health.iter().enumerate() {
            if matches!(h, NodeHealth::Down { .. }) {
                plan.set(NodeId(i as u32), LinkFault::Partitioned);
            }
        }
        plan
    }

    /// Closes out unavailability windows still open at end of run (nodes
    /// that never restarted) so the histogram reflects them.
    pub fn finish(&mut self, now: TimestampMs) {
        for h in &mut self.health {
            if let NodeHealth::Down { since } = *h {
                self.node_unavail_ms.record(now.saturating_sub(since));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(n: u32) -> (FailoverController, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        (FailoverController::new(n, &registry), registry)
    }

    #[test]
    fn crash_restart_cycle_tracks_health_and_gauges() {
        let (mut c, reg) = controller(3);
        assert!(c.is_up(1));
        assert_eq!(reg.gauge("esdb_sim_node_up", Labels::node(1)).get(), 1);
        assert!(c.on_crash(1, 1_000));
        assert!(!c.on_crash(1, 1_100), "double crash is a no-op");
        assert!(!c.is_up(1));
        assert_eq!(c.up_count(), 2);
        assert_eq!(reg.gauge("esdb_sim_node_up", Labels::node(1)).get(), 0);
        assert_eq!(c.on_restart(1, 4_000), Some(3_000));
        assert_eq!(c.on_restart(1, 4_100), None, "double restart is a no-op");
        assert!(c.is_up(1));
        assert_eq!(reg.gauge("esdb_sim_node_up", Labels::node(1)).get(), 1);
        assert_eq!(
            reg.counter_value("esdb_sim_node_crashes_total", Labels::none()),
            1
        );
        assert_eq!(
            reg.counter_value("esdb_sim_node_restarts_total", Labels::none()),
            1
        );
    }

    #[test]
    fn promotion_lifecycle_records_latency_and_ops() {
        let (mut c, reg) = controller(2);
        c.on_crash(0, 2_000);
        c.begin_promotion(7, 0, 2_000);
        assert!(c.is_in_transition(7));
        assert_eq!(c.transitions_in_flight(), 1);
        assert_eq!(c.complete_promotion(7, 2_600, 40), Some(600));
        assert!(!c.is_in_transition(7));
        assert_eq!(c.complete_promotion(7, 2_700, 1), None, "already done");
        assert_eq!(
            reg.counter_value("esdb_failover_replayed_ops_total", Labels::none()),
            40
        );
        assert_eq!(
            reg.counter_value("esdb_failover_promotions_total", Labels::none()),
            1
        );
        let h = reg.histogram("esdb_failover_promotion_ms", Labels::none());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn overlay_partitions_down_nodes_only() {
        let (mut c, _reg) = controller(3);
        c.on_crash(2, 500);
        let plan = c.consensus_overlay(&FaultPlan::healthy(20));
        assert_eq!(plan.fault(NodeId(0)), LinkFault::Healthy);
        assert_eq!(plan.fault(NodeId(2)), LinkFault::Partitioned);
        // Base faults survive the overlay.
        let mut base = FaultPlan::healthy(20);
        base.set(NodeId(1), LinkFault::Delay(100));
        let plan = c.consensus_overlay(&base);
        assert_eq!(plan.fault(NodeId(1)), LinkFault::Delay(100));
    }

    #[test]
    fn journal_chain_links_crash_to_recovery() {
        use esdb_telemetry::unresolved_parents;
        let registry = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(Journal::new(64));
        let mut c = FailoverController::new(2, &registry).with_journal(Arc::clone(&journal));
        let fault = journal.emit(
            EventKind::ChaosFaultInjected {
                fault: "node_crash",
                node: 0,
            },
            Labels::node(0),
            NO_PARENT,
        );
        c.on_crash_caused_by(0, 1_000, fault);
        c.begin_promotion(3, 0, 1_000);
        c.complete_promotion(3, 1_500, 25);
        c.on_restart(0, 2_000);
        c.record_resync(10);
        let events = journal.snapshot();
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec![
                "chaos_fault_injected",
                "node_crashed",
                "promotion_started",
                "translog_replayed",
                "promotion_completed",
                "node_restarted",
                "replica_resynced",
            ]
        );
        // fault → crash → promotion → replay → completion is one chain;
        // the restart parents onto the crash and the resync onto the
        // restart.
        for w in events.windows(2).take(4) {
            assert_eq!(w[1].parent_seq, w[0].seq, "chain break at {:?}", w[1]);
        }
        assert_eq!(events[5].parent_seq, events[1].seq, "restart ← crash");
        assert_eq!(events[6].parent_seq, events[5].seq, "resync ← restart");
        assert!(unresolved_parents(&events, journal.evicted_max()).is_empty());
    }

    #[test]
    fn finish_closes_open_windows() {
        let (mut c, reg) = controller(2);
        c.on_crash(0, 1_000);
        c.finish(9_000);
        let h = reg.histogram("esdb_sim_node_unavailability_ms", Labels::none());
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().max(), 8_000);
    }
}
