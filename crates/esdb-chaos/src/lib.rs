//! Deterministic fault injection and failover control.
//!
//! The paper's availability story (§3.3/§5.2: translog replay on crash,
//! replica promotion when a worker dies, physical replication keeping the
//! replica promotable in real time) needs a way to be *driven* and
//! *measured*. This crate supplies the FoundationDB-style simulation
//! toolkit for that:
//!
//! * [`schedule::ChaosSchedule`] — a seed-driven, time-ordered plan of
//!   fault events (node crash/restart, slow-node degradation, consensus
//!   link faults). One schedule drives every fault class, so a single
//!   seed reproduces an entire failure scenario byte-for-byte.
//! * [`injector::TornWriteInjector`] — a deterministic implementation of
//!   the [`esdb_storage::WriteFault`] hook that tears translog appends at
//!   seed-derived byte offsets (the crash-mid-`write(2)` disk state).
//! * [`retry::RetryPolicy`] — bounded exponential backoff for writes that
//!   hit a dead or in-transition shard.
//! * [`controller::FailoverController`] — tracks node health and shard
//!   promotion state, and threads the recovery telemetry
//!   (`esdb_sim_node_up`, promotion latency, replayed-op counts,
//!   unavailability windows) through `esdb-telemetry`.
//!
//! Determinism rules: every random choice flows from a caller-supplied
//! `u64` seed through `StdRng`; event application order is (time,
//! insertion order); no wall-clock reads anywhere. The same seed and the
//! same simulated workload therefore produce identical fault timelines,
//! identical recovery metrics and identical bench JSON.

pub mod controller;
pub mod injector;
pub mod retry;
pub mod schedule;

pub use controller::{FailoverConfig, FailoverController, NodeHealth};
pub use injector::{CrashWindowInjector, TornWriteInjector};
pub use retry::RetryPolicy;
pub use schedule::{ChaosEvent, ChaosProfile, ChaosSchedule};
