//! The embedded ESDB instance.

use esdb_balancer::{BalancerConfig, LoadBalancer, WorkloadMonitor};
use esdb_common::{
    Clock, EsdbError, NodeId, RecordId, Result, ShardId, SharedClock, TenantId, TimestampMs,
};
use esdb_doc::{CollectionSchema, Document, WriteOp};
use esdb_index::Segment;
use esdb_query::aggregate::merge_results;
use esdb_query::{execute_on_segments, parse_sql, translate, Expr, Query, QueryOptions, QueryRows};
use esdb_routing::{
    DoubleHashRouting, DynamicRouting, HashRouting, RoutingPolicy, RuleList, ShardSpan,
};
use esdb_storage::{ShardConfig, ShardEngine};
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::Arc;

/// Which routing policy the instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Plain hashing (single shard per tenant).
    Hashing,
    /// Static double hashing with offset `s`.
    DoubleHashing(u32),
    /// Dynamic secondary hashing with the load balancer (the ESDB default).
    Dynamic,
}

/// Configuration for an embedded instance.
#[derive(Debug, Clone)]
pub struct EsdbConfig {
    /// Root data directory (one subdirectory per shard).
    pub data_dir: PathBuf,
    /// Shard count.
    pub n_shards: u32,
    /// Routing policy.
    pub routing: RoutingMode,
    /// Run the load balancer every this many writes (0 = manual only).
    pub balance_every_writes: u64,
    /// Balancer tuning (hotspot threshold, offset policy).
    pub balancer: BalancerConfig,
    /// Auto-refresh shards whose buffer reaches this many docs (0 = manual
    /// refresh).
    pub refresh_buffer_docs: usize,
}

impl EsdbConfig {
    /// Sensible embedded defaults: 16 shards, dynamic routing, balancing
    /// every 5000 writes.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        let n_shards = 16;
        EsdbConfig {
            data_dir: data_dir.into(),
            n_shards,
            routing: RoutingMode::Dynamic,
            balance_every_writes: 5_000,
            balancer: BalancerConfig::new(n_shards, n_shards.div_ceil(4).max(1)),
            refresh_buffer_docs: 0,
        }
    }

    /// Overrides the shard count (also rescales the balancer).
    pub fn shards(mut self, n: u32) -> Self {
        self.n_shards = n;
        self.balancer = BalancerConfig::new(n, n.div_ceil(4).max(1));
        self
    }

    /// Overrides the routing mode.
    pub fn routing(mut self, mode: RoutingMode) -> Self {
        self.routing = mode;
        self
    }
}

enum Router {
    Hash(HashRouting),
    Double(DoubleHashRouting),
    Dynamic(DynamicRouting),
}

impl Router {
    fn route(&self, k1: TenantId, k2: RecordId, tc: TimestampMs) -> ShardId {
        match self {
            Router::Hash(r) => r.route_write(k1, k2, tc),
            Router::Double(r) => r.route_write(k1, k2, tc),
            Router::Dynamic(r) => r.route_write(k1, k2, tc),
        }
    }

    fn span(&self, k1: TenantId, now: TimestampMs) -> ShardSpan {
        match self {
            Router::Hash(r) => r.read_span(k1, now),
            Router::Double(r) => r.read_span(k1, now),
            Router::Dynamic(r) => r.read_span(k1, now),
        }
    }
}

/// Instance-level statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EsdbStats {
    /// Searchable documents across shards.
    pub live_docs: usize,
    /// Buffered (not yet searchable) documents.
    pub buffered_docs: usize,
    /// Total segments.
    pub segments: usize,
    /// Approximate bytes.
    pub size_bytes: usize,
    /// Committed secondary hashing rules.
    pub rules: usize,
    /// Writes applied.
    pub writes: u64,
    /// Queries executed.
    pub queries: u64,
}

/// An embedded ESDB database.
pub struct Esdb {
    schema: CollectionSchema,
    config: EsdbConfig,
    shards: Vec<ShardEngine>,
    rules: Arc<RwLock<RuleList>>,
    router: Router,
    monitor: WorkloadMonitor,
    balancer: LoadBalancer,
    clock: SharedClock,
    writes_since_balance: u64,
    writes_total: u64,
    queries_total: u64,
}

impl Esdb {
    /// Opens (or recovers) an instance rooted at `config.data_dir`.
    pub fn open(schema: CollectionSchema, config: EsdbConfig) -> Result<Self> {
        Self::open_with_clock(schema, config, SharedClock::real())
    }

    /// Opens with an explicit clock (tests use a manual clock so rule
    /// effective times are deterministic).
    pub fn open_with_clock(
        schema: CollectionSchema,
        config: EsdbConfig,
        clock: SharedClock,
    ) -> Result<Self> {
        if config.n_shards == 0 {
            return Err(EsdbError::Config("n_shards must be > 0".into()));
        }
        let mut shards = Vec::with_capacity(config.n_shards as usize);
        for s in 0..config.n_shards {
            let mut sc = ShardConfig::new(config.data_dir.join(format!("shard-{s:04}")));
            sc.refresh_buffer_docs = config.refresh_buffer_docs;
            shards.push(ShardEngine::open(schema.clone(), sc)?);
        }
        let rules = Arc::new(RwLock::new(RuleList::new()));
        let router = match config.routing {
            RoutingMode::Hashing => Router::Hash(HashRouting::new(config.n_shards)),
            RoutingMode::DoubleHashing(s) => {
                Router::Double(DoubleHashRouting::new(config.n_shards, s))
            }
            RoutingMode::Dynamic => {
                Router::Dynamic(DynamicRouting::with_rules(config.n_shards, rules.clone()))
            }
        };
        let balancer = LoadBalancer::new(config.balancer);
        Ok(Esdb {
            schema,
            shards,
            rules,
            router,
            monitor: WorkloadMonitor::new(),
            balancer,
            clock,
            writes_since_balance: 0,
            writes_total: 0,
            queries_total: 0,
            config,
        })
    }

    /// The collection schema.
    pub fn schema(&self) -> &CollectionSchema {
        &self.schema
    }

    /// Inserts a document, returning the shard it was routed to.
    pub fn insert(&mut self, doc: Document) -> Result<ShardId> {
        self.write(WriteOp::insert(doc))
    }

    /// Updates an existing record (routing triple must match the original
    /// creation time, §4.2).
    pub fn update(&mut self, doc: Document) -> Result<ShardId> {
        self.write(WriteOp::update(doc))
    }

    /// Deletes a record by routing triple.
    pub fn delete(
        &mut self,
        tenant: TenantId,
        record: RecordId,
        created_at: TimestampMs,
    ) -> Result<ShardId> {
        self.write(WriteOp::delete(tenant, record, created_at))
    }

    /// Flushes a [`crate::WriteBatcher`]'s coalesced operations into the
    /// database (the write-client workload-batching path, §3.1). Returns
    /// how many operations were actually applied.
    pub fn write_batch(&mut self, batcher: &mut crate::WriteBatcher) -> Result<usize> {
        let ops = batcher.flush();
        let n = ops.len();
        for op in ops {
            self.write(op)?;
        }
        Ok(n)
    }

    /// Applies a raw write operation.
    pub fn write(&mut self, op: WriteOp) -> Result<ShardId> {
        let (tenant, record, created_at) = op.routing();
        let shard = self.router.route(tenant, record, created_at);
        let bytes = op.doc.approx_size() as u64;
        self.shards[shard.index()].apply(&op)?;
        self.monitor
            .record_write(tenant, shard, NodeId(shard.0 % 4), bytes);
        self.writes_total += 1;
        self.writes_since_balance += 1;
        if self.config.balance_every_writes > 0
            && self.writes_since_balance >= self.config.balance_every_writes
        {
            self.rebalance();
        }
        Ok(shard)
    }

    /// Runs one balancing pass now (Algorithm 1 runtime phase): detect
    /// hotspots in the monitor window, commit grow-rules effective
    /// immediately for *future* records.
    pub fn rebalance(&mut self) -> usize {
        self.writes_since_balance = 0;
        if !matches!(self.config.routing, RoutingMode::Dynamic) {
            return 0;
        }
        let period = self.monitor.take_period();
        let proposals = self.balancer.on_period(&period);
        let committed = proposals.len();
        if committed > 0 {
            let t = self.clock.now();
            let mut rules = self.rules.write();
            LoadBalancer::commit_direct(&proposals, &mut rules, t);
        }
        committed
    }

    /// Makes all buffered writes searchable (near-real-time refresh).
    pub fn refresh(&mut self) {
        for s in &mut self.shards {
            s.refresh();
        }
    }

    /// Durably flushes all shards (segments + commit points, translog
    /// roll).
    pub fn flush(&mut self) -> Result<()> {
        for s in &mut self.shards {
            s.flush()?;
        }
        Ok(())
    }

    /// Runs the merge policy on every shard; returns merges performed.
    pub fn merge(&mut self) -> usize {
        self.shards
            .iter_mut()
            .filter_map(|s| s.maybe_merge())
            .count()
    }

    /// Executes a SQL query (parse → Xdriver4ES translate → route to the
    /// tenant's shard span → optimize → execute → aggregate).
    pub fn query(&mut self, sql: &str) -> Result<QueryRows> {
        self.query_opts(sql, QueryOptions::default())
    }

    /// Executes SQL with explicit options (the Fig. 17 harness turns the
    /// optimizer off through this).
    pub fn query_opts(&mut self, sql: &str, opts: QueryOptions) -> Result<QueryRows> {
        let query = translate(parse_sql(sql)?);
        if query.table != self.schema.name {
            return Err(EsdbError::UnknownCollection(query.table));
        }
        self.queries_total += 1;
        // Record sub-attribute usage for frequency-based indexing.
        record_attr_usage(&query.filter, &mut self.shards);
        let span = self.route_query(&query);
        let shard_results: Vec<QueryRows> = span
            .iter()
            .map(|shard| {
                let engine = &self.shards[shard.index()];
                let segs: Vec<&Segment> = engine.segments().iter().collect();
                execute_on_segments(&query, &self.schema, &segs, opts)
            })
            .collect();
        Ok(merge_results(
            shard_results,
            query.order_by.as_ref(),
            query.limit,
        ))
    }

    /// The shard span a query will fan out to: the tenant's span when the
    /// filter pins `tenant_id`, otherwise every shard.
    fn route_query(&self, query: &Query) -> ShardSpan {
        match extract_tenant(&query.filter) {
            Some(tenant) => self.router.span(tenant, self.clock.now()),
            None => ShardSpan::new(0, self.config.n_shards, self.config.n_shards),
        }
    }

    /// The read span for a tenant right now.
    pub fn read_span(&self, tenant: TenantId) -> ShardSpan {
        self.router.span(tenant, self.clock.now())
    }

    /// Snapshot of committed rules (for inspection).
    pub fn rule_count(&self) -> usize {
        self.rules.read().len()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> EsdbStats {
        let mut s = EsdbStats {
            rules: self.rule_count(),
            writes: self.writes_total,
            queries: self.queries_total,
            ..EsdbStats::default()
        };
        for sh in &self.shards {
            let st = sh.stats();
            s.live_docs += st.live_docs;
            s.buffered_docs += st.buffered_docs;
            s.segments += st.segments;
            s.size_bytes += st.size_bytes;
        }
        s
    }

    /// Per-shard live-doc counts (for balance inspection).
    pub fn shard_doc_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.stats().live_docs).collect()
    }
}

/// Finds a `tenant_id = <n>` equality that holds for *every* match of the
/// filter (top level or present in every OR branch).
fn extract_tenant(e: &Expr) -> Option<TenantId> {
    match e {
        Expr::Eq(col, v) if col == "tenant_id" => v.as_int().map(|i| TenantId(i as u64)),
        Expr::And(cs) => cs.iter().find_map(extract_tenant),
        Expr::Or(cs) => {
            let tenants: Vec<Option<TenantId>> = cs.iter().map(extract_tenant).collect();
            let first = tenants.first().copied().flatten()?;
            tenants.iter().all(|t| *t == Some(first)).then_some(first)
        }
        _ => None,
    }
}

fn record_attr_usage(e: &Expr, shards: &mut [ShardEngine]) {
    fn collect<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
        match e {
            Expr::AttrEq(name, _) => out.push(name),
            Expr::And(cs) | Expr::Or(cs) => {
                for c in cs {
                    collect(c, out);
                }
            }
            _ => {}
        }
    }
    let mut names = Vec::new();
    collect(e, &mut names);
    if names.is_empty() {
        return;
    }
    for s in shards.iter_mut() {
        for n in &names {
            s.attr_tracker_mut().record(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::ManualClock;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-core-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn open(name: &str, cfg: impl FnOnce(EsdbConfig) -> EsdbConfig) -> (Esdb, Arc<ManualClock>) {
        let (clock, driver) = SharedClock::manual(1_000_000);
        let db = Esdb::open_with_clock(
            CollectionSchema::transaction_logs(),
            cfg(EsdbConfig::new(tmpdir(name))),
            clock,
        )
        .unwrap();
        (db, driver)
    }

    fn doc(tenant: u64, record: u64, at: TimestampMs) -> Document {
        Document::builder(TenantId(tenant), RecordId(record), at)
            .field("status", (record % 2) as i64)
            .field("group", (record % 5) as i64)
            .field("auction_title", format!("item number {record}"))
            .build()
    }

    #[test]
    fn insert_refresh_query_roundtrip() {
        let (mut db, _) = open("roundtrip", |c| c);
        for r in 0..50 {
            db.insert(doc(10086, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086 AND status = 1")
            .unwrap();
        assert_eq!(rows.docs.len(), 25);
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086 ORDER BY created_time DESC LIMIT 3")
            .unwrap();
        assert_eq!(rows.docs.len(), 3);
        assert_eq!(rows.docs[0].record_id, RecordId(49));
    }

    #[test]
    fn unknown_table_rejected() {
        let (mut db, _) = open("badtable", |c| c);
        assert!(matches!(
            db.query("SELECT * FROM nope"),
            Err(EsdbError::UnknownCollection(_))
        ));
    }

    #[test]
    fn cold_tenant_stays_on_one_shard() {
        let (mut db, _) = open("cold", |c| c);
        let mut shards = std::collections::HashSet::new();
        for r in 0..20 {
            shards.insert(db.insert(doc(5, r, 2_000 + r)).unwrap());
        }
        assert_eq!(shards.len(), 1, "cold tenant must not spread");
        assert_eq!(db.read_span(TenantId(5)).len, 1);
    }

    #[test]
    fn hot_tenant_spreads_after_rebalance_and_stays_readable() {
        let (mut db, driver) = open("hot", |c| c.shards(16));
        // Hot tenant dominates the monitor window.
        for r in 0..3_000u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        let span = db.read_span(TenantId(777));
        assert!(span.len > 1, "hot tenant should spread, span {span:?}");
        // New writes spread across the span.
        let mut new_shards = std::collections::HashSet::new();
        for r in 10_000..10_200u64 {
            let t = driver.now();
            new_shards.insert(db.insert(doc(777, r, t)).unwrap());
            driver.advance(1);
        }
        assert!(new_shards.len() > 1, "writes should hit multiple shards");
        db.refresh();
        // Read-your-writes: all 2700 old + 200 new rows visible.
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777")
            .unwrap();
        assert_eq!(rows.docs.len(), 2_700 + 200);
    }

    #[test]
    fn updates_route_to_original_shard_after_rule_change() {
        let (mut db, driver) = open("update-after-rule", |c| c.shards(16));
        let created = driver.now() - 1;
        let shard_before = db.insert(doc(42, 1, created)).unwrap();
        // Force a rule for tenant 42 by making it hot.
        for r in 100..2_100u64 {
            db.insert(doc(42, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        assert!(db.read_span(TenantId(42)).len > 1);
        // Update the original record: same routing triple → same shard.
        let shard_after = db
            .update(
                Document::builder(TenantId(42), RecordId(1), created)
                    .field("status", 9i64)
                    .build(),
            )
            .unwrap();
        assert_eq!(
            shard_before, shard_after,
            "update must follow the original rule"
        );
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 42 AND status = 9")
            .unwrap();
        assert_eq!(rows.docs.len(), 1);
        assert_eq!(rows.docs[0].record_id, RecordId(1));
    }

    #[test]
    fn delete_across_rule_change() {
        let (mut db, driver) = open("delete-after-rule", |c| c.shards(16));
        let created = driver.now() - 1;
        db.insert(doc(42, 1, created)).unwrap();
        for r in 100..2_100u64 {
            db.insert(doc(42, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        db.delete(TenantId(42), RecordId(1), created).unwrap();
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 42 AND record_id = 1")
            .unwrap();
        assert!(rows.docs.is_empty(), "deleted record must not resurface");
    }

    #[test]
    fn queries_without_tenant_fan_out_everywhere() {
        let (mut db, _) = open("fanout", |c| c.shards(8));
        for t in 0..20u64 {
            db.insert(doc(t, t, 3_000 + t)).unwrap();
        }
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE status = 0")
            .unwrap();
        assert_eq!(rows.docs.len(), 10);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = tmpdir("persist");
        {
            let mut db = Esdb::open(
                CollectionSchema::transaction_logs(),
                EsdbConfig::new(&dir).shards(4),
            )
            .unwrap();
            for r in 0..40 {
                db.insert(doc(9, r, 5_000 + r)).unwrap();
            }
            db.flush().unwrap();
        }
        let mut db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(4),
        )
        .unwrap();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 9")
            .unwrap();
        assert_eq!(rows.docs.len(), 40, "all rows recovered after reopen");
    }

    #[test]
    fn hashing_and_double_modes_work() {
        let (mut db, _) = open("hashmode", |c| c.routing(RoutingMode::Hashing).shards(8));
        for r in 0..10 {
            db.insert(doc(3, r, 100 + r)).unwrap();
        }
        assert_eq!(db.read_span(TenantId(3)).len, 1);
        assert_eq!(db.rebalance(), 0, "balancer inert outside dynamic mode");

        let (mut db2, _) = open("dblmode", |c| {
            c.routing(RoutingMode::DoubleHashing(4)).shards(8)
        });
        let mut shards = std::collections::HashSet::new();
        for r in 0..50 {
            shards.insert(db2.insert(doc(3, r, 100 + r)).unwrap());
        }
        assert_eq!(db2.read_span(TenantId(3)).len, 4);
        assert!(shards.len() > 1);
    }

    #[test]
    fn stats_reflect_state() {
        let (mut db, _) = open("stats", |c| c.shards(4));
        for r in 0..30 {
            db.insert(doc(1, r, 100 + r)).unwrap();
        }
        let s = db.stats();
        assert_eq!(s.writes, 30);
        assert_eq!(s.buffered_docs, 30);
        assert_eq!(s.live_docs, 0);
        db.refresh();
        let s = db.stats();
        assert_eq!(s.live_docs, 30);
        assert_eq!(s.buffered_docs, 0);
        let total: usize = db.shard_doc_counts().iter().sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn extract_tenant_from_or_branches() {
        use esdb_doc::FieldValue;
        let same = Expr::Or(vec![
            Expr::And(vec![
                Expr::Eq("tenant_id".into(), FieldValue::Int(7)),
                Expr::Eq("status".into(), FieldValue::Int(1)),
            ]),
            Expr::And(vec![
                Expr::Eq("tenant_id".into(), FieldValue::Int(7)),
                Expr::Eq("group".into(), FieldValue::Int(2)),
            ]),
        ]);
        assert_eq!(extract_tenant(&same), Some(TenantId(7)));
        let mixed = Expr::Or(vec![
            Expr::Eq("tenant_id".into(), FieldValue::Int(7)),
            Expr::Eq("tenant_id".into(), FieldValue::Int(8)),
        ]);
        assert_eq!(extract_tenant(&mixed), None, "different tenants → fan out");
    }
}
