//! The embedded ESDB instance.

use crate::migrate::{
    statuses_to_json, MigrationEntry, MigrationPhase, MigrationStatus, MigrationTable, RulesLog,
};
use esdb_balancer::{BalancerConfig, LoadBalancer, WorkloadMonitor};
use esdb_common::exec::Executor;
use esdb_common::fastmap::{fast_map, fast_set, FastMap, FastSet};
use esdb_common::{
    CacheStats, Clock, EsdbError, NodeId, RecordId, RejectedCounts, Result, ShardId, ShardedCache,
    SharedClock, TenantId, TimestampMs,
};
use esdb_doc::{CollectionSchema, Document, WriteKind, WriteOp};
use esdb_index::{AttrFrequencyTracker, SegmentId};
use esdb_query::aggregate::merge_results;
use esdb_query::naive::naive_plan;
use esdb_query::Expr;
use esdb_query::{
    aggregate_prepared_blocks_on_snapshot, aggregate_pushdown_eligible, aggregate_rows,
    block_eligible, execute_prepared_blocks_on_snapshot, execute_prepared_on_snapshot, optimize,
    parse_sql, query_fingerprint, translate, AggPartials, AggResult, FilterCacheContext,
    PreparedPlan, Query, QueryOptions, QueryRows, SegmentFilterCache,
};
use esdb_replication::{build_handoff, HandoffPlan};
use esdb_routing::{
    place, DoubleHashRouting, DynamicRouting, HashRouting, RoutingPolicy, RuleList,
    SecondaryHashingRule, ShardSpan,
};
use esdb_storage::{ShardConfig, ShardEngine, ShardSnapshot, SnapshotCell, WriteFault};
use esdb_telemetry::{
    json_escape, Counter, DebugBundle, EventKind, Gauge, Histogram, Labels, MetricsRegistry,
    QueryTrace, SlowQueryEntry, SlowWriteEntry, Telemetry, TelemetryConfig, TelemetrySnapshot,
    NO_PARENT,
};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Which routing policy the instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Plain hashing (single shard per tenant).
    Hashing,
    /// Static double hashing with offset `s`.
    DoubleHashing(u32),
    /// Dynamic secondary hashing with the load balancer (the ESDB default).
    Dynamic,
}

/// Configuration for an embedded instance.
#[derive(Debug, Clone)]
pub struct EsdbConfig {
    /// Root data directory (one subdirectory per shard).
    pub data_dir: PathBuf,
    /// Shard count.
    pub n_shards: u32,
    /// Routing policy.
    pub routing: RoutingMode,
    /// Run the load balancer every this many writes (0 = manual only).
    pub balance_every_writes: u64,
    /// Balancer tuning (hotspot threshold, offset policy).
    pub balancer: BalancerConfig,
    /// Auto-refresh shards whose buffer reaches this many docs (0 = manual
    /// refresh).
    pub refresh_buffer_docs: usize,
    /// Worker threads for scatter-gather query fan-out and shard
    /// maintenance sweeps. `1` runs everything sequentially on the caller
    /// thread (deterministic mode); `0` selects the number of available
    /// CPU cores.
    pub parallelism: usize,
    /// Byte budget of the tier-1 segment filter cache. `0` = automatic:
    /// ~1% of resident shard bytes (floor 256 KiB), retargeted on every
    /// maintenance sweep.
    pub query_cache_bytes: u64,
    /// Entry budget of the tier-2 per-shard request cache (whole result
    /// sets). Values below 16 are rounded up to 16.
    pub request_cache_entries: u64,
    /// Enables the tier-1 segment filter cache.
    pub filter_cache_enabled: bool,
    /// Enables the tier-2 request cache.
    pub request_cache_enabled: bool,
    /// Telemetry knobs (metrics registry, trace sampling, slow-query
    /// log). The workload monitor records into the shared registry
    /// regardless of `telemetry.enabled` — balancing needs its counters —
    /// but spans, stage histograms, and the slow log obey the switch.
    pub telemetry: TelemetryConfig,
    /// Optional storage fault injector applied to every shard's translog
    /// (chaos testing: torn/failed appends surface as write errors).
    /// `None` for production use.
    pub write_fault: Option<Arc<dyn WriteFault>>,
    /// Commit-wait before a committed grow-rule activates, in clock
    /// milliseconds: the rule's effective time is `commit + wait`, so
    /// every participant — including nodes whose clock lags by up to
    /// this much — agrees on which side of the rule a record falls
    /// before any record can carry a timestamp past it. `0` (the
    /// default) activates immediately, which is exact under the
    /// embedded single-clock deployment.
    pub commit_wait_ms: u64,
    /// Bound on the translog tail a live migration may capture while
    /// its segment handoff is in flight. Exceeding it aborts the
    /// migration (writes are outrunning the drain) rather than chasing
    /// an unbounded backlog.
    pub migration_tail_max_ops: usize,
}

impl EsdbConfig {
    /// Sensible embedded defaults: 16 shards, dynamic routing, balancing
    /// every 5000 writes.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        let n_shards = 16;
        EsdbConfig {
            data_dir: data_dir.into(),
            n_shards,
            routing: RoutingMode::Dynamic,
            balance_every_writes: 5_000,
            balancer: BalancerConfig::new(n_shards, n_shards.div_ceil(4).max(1)),
            refresh_buffer_docs: 0,
            parallelism: 0,
            query_cache_bytes: 0,
            request_cache_entries: 1_024,
            filter_cache_enabled: true,
            request_cache_enabled: true,
            telemetry: TelemetryConfig::default(),
            write_fault: None,
            commit_wait_ms: 0,
            migration_tail_max_ops: 100_000,
        }
    }

    /// Overrides the shard count (also rescales the balancer).
    pub fn shards(mut self, n: u32) -> Self {
        self.n_shards = n;
        self.balancer = BalancerConfig::new(n, n.div_ceil(4).max(1));
        self
    }

    /// Overrides the routing mode.
    pub fn routing(mut self, mode: RoutingMode) -> Self {
        self.routing = mode;
        self
    }

    /// Overrides the scatter-gather parallelism degree (`1` =
    /// deterministic sequential, `0` = all available cores).
    pub fn parallelism(mut self, degree: usize) -> Self {
        self.parallelism = degree;
        self
    }

    /// Overrides the filter-cache byte budget (`0` = automatic ~1% of
    /// shard bytes).
    pub fn query_cache_bytes(mut self, bytes: u64) -> Self {
        self.query_cache_bytes = bytes;
        self
    }

    /// Overrides the request-cache entry budget.
    pub fn request_cache_entries(mut self, entries: u64) -> Self {
        self.request_cache_entries = entries;
        self
    }

    /// Enables/disables both query-cache tiers at once. With both off the
    /// query path is exactly the uncached one.
    pub fn query_caches(mut self, enabled: bool) -> Self {
        self.filter_cache_enabled = enabled;
        self.request_cache_enabled = enabled;
        self
    }

    /// Enables/disables only the tier-1 segment filter cache.
    pub fn filter_cache(mut self, enabled: bool) -> Self {
        self.filter_cache_enabled = enabled;
        self
    }

    /// Enables/disables only the tier-2 request cache.
    pub fn request_cache(mut self, enabled: bool) -> Self {
        self.request_cache_enabled = enabled;
        self
    }

    /// Enables/disables telemetry (latency histograms, stage tracing,
    /// slow-query log).
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry.enabled = enabled;
        self
    }

    /// Overrides the full telemetry configuration.
    pub fn telemetry_config(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Installs a storage fault injector on every shard's translog
    /// (chaos testing). Injected failures are counted in
    /// [`EsdbStats::write_errors`] and `esdb_write_errors_total`, then
    /// surfaced to the caller.
    pub fn write_fault(mut self, fault: Arc<dyn WriteFault>) -> Self {
        self.write_fault = Some(fault);
        self
    }

    /// Overrides the commit-wait window for rule activation (clock
    /// milliseconds; `0` = activate immediately).
    pub fn commit_wait_ms(mut self, ms: u64) -> Self {
        self.commit_wait_ms = ms;
        self
    }

    /// Overrides the captured-tail bound for live migrations.
    pub fn migration_tail_max_ops(mut self, ops: usize) -> Self {
        self.migration_tail_max_ops = ops;
        self
    }
}

enum Router {
    Hash(HashRouting),
    Double(DoubleHashRouting),
    Dynamic(DynamicRouting),
}

impl Router {
    fn route(&self, k1: TenantId, k2: RecordId, tc: TimestampMs) -> ShardId {
        match self {
            Router::Hash(r) => r.route_write(k1, k2, tc),
            Router::Double(r) => r.route_write(k1, k2, tc),
            Router::Dynamic(r) => r.route_write(k1, k2, tc),
        }
    }

    fn span(&self, k1: TenantId, now: TimestampMs) -> ShardSpan {
        match self {
            Router::Hash(r) => r.read_span(k1, now),
            Router::Double(r) => r.read_span(k1, now),
            Router::Dynamic(r) => r.read_span(k1, now),
        }
    }
}

/// Instance-level statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EsdbStats {
    /// Searchable documents across shards.
    pub live_docs: usize,
    /// Buffered (not yet searchable) documents.
    pub buffered_docs: usize,
    /// Total segments.
    pub segments: usize,
    /// Approximate bytes.
    pub size_bytes: usize,
    /// Committed secondary hashing rules.
    pub rules: usize,
    /// Writes applied.
    pub writes: u64,
    /// Writes that failed (translog or engine error surfaced to the
    /// caller) — never silently swallowed.
    pub write_errors: u64,
    /// Queries executed.
    pub queries: u64,
    /// Queries (row and aggregate) served by the block-at-a-time
    /// executor.
    pub block_queries: u64,
    /// Queries served by the scalar executor (block execution disabled,
    /// plan not block-eligible, or aggregate not pushdown-eligible).
    pub scalar_queries: u64,
    /// Per-shard cumulative busy time (microseconds a query, write, or
    /// maintenance operation held the shard), indexed by shard.
    pub shard_busy_micros: Vec<u64>,
    /// The parallelism degree the instance executes fan-out with.
    pub parallelism: usize,
    /// Tier-1 segment filter cache counters (`bytes` = resident bytes).
    pub filter_cache: CacheStats,
    /// Tier-2 request cache counters (`bytes` = resident entries).
    pub request_cache: CacheStats,
    /// Requests rejected before reaching the engine, by reason. Always
    /// zero for the embedded API — the `esdb-server` front-end fills
    /// these in its stats view so the conservation invariant
    /// `issued == admitted + rejected` extends through the network
    /// layer.
    pub requests_rejected: RejectedCounts,
}

/// One shard behind its own lock, so scatter-gather paths touch shards
/// independently instead of serializing on the instance.
///
/// The engine lock guards only the *mutable* indexing state (buffer,
/// translog, segment working set). The read path never takes it: the
/// slot carries the engine's [`SnapshotCell`] and queries pin the
/// published point-in-time view from there, so maintenance holding the
/// write lock never blocks a reader and vice versa.
struct ShardSlot {
    engine: RwLock<ShardEngine>,
    /// The engine's snapshot publication point (shared with the engine;
    /// readers pin from here without touching `engine`).
    snapshots: Arc<SnapshotCell>,
    /// The engine's attr-frequency tracker (shared with the engine;
    /// the query path records sub-attribute usage here lock-free with
    /// respect to the engine).
    attr_tracker: Arc<Mutex<AttrFrequencyTracker>>,
    /// The shard's group-commit queue. Writers push their op group here,
    /// then race for the engine lock: the winner (the *leader*) drains
    /// the queue and applies everything pending under its single lock
    /// acquisition; losers block on their group's completion cell. Under
    /// hot-shard contention this converts lock waiting into batching —
    /// exactly where Zipf skew concentrates load.
    write_queue: Mutex<VecDeque<PendingGroup>>,
    /// Cumulative microseconds operations spent serving this shard —
    /// write-lock hold time plus lock-free query execution time — the
    /// per-shard busy counter surfaced through
    /// [`EsdbStats::shard_busy_micros`].
    busy_micros: AtomicU64,
}

impl ShardSlot {
    fn new(engine: ShardEngine) -> Arc<Self> {
        let snapshots = engine.snapshot_cell();
        let attr_tracker = engine.attr_tracker();
        Arc::new(ShardSlot {
            engine: RwLock::new(engine),
            snapshots,
            attr_tracker,
            write_queue: Mutex::new(VecDeque::new()),
            busy_micros: AtomicU64::new(0),
        })
    }

    /// Runs `f` under the shard's write lock, charging elapsed time to
    /// the busy counter.
    fn with_write<R>(&self, f: impl FnOnce(&mut ShardEngine) -> R) -> R {
        let t0 = Instant::now();
        let mut engine = self.engine.write();
        let r = f(&mut engine);
        self.busy_micros
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        r
    }
}

/// Per-shard application counts returned by [`Esdb::write_batch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchApplied {
    /// Operations applied in total.
    pub total: usize,
    /// `(shard, operations applied to it)`, ascending by shard.
    pub per_shard: Vec<(ShardId, usize)>,
}

/// One writer's submitted op group, parked in a shard's commit queue
/// until a leader applies it.
struct PendingGroup {
    ops: Vec<WriteOp>,
    /// `true` for batch groups (legacy `write_batch` semantics: the
    /// first failing op stops its own shard's group); `false` for
    /// single-op submissions, where every op is independent.
    stop_on_error: bool,
    done: Arc<GroupDone>,
}

/// Outcome of one submitted group, set exactly once by the leader that
/// applied it and taken exactly once by the submitter.
struct GroupOutcome {
    /// Ops applied (translog append + memory) out of the group.
    applied: usize,
    /// The group's first error, if any op failed.
    first_err: Option<EsdbError>,
}

/// Completion cell a submitter blocks on while some leader applies its
/// group. Built on `std::sync` primitives (the waiters need a condvar);
/// the wait loops on a short timeout so a submitter whose push raced
/// past a finishing leader's final drain re-contends for the engine
/// lock instead of sleeping forever.
#[derive(Default)]
struct GroupDone {
    state: StdMutex<Option<GroupOutcome>>,
    cv: Condvar,
}

/// How long a colliding writer sleeps before re-checking the engine
/// lock. Long enough to let a leader drain a burst, short enough that
/// the push-after-final-drain race costs microseconds, not a stall.
const GROUP_WAIT: Duration = Duration::from_micros(100);

impl GroupDone {
    fn set(&self, out: GroupOutcome) {
        *self.state.lock().expect("group cell poisoned") = Some(out);
        self.cv.notify_all();
    }

    fn try_take(&self) -> Option<GroupOutcome> {
        self.state.lock().expect("group cell poisoned").take()
    }

    /// Blocks until completion or the retry timeout; returns the outcome
    /// if it arrived.
    fn wait(&self) -> Option<GroupOutcome> {
        let mut guard = self.state.lock().expect("group cell poisoned");
        if let Some(out) = guard.take() {
            return Some(out);
        }
        let (mut guard, _) = self
            .cv
            .wait_timeout(guard, GROUP_WAIT)
            .expect("group cell poisoned");
        guard.take()
    }
}

/// Everything the shared (`&self`) write pipeline needs, held in one
/// `Arc` so [`Esdb`] and every [`EsdbWriter`] clone drive the identical
/// path: same shards and commit queues, same router and rules, same
/// monitor/balancer, same atomic accounting.
struct WriteState {
    shards: Vec<Arc<ShardSlot>>,
    n_shards: u32,
    router: Arc<Router>,
    rules: Arc<RwLock<RuleList>>,
    monitor: Arc<WorkloadMonitor>,
    /// The balancing pass is single-entrant (one writer claims each
    /// epoch), but the mutex keeps the type honest about it.
    balancer: Mutex<LoadBalancer>,
    clock: SharedClock,
    /// Worker-node count shards map onto (from the balancer's offset
    /// policy, which models consecutive shards on consecutive nodes).
    node_count: u32,
    balance_every_writes: u64,
    dynamic_routing: bool,
    writes_total: AtomicU64,
    write_errors_total: AtomicU64,
    writes_since_balance: AtomicU64,
    /// Monotone rebalance-epoch counter; each claimed pass gets the next
    /// number, journaled as claimed/completed event pairs.
    rebalance_epochs: AtomicU64,
    telemetry: Arc<Telemetry>,
    timers: Option<CoreTimers>,
    /// The collection schema (the migration coordinator builds shipped
    /// segments from it).
    schema: CollectionSchema,
    /// Live-migration coordinator state: entries, the write-permit
    /// barrier, the reader fence, and the tail-capture hook.
    migrations: Arc<MigrationTable>,
    /// Durable append-only log of rule commits, cutover intents, and
    /// completions (`data_dir/rules.log`), replayed at open.
    rules_log: Arc<RulesLog>,
    /// Commit-wait applied to every rule's effective time.
    commit_wait_ms: u64,
}

/// Key of one tier-2 entry: `(shard, search generation, query
/// fingerprint)`. Any searchable-state change bumps the shard's
/// generation, so stale entries become unreachable immediately and are
/// reaped by the maintenance sweeps.
type RequestCacheKey = (u32, u64, u128);

/// Floor (and pre-data default) for the automatic filter-cache budget.
const AUTO_FILTER_BUDGET_FLOOR: u64 = 256 * 1024;

/// ~1% of resident shard bytes, with a floor so small datasets still
/// cache.
fn auto_filter_budget(shard_bytes: usize) -> u64 {
    ((shard_bytes / 100) as u64).max(AUTO_FILTER_BUDGET_FLOOR)
}

/// Cached end-to-end latency histogram handles, present iff telemetry
/// is enabled. The hot paths then pay one clock read and one atomic
/// bucket increment each; when absent the paths take a single branch.
#[derive(Clone)]
struct CoreTimers {
    query_total: Arc<Histogram>,
    agg_total: Arc<Histogram>,
    write_total: Arc<Histogram>,
    batch_total: Arc<Histogram>,
    write_errors: Arc<Counter>,
    /// Ops a leader applied per commit-queue drain — the group-commit
    /// effectiveness signal (1 = no coalescing; grows with hot-shard
    /// contention).
    group_size: Arc<Histogram>,
    /// Single-op drains (the uncontended common case) accumulate here
    /// with one relaxed add instead of a full histogram record; the
    /// backlog is flushed into `group_size` as size-1 observations at
    /// snapshot time, so the histogram's sum/count stay exact.
    solo_drains: Arc<AtomicU64>,
    /// Commit-queue drain latency (lock acquired → every taken group
    /// applied and completed), per drain iteration.
    drain_total: Arc<Histogram>,
    /// Nanoseconds a contended submission blocked, from its first
    /// failed engine-lock acquisition until it either won the lock
    /// (leaders) or saw its group completed by another leader
    /// (followers). Uncontended submissions record nothing — the fast
    /// path stays free of per-op clock reads.
    lock_wait: Arc<Histogram>,
    /// Per-shard commit-queue depth, sampled by `telemetry_snapshot`.
    queue_depth: Vec<Arc<Gauge>>,
    block_queries: Arc<Counter>,
    scalar_queries: Arc<Counter>,
    blocks_scanned: Arc<Counter>,
    blocks_skipped: Arc<Counter>,
    blocks_pruned: Arc<Counter>,
}

impl CoreTimers {
    fn new(registry: &MetricsRegistry, n_shards: u32) -> Self {
        CoreTimers {
            query_total: registry.histogram("esdb_query_total_ns", Labels::none()),
            agg_total: registry.histogram("esdb_aggregate_total_ns", Labels::none()),
            write_total: registry.histogram("esdb_write_total_ns", Labels::none()),
            batch_total: registry.histogram("esdb_write_batch_ns", Labels::none()),
            write_errors: registry.counter("esdb_write_errors_total", Labels::none()),
            group_size: registry.histogram("esdb_write_group_size", Labels::none()),
            solo_drains: Arc::new(AtomicU64::new(0)),
            drain_total: registry.histogram("esdb_write_drain_ns", Labels::none()),
            lock_wait: registry.histogram("esdb_write_lock_wait_ns", Labels::none()),
            queue_depth: (0..n_shards)
                .map(|s| registry.gauge("esdb_write_queue_depth", Labels::shard(s)))
                .collect(),
            block_queries: registry.counter("esdb_block_exec_queries_total", Labels::none()),
            scalar_queries: registry.counter("esdb_scalar_exec_queries_total", Labels::none()),
            blocks_scanned: registry
                .counter("esdb_block_exec_blocks_scanned_total", Labels::none()),
            blocks_skipped: registry
                .counter("esdb_block_exec_blocks_skipped_total", Labels::none()),
            blocks_pruned: registry.counter("esdb_block_exec_blocks_pruned_total", Labels::none()),
        }
    }

    /// Charges one query's executor choice (and, on the block path, its
    /// posting-block counters) to the registry.
    fn record_exec_path(&self, used_blocks: bool, blocks: &esdb_index::BlockStats) {
        if used_blocks {
            self.block_queries.inc();
            self.blocks_scanned.add(blocks.scanned);
            self.blocks_skipped.add(blocks.skipped);
            self.blocks_pruned.add(blocks.pruned);
        } else {
            self.scalar_queries.inc();
        }
    }
}

/// Nanoseconds since `t0`, clamped into `u64`.
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// An embedded ESDB database.
pub struct Esdb {
    schema: CollectionSchema,
    config: EsdbConfig,
    shards: Vec<Arc<ShardSlot>>,
    /// Tier-1: per-segment posting lists of cacheable sub-plans
    /// (`Arc` so [`EsdbReader`] handles share the same cache).
    filter_cache: Arc<SegmentFilterCache>,
    /// Tier-2: whole per-shard result sets, keyed by search generation.
    request_cache: Arc<ShardedCache<RequestCacheKey, Arc<QueryRows>>>,
    executor: Executor,
    rules: Arc<RwLock<RuleList>>,
    router: Arc<Router>,
    /// The shared (`&self`) write pipeline — shards, commit queues,
    /// monitor/balancer, atomic accounting — also held by every
    /// [`EsdbWriter`] clone.
    write: Arc<WriteState>,
    clock: SharedClock,
    queries_total: Arc<AtomicU64>,
    block_queries_total: Arc<AtomicU64>,
    scalar_queries_total: Arc<AtomicU64>,
    telemetry: Arc<Telemetry>,
    timers: Option<CoreTimers>,
    /// Baseline for [`Esdb::take_stats`] delta snapshots.
    stats_base: EsdbStats,
}

impl Esdb {
    /// Opens (or recovers) an instance rooted at `config.data_dir`.
    pub fn open(schema: CollectionSchema, config: EsdbConfig) -> Result<Self> {
        Self::open_with_clock(schema, config, SharedClock::real())
    }

    /// Opens with an explicit clock (tests use a manual clock so rule
    /// effective times are deterministic).
    pub fn open_with_clock(
        schema: CollectionSchema,
        config: EsdbConfig,
        clock: SharedClock,
    ) -> Result<Self> {
        if config.n_shards == 0 {
            return Err(EsdbError::Config("n_shards must be > 0".into()));
        }
        let telemetry = Arc::new(Telemetry::new(config.telemetry.clone()));
        let mut shards = Vec::with_capacity(config.n_shards as usize);
        for s in 0..config.n_shards {
            let mut sc = ShardConfig::new(config.data_dir.join(format!("shard-{s:04}")));
            sc.refresh_buffer_docs = config.refresh_buffer_docs;
            sc.write_fault = config.write_fault.clone();
            if telemetry.enabled() {
                sc = sc.with_telemetry(s, Arc::clone(&telemetry));
            }
            shards.push(ShardSlot::new(ShardEngine::open(schema.clone(), sc)?));
        }
        // Restore the durable routing state before anything routes: the
        // committed rule list and the migrated markings, in log order.
        let rules_log = Arc::new(RulesLog::new(&config.data_dir));
        let replayed = rules_log.replay()?;
        let rules = Arc::new(RwLock::new(RuleList::new()));
        {
            let mut r = rules.write();
            for (tenant, offset, t_eff) in &replayed.rules {
                r.update(*t_eff, *offset, *tenant);
            }
            for (tenant, offset) in &replayed.migrated {
                r.mark_migrated(*tenant, *offset);
            }
        }
        let router = Arc::new(match config.routing {
            RoutingMode::Hashing => Router::Hash(HashRouting::new(config.n_shards)),
            RoutingMode::DoubleHashing(s) => {
                Router::Double(DoubleHashRouting::new(config.n_shards, s))
            }
            RoutingMode::Dynamic => {
                let mut r = DynamicRouting::with_rules(config.n_shards, rules.clone());
                if telemetry.enabled() {
                    r = r.with_telemetry(telemetry.registry());
                }
                Router::Dynamic(r)
            }
        });
        let mut balancer = LoadBalancer::new(config.balancer);
        if telemetry.enabled() {
            balancer = balancer.with_journal(Arc::clone(telemetry.journal()));
        }
        let executor = Executor::new(config.parallelism);
        let filter_cache = Arc::new(SegmentFilterCache::new(if config.query_cache_bytes == 0 {
            AUTO_FILTER_BUDGET_FLOOR
        } else {
            config.query_cache_bytes
        }));
        let request_cache = Arc::new(ShardedCache::new(config.request_cache_entries.max(16)));
        // The monitor shares the telemetry registry, so the balancing
        // loop's inputs surface as `esdb_monitor_*` series for free.
        let monitor = Arc::new(WorkloadMonitor::with_registry(Arc::clone(
            telemetry.registry(),
        )));
        let timers = telemetry
            .enabled()
            .then(|| CoreTimers::new(telemetry.registry(), config.n_shards));
        let write = Arc::new(WriteState {
            shards: shards.clone(),
            n_shards: config.n_shards,
            router: Arc::clone(&router),
            rules: Arc::clone(&rules),
            monitor,
            balancer: Mutex::new(balancer),
            clock: clock.clone(),
            node_count: config.balancer.offset.node_count.max(1),
            balance_every_writes: config.balance_every_writes,
            dynamic_routing: matches!(config.routing, RoutingMode::Dynamic),
            writes_total: AtomicU64::new(0),
            write_errors_total: AtomicU64::new(0),
            writes_since_balance: AtomicU64::new(0),
            rebalance_epochs: AtomicU64::new(0),
            telemetry: Arc::clone(&telemetry),
            timers: timers.clone(),
            schema: schema.clone(),
            migrations: Arc::new(MigrationTable::new(config.migration_tail_max_ops)),
            rules_log,
            commit_wait_ms: config.commit_wait_ms,
        });
        // A cutover whose intent was logged but whose completion never
        // was is finished now, before the instance serves anything:
        // idempotent logical completion (every row moved to its
        // new-span placement, sources tombstoned, routing re-marked).
        for (tenant, offset, t_eff) in &replayed.pending_cutovers {
            complete_cutover_by_scan(&write, *tenant, *offset, *t_eff)?;
        }
        let db = Esdb {
            schema,
            shards,
            filter_cache,
            request_cache,
            executor,
            rules,
            router,
            write,
            clock,
            queries_total: Arc::new(AtomicU64::new(0)),
            block_queries_total: Arc::new(AtomicU64::new(0)),
            scalar_queries_total: Arc::new(AtomicU64::new(0)),
            telemetry,
            timers,
            stats_base: EsdbStats::default(),
            config,
        };
        // Recovered segments are already resident: point the automatic
        // filter-cache budget at them right away.
        db.sweep_caches();
        Ok(db)
    }

    /// The collection schema.
    pub fn schema(&self) -> &CollectionSchema {
        &self.schema
    }

    /// The scatter-gather parallelism degree in effect.
    pub fn parallelism(&self) -> usize {
        self.executor.parallelism()
    }

    /// Changes the scatter-gather parallelism degree at runtime (`1` =
    /// deterministic sequential, `0` = all available cores). Results are
    /// identical across degrees; only wall-clock time changes.
    pub fn set_parallelism(&mut self, degree: usize) {
        self.executor = Executor::new(degree);
    }

    /// Inserts a document, returning the shard it was routed to.
    pub fn insert(&mut self, doc: Document) -> Result<ShardId> {
        self.write(WriteOp::insert(doc))
    }

    /// Updates an existing record (routing triple must match the original
    /// creation time, §4.2).
    pub fn update(&mut self, doc: Document) -> Result<ShardId> {
        self.write(WriteOp::update(doc))
    }

    /// Deletes a record by routing triple.
    pub fn delete(
        &mut self,
        tenant: TenantId,
        record: RecordId,
        created_at: TimestampMs,
    ) -> Result<ShardId> {
        self.write(WriteOp::delete(tenant, record, created_at))
    }

    /// Flushes a [`crate::WriteBatcher`]'s coalesced operations into the
    /// database (the write-client workload-batching path, §3.1).
    ///
    /// Operations are routed first, grouped by destination shard, and
    /// each group applied under a single acquisition of its shard's
    /// lock — groups for different shards run concurrently on the
    /// executor. Returns how many operations each shard received.
    pub fn write_batch(&mut self, batcher: &mut crate::WriteBatcher) -> Result<BatchApplied> {
        write_batch_shared(&self.write, &self.executor, batcher.flush())
    }

    /// Applies a raw write operation.
    pub fn write(&mut self, op: WriteOp) -> Result<ShardId> {
        write_one(&self.write, op)
    }

    /// Runs one balancing pass now (Algorithm 1 runtime phase): detect
    /// hotspots in the monitor window, commit grow-rules effective
    /// immediately for *future* records.
    pub fn rebalance(&mut self) -> usize {
        self.write.writes_since_balance.store(0, Ordering::Release);
        rebalance_pass(&self.write)
    }

    /// Makes all buffered writes searchable (near-real-time refresh).
    /// Shards refresh concurrently on the executor.
    pub fn refresh(&mut self) {
        self.executor.map(&self.shards, |_, slot| {
            slot.with_write(|engine| engine.refresh());
        });
        self.sweep_caches();
    }

    /// Durably flushes all shards (segments + commit points, translog
    /// roll). Shards flush concurrently; the first error (by shard
    /// order) is reported after every shard has completed its attempt.
    pub fn flush(&mut self) -> Result<()> {
        let result = self
            .executor
            .map(&self.shards, |_, slot| {
                slot.with_write(|engine| engine.flush())
            })
            .into_iter()
            .collect();
        self.sweep_caches();
        result
    }

    /// Force-merges each shard's full segment list into one segment,
    /// ignoring the merge policy (maximum merge pressure — benches and
    /// tests race queries against this). Returns merges performed.
    pub fn force_merge(&mut self) -> usize {
        let merged: usize = self
            .executor
            .map(&self.shards, |_, slot| {
                slot.with_write(|engine| {
                    let ids: Vec<SegmentId> = engine.segments().iter().map(|s| s.id).collect();
                    if ids.len() > 1 {
                        engine.force_merge(&ids);
                        1
                    } else {
                        0
                    }
                })
            })
            .into_iter()
            .sum();
        self.sweep_caches();
        merged
    }

    /// Runs the merge policy on every shard concurrently; returns merges
    /// performed.
    pub fn merge(&mut self) -> usize {
        let merged = self
            .executor
            .map(&self.shards, |_, slot| {
                slot.with_write(|engine| engine.maybe_merge())
            })
            .into_iter()
            .flatten()
            .count();
        self.sweep_caches();
        merged
    }

    /// Reaps query-cache entries that can no longer be served — request
    /// results from superseded generations, filter lists for merged-away
    /// segments — and retargets the automatic filter-cache byte budget at
    /// ~1% of resident shard bytes. Runs after every maintenance sweep;
    /// correctness never depends on it (stale keys are unreachable by
    /// construction), it just returns their memory.
    fn sweep_caches(&self) {
        let mut gens: Vec<u64> = Vec::with_capacity(self.shards.len());
        let mut live: Vec<FastSet<SegmentId>> = Vec::with_capacity(self.shards.len());
        let mut shard_bytes = 0usize;
        for slot in &self.shards {
            // The published snapshot *is* the state the caches are keyed
            // by (queries key entries off pinned views), so the sweep
            // reads it directly — no engine lock.
            let snap = slot.snapshots.pin();
            gens.push(snap.search_generation());
            let mut ids = fast_set();
            for seg in snap.segments() {
                ids.insert(seg.id);
                shard_bytes += seg.size_bytes();
            }
            live.push(ids);
        }
        let entries_before = self
            .telemetry
            .enabled()
            .then(|| self.request_cache.stats().entries + self.filter_cache.stats().entries);
        self.request_cache
            .retain(|k| gens.get(k.0 as usize).is_some_and(|&g| g == k.1));
        self.filter_cache
            .retain(|k| live.get(k.0 as usize).is_some_and(|ids| ids.contains(&k.1)));
        if let Some(before) = entries_before {
            let entries = self.request_cache.stats().entries + self.filter_cache.stats().entries;
            self.telemetry.emit(
                EventKind::CacheSweep {
                    evicted: before.saturating_sub(entries),
                    entries,
                },
                Labels::none(),
                NO_PARENT,
            );
        }
        if self.config.query_cache_bytes == 0 {
            self.filter_cache
                .set_budget(auto_filter_budget(shard_bytes));
        }
    }

    /// Executes a SQL query (parse → Xdriver4ES translate → route to the
    /// tenant's shard span → optimize → execute → aggregate).
    ///
    /// The read path is lock-free: each shard of the fan-out pins the
    /// shard's published snapshot once and executes entirely against it —
    /// the per-shard engine lock is never taken, so concurrent
    /// maintenance (refresh, merge, flush) neither blocks nor is blocked
    /// by queries.
    pub fn query(&self, sql: &str) -> Result<QueryRows> {
        self.query_opts(sql, QueryOptions::default())
    }

    /// Executes SQL with explicit options (the Fig. 17 harness turns the
    /// optimizer off through this; benches pin the executor by toggling
    /// `block_execution`).
    pub fn query_opts(&self, sql: &str, opts: QueryOptions) -> Result<QueryRows> {
        run_query(&self.read_path(), sql, opts)
    }

    /// Executes an aggregate SQL query (`SELECT COUNT(*)/SUM/AVG/MIN/MAX
    /// ... [GROUP BY col]`). Pushdown-eligible plans compute mergeable
    /// per-shard partials straight from columnar doc values — no stored
    /// payload is ever materialized ([`AggResult::payload_reads`] stays
    /// 0); other plans fall back to materializing matching rows and
    /// aggregating them at the coordinator with the scalar reference
    /// semantics. Both paths produce identical rows.
    pub fn aggregate(&self, sql: &str) -> Result<AggResult> {
        self.aggregate_opts(sql, QueryOptions::default())
    }

    /// Executes an aggregate query with explicit options
    /// (`block_execution: false` forces the scalar fallback — the oracle
    /// the block path is gated against).
    pub fn aggregate_opts(&self, sql: &str, opts: QueryOptions) -> Result<AggResult> {
        run_agg_query(&self.read_path(), sql, opts)
    }

    /// Point lookup by routing triple against the routed shard's pinned
    /// snapshot (lock-free; sees data as of the last refresh, like a
    /// query).
    pub fn get(
        &self,
        tenant: TenantId,
        record: RecordId,
        created_at: TimestampMs,
    ) -> Option<Document> {
        let shard = self.router.route(tenant, record, created_at);
        self.shards[shard.index()]
            .snapshots
            .pin()
            .get_record(record.raw())
            .cloned()
    }

    /// Pins the current published snapshot of one shard. The returned
    /// view answers identically forever, no matter what the engine does
    /// afterwards.
    pub fn pin_snapshot(&self, shard: ShardId) -> Arc<ShardSnapshot> {
        self.shards[shard.index()].snapshots.pin()
    }

    /// A clone-able read handle sharing this instance's shards, caches,
    /// router, and telemetry. Readers query concurrently from other
    /// threads while this instance keeps writing — see [`EsdbReader`].
    pub fn reader(&self) -> EsdbReader {
        EsdbReader {
            schema: self.schema.clone(),
            n_shards: self.config.n_shards,
            shards: self.shards.clone(),
            migrations: Arc::clone(&self.write.migrations),
            filter_cache: self
                .config
                .filter_cache_enabled
                .then(|| Arc::clone(&self.filter_cache)),
            request_cache: self
                .config
                .request_cache_enabled
                .then(|| Arc::clone(&self.request_cache)),
            executor: self.executor.clone(),
            router: Arc::clone(&self.router),
            clock: self.clock.clone(),
            queries_total: Arc::clone(&self.queries_total),
            block_queries_total: Arc::clone(&self.block_queries_total),
            scalar_queries_total: Arc::clone(&self.scalar_queries_total),
            telemetry: Arc::clone(&self.telemetry),
            timers: self.timers.clone(),
        }
    }

    /// A clone-able write handle sharing this instance's shards, commit
    /// queues, router, workload monitor, and telemetry. Writer clones
    /// ingest concurrently from other threads — different shards in
    /// parallel, same-shard collisions coalesced through the per-shard
    /// group-commit queue — while this instance (and any [`EsdbReader`])
    /// keeps operating. See [`EsdbWriter`].
    pub fn writer(&self) -> EsdbWriter {
        EsdbWriter {
            state: Arc::clone(&self.write),
            executor: self.executor.clone(),
        }
    }

    /// The borrowed bundle [`run_query`] executes against.
    fn read_path(&self) -> ReadPath<'_> {
        ReadPath {
            schema: &self.schema,
            n_shards: self.config.n_shards,
            shards: &self.shards,
            migrations: self.write.migrations.as_ref(),
            filter_cache: self
                .config
                .filter_cache_enabled
                .then_some(self.filter_cache.as_ref()),
            request_cache: self
                .config
                .request_cache_enabled
                .then_some(self.request_cache.as_ref()),
            executor: &self.executor,
            router: &self.router,
            clock: &self.clock,
            queries_total: &self.queries_total,
            block_queries_total: &self.block_queries_total,
            scalar_queries_total: &self.scalar_queries_total,
            telemetry: &self.telemetry,
            timers: self.timers.as_ref(),
        }
    }

    /// The read span for a tenant right now.
    pub fn read_span(&self, tenant: TenantId) -> ShardSpan {
        self.router.span(tenant, self.clock.now())
    }

    /// Snapshot of committed rules (for inspection).
    pub fn rule_count(&self) -> usize {
        self.rules.read().len()
    }

    /// Clone of the committed rule list, in insertion order (the
    /// server's `/admin/rules` endpoint renders this).
    pub fn rules_snapshot(&self) -> Vec<SecondaryHashingRule> {
        self.rules.read().rules().to_vec()
    }

    /// Live migration state, one entry per tenant whose span ever grew
    /// under this instance (the server's `/admin/migrations` endpoint
    /// renders this). Terminal entries stay until the tenant migrates
    /// again.
    pub fn migrations_snapshot(&self) -> Vec<MigrationStatus> {
        self.write.migrations.statuses()
    }

    /// Advances every live migration one lifecycle phase (commit-wait →
    /// handoff → drain → cutover). Normally driven by balancer epochs;
    /// exposed for deterministic stepping in tests and operations.
    pub fn step_migrations(&mut self) {
        step_migrations(&self.write);
    }

    /// Drives every live migration to completion — or to a blocked
    /// commit-wait when the activation timestamp is still in the
    /// future. Returns how many migrations reached `Done`.
    pub fn drive_migrations(&mut self) -> usize {
        let done = |statuses: &[MigrationStatus]| {
            statuses
                .iter()
                .filter(|s| s.phase == MigrationPhase::Done)
                .count()
        };
        let before = done(&self.write.migrations.statuses());
        loop {
            let snapshot = self.write.migrations.statuses();
            if !snapshot.iter().any(|s| s.phase.is_active()) {
                break;
            }
            step_migrations(&self.write);
            if self.write.migrations.statuses() == snapshot {
                break;
            }
        }
        done(&self.write.migrations.statuses()) - before
    }

    /// Aborts every live migration: staged plans and tails are dropped,
    /// the balancer re-armed. Committed rules stay (spans never
    /// shrink); unmoved rows remain readable at their old placement.
    /// Returns how many migrations were aborted.
    pub fn abort_migrations(&mut self) -> usize {
        let _step = self.write.migrations.step_lock.lock();
        let tenants: Vec<TenantId> = self
            .write
            .migrations
            .entries()
            .iter()
            .filter(|e| e.phase.is_active())
            .map(|e| e.tenant)
            .collect();
        for t in &tenants {
            abort_migration(&self.write, *t);
        }
        tenants.len()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> EsdbStats {
        let mut s = EsdbStats {
            rules: self.rule_count(),
            writes: self.write.writes_total.load(Ordering::Relaxed),
            write_errors: self.write.write_errors_total.load(Ordering::Relaxed),
            queries: self.queries_total.load(Ordering::Relaxed),
            block_queries: self.block_queries_total.load(Ordering::Relaxed),
            scalar_queries: self.scalar_queries_total.load(Ordering::Relaxed),
            parallelism: self.executor.parallelism(),
            filter_cache: self.filter_cache.stats(),
            request_cache: self.request_cache.stats(),
            ..EsdbStats::default()
        };
        for slot in &self.shards {
            let st = slot.engine.read().stats();
            s.live_docs += st.live_docs;
            s.buffered_docs += st.buffered_docs;
            s.segments += st.segments;
            s.size_bytes += st.size_bytes;
            s.shard_busy_micros
                .push(slot.busy_micros.load(Ordering::Relaxed));
        }
        s
    }

    /// Like [`Esdb::stats`], but monotone fields — writes, queries,
    /// per-shard busy time, cache hit/miss/eviction counters — are
    /// returned as **deltas since the previous `take_stats` call** (or
    /// since open), while level fields (docs, segments, bytes, rules,
    /// cache residency, parallelism) stay absolute. Lets callers poll
    /// for per-interval rates without keeping their own baselines.
    pub fn take_stats(&mut self) -> EsdbStats {
        let current = self.stats();
        let base = &self.stats_base;
        let mut out = current.clone();
        out.writes = current.writes.saturating_sub(base.writes);
        out.write_errors = current.write_errors.saturating_sub(base.write_errors);
        out.queries = current.queries.saturating_sub(base.queries);
        out.block_queries = current.block_queries.saturating_sub(base.block_queries);
        out.scalar_queries = current.scalar_queries.saturating_sub(base.scalar_queries);
        for (i, v) in out.shard_busy_micros.iter_mut().enumerate() {
            *v = v.saturating_sub(base.shard_busy_micros.get(i).copied().unwrap_or(0));
        }
        out.filter_cache = cache_delta(&current.filter_cache, &base.filter_cache);
        out.request_cache = cache_delta(&current.request_cache, &base.request_cache);
        out.requests_rejected = current
            .requests_rejected
            .saturating_sub(&base.requests_rejected);
        self.stats_base = current;
        out
    }

    /// The shared telemetry facade (registry, slow-query log, config).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The workload monitor feeding the balancer. The network front-end
    /// shares this as its skew signal, so admission control sheds the
    /// same hot tenants the balancer would grow shard spans for.
    pub fn workload_monitor(&self) -> Arc<WorkloadMonitor> {
        Arc::clone(&self.write.monitor)
    }

    /// The clock this instance runs on. Components layered on top (the
    /// network front-end's token buckets) share it so a
    /// [`esdb_common::ManualClock`] drives engine and admission
    /// decisions in lockstep.
    pub fn clock(&self) -> SharedClock {
        self.clock.clone()
    }

    /// Current slow-query log contents, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.telemetry.slow_queries()
    }

    /// Current slow-write (group-commit drain) log contents, oldest
    /// first.
    pub fn slow_writes(&self) -> Vec<SlowWriteEntry> {
        self.telemetry.slow_writes()
    }

    /// One-call postmortem artifact: serializes the refreshed metrics
    /// snapshot, the journal tail, both slow-path logs, the engine
    /// configuration, and the committed rule list into a single JSON
    /// document (`bundle.to_json()`).
    pub fn debug_bundle(&self) -> DebugBundle {
        let mut bundle = DebugBundle::from_telemetry(&self.telemetry, 512);
        // Replace the raw snapshot with the instance-refreshed one so
        // cache/rule/queue gauges are current.
        bundle.metrics = self.telemetry_snapshot();
        let c = &self.config;
        bundle.config = vec![
            ("n_shards".to_string(), c.n_shards.to_string()),
            (
                "routing".to_string(),
                format!("\"{}\"", json_escape(&format!("{:?}", c.routing))),
            ),
            (
                "balance_every_writes".to_string(),
                c.balance_every_writes.to_string(),
            ),
            (
                "refresh_buffer_docs".to_string(),
                c.refresh_buffer_docs.to_string(),
            ),
            ("parallelism".to_string(), c.parallelism.to_string()),
            (
                "query_cache_bytes".to_string(),
                c.query_cache_bytes.to_string(),
            ),
            (
                "request_cache_entries".to_string(),
                c.request_cache_entries.to_string(),
            ),
            (
                "trace_sample_every".to_string(),
                c.telemetry.trace_sample_every.to_string(),
            ),
            (
                "slow_query_threshold_us".to_string(),
                c.telemetry.slow_query_threshold_us.to_string(),
            ),
            (
                "slow_write_threshold_us".to_string(),
                c.telemetry.slow_write_threshold_us.to_string(),
            ),
            (
                "tail_capture".to_string(),
                c.telemetry.tail_capture.to_string(),
            ),
            (
                "journal_capacity".to_string(),
                c.telemetry.journal_capacity.to_string(),
            ),
            ("commit_wait_ms".to_string(), c.commit_wait_ms.to_string()),
            (
                "migration_tail_max_ops".to_string(),
                c.migration_tail_max_ops.to_string(),
            ),
        ];
        bundle.rules = {
            let rules = self.rules.read();
            let mut out = String::from("[");
            for (i, r) in rules.rules().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let tenants: Vec<String> = r.tenants.iter().map(|t| t.0.to_string()).collect();
                out.push_str(&format!(
                    "{{\"effective_time\": {}, \"offset\": {}, \"tenants\": [{}]}}",
                    r.effective_time,
                    r.offset,
                    tenants.join(", ")
                ));
            }
            out.push(']');
            out
        };
        bundle.migrations = statuses_to_json(&self.migrations_snapshot());
        bundle
    }

    /// Point-in-time snapshot of every metric, for Prometheus text or
    /// JSON exposition. Instance-level gauges — cache counters, active
    /// rules, per-shard busy time — are refreshed into the registry
    /// first, so the snapshot is self-contained.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        if self.telemetry.enabled() {
            let registry = self.telemetry.registry();
            registry
                .gauge("esdb_rules_active", Labels::none())
                .set(self.rule_count() as i64);
            registry
                .gauge("esdb_migrations_active", Labels::none())
                .set(self.write.migrations.active_count() as i64);
            for (tier, s) in [
                ("filter", self.filter_cache.stats()),
                ("request", self.request_cache.stats()),
            ] {
                let labels = Labels::stage(tier);
                registry.gauge("esdb_cache_hits", labels).set(s.hits as i64);
                registry
                    .gauge("esdb_cache_misses", labels)
                    .set(s.misses as i64);
                registry
                    .gauge("esdb_cache_evictions", labels)
                    .set(s.evictions as i64);
                registry
                    .gauge("esdb_cache_entries", labels)
                    .set(s.entries as i64);
                registry
                    .gauge("esdb_cache_weight", labels)
                    .set(s.bytes as i64);
            }
            for (i, slot) in self.shards.iter().enumerate() {
                registry
                    .gauge("esdb_shard_busy_micros", Labels::shard(i as u32))
                    .set(slot.busy_micros.load(Ordering::Relaxed) as i64);
            }
            // The write hot path avoids per-op telemetry work: commit-
            // queue depths are sampled here rather than on every
            // enqueue, and single-op drains accumulate in a plain
            // counter that is flushed into the group-size histogram now,
            // keeping its sum/count exact at snapshot granularity.
            if let Some(t) = &self.timers {
                for (i, slot) in self.shards.iter().enumerate() {
                    t.queue_depth[i].set(slot.write_queue.lock().len() as i64);
                }
                let solo = t.solo_drains.swap(0, Ordering::Relaxed);
                if solo > 0 {
                    t.group_size.record_n(1, solo);
                }
            }
            // Share of queries the block-at-a-time executor served, as a
            // percentage (gauges are integral).
            let block = self.block_queries_total.load(Ordering::Relaxed);
            let scalar = self.scalar_queries_total.load(Ordering::Relaxed);
            let total = block + scalar;
            registry
                .gauge("esdb_block_exec_hit_ratio_percent", Labels::none())
                .set((block * 100).checked_div(total).unwrap_or(0) as i64);
        }
        self.telemetry.snapshot()
    }

    /// Per-shard live-doc counts (for balance inspection).
    pub fn shard_doc_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|slot| slot.engine.read().stats().live_docs)
            .collect()
    }
}

/// Applies one write operation through the shared pipeline: route,
/// submit a one-op group to the shard's commit queue, surface the
/// per-op error exactly as the legacy exclusive path did. The single-op
/// twin of [`write_batch_shared`] — same grouped apply, same
/// monitor/stats accounting (both live in [`drain_write_queue`]).
fn write_one(ws: &WriteState, op: WriteOp) -> Result<ShardId> {
    let t0 = ws.timers.as_ref().map(|_| Instant::now());
    let (tenant, record, created_at) = op.routing();
    // The permit covers route → apply, so a migration cutover switching
    // placements can barrier until no write is between the two. It must
    // be released before the rebalance hook: the claiming writer may
    // run the cutover itself, and the barrier waits on permits.
    let permit = ws.migrations.begin_write();
    let shard = ws.router.route(tenant, record, created_at);
    let out = submit_group(ws, shard, vec![op], false, 0);
    drop(permit);
    if let Some(e) = out.first_err {
        return Err(e);
    }
    if let (Some(t), Some(t0)) = (&ws.timers, t0) {
        t.write_total.record(elapsed_ns(t0));
    }
    maybe_rebalance_shared(ws);
    Ok(shard)
}

/// Routes a flushed batch into per-shard groups and submits each group
/// through the shared pipeline — groups for different shards run
/// concurrently on the executor, each colliding with (and coalescing
/// into) whatever other writers are hitting its shard.
fn write_batch_shared(
    ws: &WriteState,
    executor: &Executor,
    ops: Vec<WriteOp>,
) -> Result<BatchApplied> {
    let t0 = ws.timers.as_ref().map(|_| Instant::now());
    // Same tail-capture split as the query path: every batch buffers a
    // span tree when tail capture is on; only head-sampled batches feed
    // the per-stage histograms.
    let (capture, sampled) = ws.telemetry.trace_decision();
    let trace = capture.then(QueryTrace::new);
    // Route every op up front into a pre-sized bucket table indexed by
    // shard — O(ops) assembly no matter how many shards are hit.
    // Grouping preserves arrival order within each shard, which is all
    // replay semantics require (cross-shard order carries no meaning
    // once routed).
    let mut buckets: Vec<Vec<WriteOp>> = Vec::new();
    buckets.resize_with(ws.n_shards as usize, Vec::new);
    // One permit for the whole batch: routing below and application on
    // the executor both happen under it, so no op of the batch can
    // straddle a migration cutover's placement switch. Released before
    // the rebalance hook (the barrier waits on permits).
    let permit = ws.migrations.begin_write();
    {
        let _span = trace.as_ref().map(|t| t.span("batch_group", 0));
        for op in ops {
            let (tenant, record, created_at) = op.routing();
            let shard = ws.router.route(tenant, record, created_at);
            buckets[shard.index()].push(op);
        }
    }
    // `Executor::map` hands the closure `&T`, but each group must be
    // *moved* into its submission; a take-cell per group bridges the
    // gap. Bucket order keeps `per_shard` ascending by shard.
    let groups: Vec<(ShardId, Mutex<Option<Vec<WriteOp>>>)> = buckets
        .into_iter()
        .enumerate()
        .filter(|(_, ops)| !ops.is_empty())
        .map(|(s, ops)| (ShardId(s as u32), Mutex::new(Some(ops))))
        .collect();
    let trace_ref = trace.as_ref();
    let trace_id = trace_ref.map_or(0, QueryTrace::trace_id);
    // Each group applies as far as it can; a failing op stops its own
    // shard's group but other shards still land and are accounted.
    let outcomes: Vec<GroupOutcome> = executor.map(&groups, |_, (shard, cell)| {
        let _span = trace_ref.map(|t| t.span_for_shard("apply", 0, Some(shard.0)));
        let ops = cell.lock().take().expect("each group is submitted once");
        submit_group(ws, *shard, ops, true, trace_id)
    });
    drop(permit);
    let mut applied = BatchApplied::default();
    let mut first_err = None;
    for ((shard, _), out) in groups.iter().zip(outcomes) {
        applied.total += out.applied;
        applied.per_shard.push((*shard, out.applied));
        if first_err.is_none() {
            first_err = out.first_err;
        }
    }
    if let (Some(t), Some(t0)) = (&ws.timers, t0) {
        t.batch_total.record(elapsed_ns(t0));
    }
    if let Some(trace) = trace {
        if sampled {
            ws.telemetry
                .record_stages("esdb_write_stage_ns", &trace.into_samples());
        }
    }
    maybe_rebalance_shared(ws);
    // The first error (by shard order) surfaces only after every
    // group's outcome has been counted — no silent partial batches.
    match first_err {
        Some(e) => Err(e),
        None => Ok(applied),
    }
}

/// Submits one op group to `shard`'s commit queue and drives it to
/// completion. The submitter parks its group, then loops: outcome
/// ready → done; engine lock free → become the leader and drain the
/// queue (its own group included); otherwise block briefly on the
/// completion cell and re-check. The timeout covers the race where a
/// push lands just after a finishing leader's final drain — the waiter
/// wakes and wins the now-free lock instead of sleeping forever.
fn submit_group(
    ws: &WriteState,
    shard: ShardId,
    ops: Vec<WriteOp>,
    stop_on_error: bool,
    trace_id: u64,
) -> GroupOutcome {
    let slot = &ws.shards[shard.index()];
    let done = Arc::new(GroupDone::default());
    {
        let mut q = slot.write_queue.lock();
        q.push_back(PendingGroup {
            ops,
            stop_on_error,
            done: Arc::clone(&done),
        });
    }
    let mut wait_t0: Option<Instant> = None;
    loop {
        if let Some(out) = done.try_take() {
            record_lock_wait(ws, &mut wait_t0);
            return out;
        }
        if let Some(mut engine) = slot.engine.try_write() {
            let waited_ns = record_lock_wait(ws, &mut wait_t0);
            let t0 = Instant::now();
            drain_write_queue(ws, shard, &mut engine, waited_ns, trace_id);
            slot.busy_micros
                .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            drop(engine);
            // Our group was either still parked (we just applied it) or
            // a previous leader — which held the lock until it completed
            // every group it took — already set the cell.
            return done.try_take().expect("leader drained its own group");
        }
        // First failed acquisition: the submission is contended, start
        // the wait clock. Uncontended submissions never read the clock,
        // keeping the telemetry-on fast path free of per-op timing.
        if wait_t0.is_none() {
            wait_t0 = ws.timers.as_ref().map(|_| Instant::now());
        }
        if let Some(out) = done.wait() {
            record_lock_wait(ws, &mut wait_t0);
            return out;
        }
    }
}

/// Charges a contended submission's block-to-resolution wait to the
/// lock-wait histogram, at most once (`take` empties the cell). Returns
/// the recorded wait in nanoseconds (0 when uncontended), so a leader
/// can stamp its drain's journal event and slow-write entry with it.
fn record_lock_wait(ws: &WriteState, wait_t0: &mut Option<Instant>) -> u64 {
    if let (Some(t), Some(t0)) = (&ws.timers, wait_t0.take()) {
        let ns = elapsed_ns(t0);
        t.lock_wait.record(ns);
        ns
    } else {
        0
    }
}

/// Drains `shard`'s commit queue under the caller's engine-lock hold:
/// applies every parked group (one translog append batch per group),
/// does the full monitor/stats accounting, and completes each
/// submitter's cell. Loops until the queue is observed empty, so every
/// writer that parked behind this leader is served by the same lock
/// acquisition — hot-shard contention becomes batching.
fn drain_write_queue(
    ws: &WriteState,
    shard: ShardId,
    engine: &mut ShardEngine,
    leader_wait_ns: u64,
    trace_id: u64,
) {
    let slot = &ws.shards[shard.index()];
    loop {
        let groups: Vec<PendingGroup> = slot.write_queue.lock().drain(..).collect();
        if groups.is_empty() {
            return;
        }
        let n_groups = groups.len() as u32;
        let total: u64 = groups.iter().map(|g| g.ops.len() as u64).sum();
        let drain_t0 = ws.timers.as_ref().map(|_| Instant::now());
        if let Some(t) = &ws.timers {
            if total == 1 {
                // Uncontended single-op drain: one relaxed add; flushed
                // into the histogram lazily by `telemetry_snapshot`.
                t.solo_drains.fetch_add(1, Ordering::Relaxed);
            } else {
                t.group_size.record(total);
            }
        }
        let mut translog_bytes = 0u64;
        for group in groups {
            let results = engine.apply_group(&group.ops, group.stop_on_error);
            let mut applied = 0usize;
            let mut first_err = None;
            // Only the ops that actually applied count toward the
            // monitor and the write totals; a stopped group's
            // unattempted tail counts toward neither total.
            for (op, r) in group.ops.iter().zip(results) {
                match r {
                    Ok(()) => {
                        applied += 1;
                        let (tenant, _, _) = op.routing();
                        let bytes = op.doc.approx_size() as u64;
                        translog_bytes += bytes;
                        // Migration tail capture, at the op's success
                        // point: while a handoff is in flight, pre-rule
                        // ops that just landed at an old placement are
                        // recorded (with the shard they hit) so cutover
                        // can re-route them. One atomic load when no
                        // migration is active.
                        if ws.migrations.any_active() {
                            ws.migrations.capture(op, shard.0);
                        }
                        ws.monitor.record_write(
                            tenant,
                            shard,
                            NodeId(shard.0 % ws.node_count),
                            bytes,
                        );
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            ws.writes_total.fetch_add(applied as u64, Ordering::Relaxed);
            ws.writes_since_balance
                .fetch_add(applied as u64, Ordering::Relaxed);
            if first_err.is_some() {
                ws.write_errors_total.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &ws.timers {
                    t.write_errors.inc();
                }
            }
            group.done.set(GroupOutcome { applied, first_err });
        }
        if let (Some(t), Some(t0)) = (&ws.timers, drain_t0) {
            let drain_ns = elapsed_ns(t0);
            t.drain_total.record(drain_ns);
            // Contended drains (more than one op coalesced) are the
            // interesting group-commit signal; solo drains stay off the
            // journal so the uncontended fast path adds no lock work.
            if total > 1 {
                ws.telemetry.emit(
                    EventKind::GroupCommitDrain {
                        shard: shard.0,
                        groups: n_groups,
                        ops: total as u32,
                        lock_wait_ns: leader_wait_ns,
                    },
                    Labels::shard(shard.0),
                    NO_PARENT,
                );
            }
            if drain_ns >= ws.telemetry.slow_write_threshold_ns() {
                ws.telemetry.log_slow_write(SlowWriteEntry {
                    trace_id,
                    shard: shard.0,
                    group_size: n_groups,
                    ops: total as u32,
                    lock_wait_ns: leader_wait_ns,
                    translog_bytes,
                    total_ns: drain_ns,
                });
            }
        }
    }
}

/// Claims a balancing epoch if one is due: the writer whose
/// compare-exchange resets the counter runs the pass; everyone else
/// carries on immediately. At most one writer balances per epoch and no
/// writer ever waits on another's pass.
fn maybe_rebalance_shared(ws: &WriteState) {
    if ws.balance_every_writes == 0 {
        return;
    }
    loop {
        let n = ws.writes_since_balance.load(Ordering::Acquire);
        if n < ws.balance_every_writes {
            return;
        }
        if ws
            .writes_since_balance
            .compare_exchange(n, 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            rebalance_pass(ws);
            return;
        }
    }
}

/// One balancing pass (Algorithm 1 runtime phase): harvest the monitor
/// window, ask the balancer for grow-rules, commit them effective now
/// for *future* records. Takes no engine lock — writers keep flowing
/// while rules change under them.
fn rebalance_pass(ws: &WriteState) -> usize {
    if !ws.dynamic_routing {
        return 0;
    }
    // Journal the epoch bracket so the flight recorder shows who claimed
    // the pass and what it committed; the rule events parent onto the
    // balancer's hot-tenant detections.
    let claim = ws.telemetry.enabled().then(|| {
        let epoch = ws.rebalance_epochs.fetch_add(1, Ordering::Relaxed) + 1;
        let seq = ws.telemetry.emit(
            EventKind::RebalanceEpochClaimed { epoch },
            Labels::none(),
            NO_PARENT,
        );
        (epoch, seq)
    });
    let period = ws.monitor.take_period();
    let proposals = ws.balancer.lock().on_period(&period);
    let committed = proposals.len();
    if committed > 0 {
        let t = ws.clock.now();
        // Commit-wait (§4.2 on the live clock): the rule activates at
        // `commit + wait`, so every participant — however skewed within
        // the wait — agrees on which side of the rule a record falls
        // before any record can carry a timestamp past it.
        let t_eff = t + ws.commit_wait_ms;
        let commit_t0 = claim.map(|_| Instant::now());
        let mut rules = ws.rules.write();
        // Spans before the commit, read under the same write-lock hold
        // so the old→new transition is exact.
        let old_spans: Vec<u32> = proposals
            .iter()
            .map(|p| rules.offset_for_write(p.tenant, t))
            .collect();
        LoadBalancer::commit_direct(&proposals, &mut rules, t_eff);
        drop(rules);
        let commit_wait_ns = commit_t0.map_or(0, elapsed_ns);
        for (p, old_span) in proposals.iter().zip(old_spans) {
            // Durable before acted on: a crash from here on replays the
            // rule at open, so acked writes routed by it stay routable.
            let _ = ws.rules_log.append_rule(p.tenant, p.offset, t_eff);
            let started_seq = if claim.is_some() {
                let rule_seq = ws.telemetry.emit(
                    EventKind::RuleAppended {
                        tenant: p.tenant.0,
                        old_span,
                        new_span: p.offset,
                        commit_wait_ns,
                    },
                    Labels::tenant(p.tenant.0),
                    p.detected_seq,
                );
                ws.telemetry.emit(
                    EventKind::MigrationStarted {
                        tenant: p.tenant.0,
                        old_span,
                        new_span: p.offset,
                        effective_time: t_eff,
                    },
                    Labels::tenant(p.tenant.0),
                    rule_seq,
                )
            } else {
                NO_PARENT
            };
            // The committed rule becomes a live migration: the tenant's
            // pre-rule rows will be handed off to the widened span.
            ws.migrations.register(MigrationEntry {
                tenant: p.tenant,
                old_span,
                new_span: p.offset,
                effective_time: t_eff,
                last_seq: started_seq,
                phase: MigrationPhase::CommitWait,
                plan: None,
                tail: Vec::new(),
                capturing: false,
                overflowed: false,
                needs_recovery: false,
                rows_moved: 0,
                bytes_shipped: 0,
                segments_shipped: 0,
                tail_ops: 0,
            });
        }
    }
    if let Some((epoch, claim_seq)) = claim {
        ws.telemetry.emit(
            EventKind::RebalanceEpochCompleted {
                epoch,
                rules_committed: committed as u32,
            },
            Labels::none(),
            claim_seq,
        );
    }
    // Advance every live migration one lifecycle phase. Each pass moves
    // commit-wait → handoff/draining, and the next pass performs the
    // cutover, so a migration completes within two rebalance epochs
    // without any writer ever blocking on the export.
    step_migrations(ws);
    committed
}

/// Advances every live migration one lifecycle phase. Serialized by the
/// table's step lock (`try_lock`: concurrent epochs skip stepping, they
/// never wait), so each phase transition runs exactly once.
fn step_migrations(ws: &WriteState) {
    let Some(_step) = ws.migrations.step_lock.try_lock() else {
        return;
    };
    // Snapshot the active tenants; the entries lock is never held
    // across engine work (the write path's capture hook needs it).
    let pending: Vec<TenantId> = ws
        .migrations
        .entries()
        .iter()
        .filter(|e| e.phase.is_active())
        .map(|e| e.tenant)
        .collect();
    for tenant in pending {
        step_one_migration(ws, tenant);
    }
}

/// One phase transition for one tenant's migration.
fn step_one_migration(ws: &WriteState, tenant: TenantId) {
    let (phase, t_eff, new_span, overflowed, needs_recovery) = {
        let entries = ws.migrations.entries();
        let Some(e) = entries
            .iter()
            .find(|e| e.tenant == tenant && e.phase.is_active())
        else {
            return;
        };
        (
            e.phase,
            e.effective_time,
            e.new_span,
            e.overflowed,
            e.needs_recovery,
        )
    };
    match phase {
        MigrationPhase::CommitWait => {
            // Nothing moves until the live clock passes the rule's
            // activation timestamp: after that, no new record can carry
            // a timestamp on the old side of the rule.
            if ws.clock.now() >= t_eff {
                begin_handoff(ws, tenant, t_eff, new_span);
            }
        }
        MigrationPhase::Handoff | MigrationPhase::Draining => {
            if overflowed {
                abort_migration(ws, tenant);
            } else {
                perform_cutover(ws, tenant, t_eff, new_span);
            }
        }
        MigrationPhase::Cutover => {
            // Only reachable when a cutover attempt failed *after* its
            // durable intent was logged: completion is owed, run the
            // idempotent logical completion (retried every step until
            // it lands).
            if needs_recovery {
                if let Ok(rows) = complete_cutover_by_scan(ws, tenant, new_span, t_eff) {
                    finish_migration_done(ws, tenant, rows, 0, 0);
                }
            }
        }
        MigrationPhase::Done | MigrationPhase::Aborted => {}
    }
}

/// Commit-wait elapsed → export the tenant's pre-rule rows into
/// per-destination shipped segments while writes keep flowing.
fn begin_handoff(ws: &WriteState, tenant: TenantId, t_eff: TimestampMs, new_span: u32) {
    // 1. Tail capture on FIRST: a pre-rule write landing between here
    //    and the snapshot pins appears in both the export and the tail,
    //    and re-applying it at cutover is idempotent. The reverse order
    //    would lose writes that land just after the pin.
    {
        let mut entries = ws.migrations.entries();
        let Some(e) = entries
            .iter_mut()
            .find(|e| e.tenant == tenant && e.phase.is_active())
        else {
            return;
        };
        e.phase = MigrationPhase::Handoff;
        e.capturing = true;
    }
    // 2. The widened span covers every historical placement
    //    (consecutive spans nest) and `now >= effective_time`, so the
    //    current read span is the full source set.
    let source_shards: Vec<ShardId> = ws.router.span(tenant, ws.clock.now()).iter().collect();
    // 3. Refresh sources so buffered rows are in the pinned snapshots,
    //    then export — per-destination segments built entirely outside
    //    the engine locks.
    for s in &source_shards {
        ws.shards[s.index()].with_write(|e| e.refresh());
    }
    let sources: Vec<(u32, Arc<ShardSnapshot>)> = source_shards
        .iter()
        .map(|s| (s.0, ws.shards[s.index()].snapshots.pin()))
        .collect();
    let mut indexed: FastSet<String> = fast_set();
    for (_, snap) in &sources {
        for attr in snap.indexed_attrs() {
            indexed.insert(attr.clone());
        }
    }
    let n = ws.n_shards;
    let plan = build_handoff(&sources, &ws.schema, &indexed, tenant, t_eff, &|d| {
        place(tenant, d.record_id, new_span, n).0
    });
    // 4. Stage the plan; the migration drains its tail until cutover.
    let segments = plan.shipments.len() as u32;
    let (rows, bytes) = (plan.rows_total, plan.bytes_total);
    let mut entries = ws.migrations.entries();
    let Some(e) = entries
        .iter_mut()
        .find(|e| e.tenant == tenant && e.phase.is_active())
    else {
        return;
    };
    if ws.telemetry.enabled() {
        e.last_seq = ws.telemetry.emit(
            EventKind::MigrationSegmentsShipped {
                tenant: tenant.0,
                segments,
                rows,
                bytes,
            },
            Labels::tenant(tenant.0),
            e.last_seq,
        );
    }
    e.segments_shipped = segments;
    e.bytes_shipped = bytes;
    e.plan = Some(plan);
    e.phase = MigrationPhase::Draining;
}

/// The cutover: barrier writes, make the placement switch durable and
/// visible, release. Readers that overlap the window retry (the
/// migration version is bumped on entry and exit).
fn perform_cutover(ws: &WriteState, tenant: TenantId, t_eff: TimestampMs, new_span: u32) {
    let t0 = Instant::now();
    // No new write permits; wait out the in-flight ones. On return, no
    // write is between routing and apply anywhere.
    ws.migrations.close_write_barrier();
    ws.migrations.bump_version();
    // Durable intent: once this line is synced, completion is
    // inevitable — a crash re-runs the idempotent completion at open.
    // A failed sync aborts instead: nothing has moved yet.
    if ws
        .rules_log
        .append_cutover(tenant, new_span, t_eff)
        .is_err()
    {
        ws.migrations.bump_version();
        ws.migrations.open_write_barrier();
        abort_migration(ws, tenant);
        return;
    }
    let (plan, tail) = {
        let mut entries = ws.migrations.entries();
        let Some(e) = entries
            .iter_mut()
            .find(|e| e.tenant == tenant && e.phase.is_active())
        else {
            ws.migrations.bump_version();
            ws.migrations.open_write_barrier();
            return;
        };
        e.capturing = false;
        e.phase = MigrationPhase::Cutover;
        (e.plan.take(), std::mem::take(&mut e.tail))
    };
    let plan = plan.unwrap_or(HandoffPlan {
        shipments: Vec::new(),
        exported: Vec::new(),
        rows_total: 0,
        bytes_total: 0,
    });
    let tail_ops = tail.len() as u64;
    match apply_cutover(ws, tenant, new_span, plan, &tail) {
        Ok(rows_moved) => {
            ws.migrations.bump_version();
            ws.migrations.open_write_barrier();
            finish_migration_done(ws, tenant, rows_moved, tail_ops, elapsed_ns(t0));
        }
        Err(_) => {
            // The intent is durable, so completion is owed. Release the
            // barrier for liveness and flag the entry: the next step —
            // or the next open — runs the logical completion.
            {
                let mut entries = ws.migrations.entries();
                if let Some(e) = entries
                    .iter_mut()
                    .find(|e| e.tenant == tenant && e.phase.is_active())
                {
                    e.needs_recovery = true;
                }
            }
            ws.migrations.bump_version();
            ws.migrations.open_write_barrier();
        }
    }
}

/// The cutover body, runnable only inside the closed write barrier:
/// adopt shipments, re-route the captured tail, flush destinations
/// durable, tombstone sources, switch routing.
fn apply_cutover(
    ws: &WriteState,
    tenant: TenantId,
    new_span: u32,
    plan: HandoffPlan,
    tail: &[(WriteOp, u32)],
) -> Result<u64> {
    let HandoffPlan {
        shipments,
        exported,
        rows_total,
        ..
    } = plan;
    let mut rows_moved = rows_total;
    let mut dests: FastSet<u32> = fast_set();
    // 1. Destinations adopt the shipped segments: searchable in their
    //    published views immediately, durable at the flush below.
    for s in shipments {
        let dest = s.dest;
        ws.shards[dest as usize].with_write(|e| e.adopt_segment(s.segment));
        dests.insert(dest);
    }
    // 2. Re-apply the captured tail at the new placement, in capture
    //    order. Ops already at their new home are left alone; moved
    //    inserts/updates queue a tombstone for their source copy,
    //    deletes propagate to the (possibly shipped) destination copy.
    let mut source_dels: Vec<(u32, WriteOp)> = Vec::new();
    for (op, applied_shard) in tail {
        let (k1, k2, tc) = op.routing();
        let dest = place(k1, k2, new_span, ws.n_shards).0;
        if dest == *applied_shard {
            continue;
        }
        ws.shards[dest as usize].with_write(|e| e.apply(op))?;
        dests.insert(dest);
        rows_moved += 1;
        if !matches!(op.kind, WriteKind::Delete) {
            source_dels.push((*applied_shard, WriteOp::delete(k1, k2, tc)));
        }
    }
    // 3. Destinations durable BEFORE any source copy disappears — every
    //    row has at least one durable home at every instant. (Flush
    //    refreshes internally, so adopted segments and tail rows become
    //    visible and persisted together.)
    for d in &dests {
        ws.shards[*d as usize].with_write(|e| e.flush())?;
    }
    // 4. Tombstone every copy that left a source shard.
    let mut sources: FastSet<u32> = fast_set();
    for (src, op) in &source_dels {
        ws.shards[*src as usize].with_write(|e| e.apply(op))?;
        sources.insert(*src);
    }
    for ex in &exported {
        for (rid, created_at) in &ex.rows {
            let del = WriteOp::delete(tenant, RecordId(*rid), *created_at);
            ws.shards[ex.source as usize].with_write(|e| e.apply(&del))?;
        }
        sources.insert(ex.source);
    }
    for s in &sources {
        ws.shards[*s as usize].with_write(|e| e.flush())?;
    }
    // 5. Routing switch: `offset_for_write` now returns the migrated
    //    offset for ANY creation time, so point ops on pre-rule records
    //    route to their new placement. Then the durable completion.
    ws.rules.write().mark_migrated(tenant, new_span);
    let _ = ws.rules_log.append_migrated(tenant, new_span);
    Ok(rows_moved)
}

/// Idempotent logical completion of a cutover whose intent is durable:
/// scan every shard for the tenant's pre-rule rows, move each to its
/// new-span placement, tombstone the rest. Used at open (crash between
/// the `cutover` and `migrated` log lines) and when a live cutover
/// attempt fails mid-flight.
fn complete_cutover_by_scan(
    ws: &WriteState,
    tenant: TenantId,
    new_span: u32,
    t_eff: TimestampMs,
) -> Result<u64> {
    // Everything searchable first: translog recovery leaves rows
    // buffered, and the scan below reads published snapshots.
    for slot in &ws.shards {
        slot.with_write(|e| e.refresh());
    }
    // record → (copy to keep, shards holding a copy). A crash
    // mid-cutover can leave a row at both its source and destination;
    // the destination copy wins — it may carry tail ops the source
    // never saw.
    let mut copies: FastMap<u64, (Document, Vec<u32>)> = fast_map();
    for (i, slot) in ws.shards.iter().enumerate() {
        let shard = i as u32;
        let snap = slot.snapshots.pin();
        let mut seen_here: FastSet<u64> = fast_set();
        for seg in snap.segments() {
            for (_, doc) in seg.live_docs() {
                if doc.tenant_id != tenant || doc.created_at > t_eff {
                    continue;
                }
                let rid = doc.record_id.raw();
                if !seen_here.insert(rid) {
                    continue;
                }
                let entry = copies
                    .entry(rid)
                    .or_insert_with(|| (doc.clone(), Vec::new()));
                entry.1.push(shard);
                if place(tenant, doc.record_id, new_span, ws.n_shards).0 == shard {
                    entry.0 = doc.clone();
                }
            }
        }
    }
    let mut moves: Vec<(u32, WriteOp)> = Vec::new();
    let mut dels: Vec<(u32, WriteOp)> = Vec::new();
    for (_, (doc, holders)) in copies {
        let dest = place(tenant, doc.record_id, new_span, ws.n_shards).0;
        for h in &holders {
            if *h != dest {
                dels.push((*h, WriteOp::delete(tenant, doc.record_id, doc.created_at)));
            }
        }
        if !holders.contains(&dest) {
            moves.push((dest, WriteOp::insert(doc)));
        }
    }
    let rows_moved = moves.len() as u64;
    // Same ordering discipline as the live cutover: destination copies
    // durable before any source copy disappears.
    let mut dests: FastSet<u32> = fast_set();
    for (dest, op) in &moves {
        ws.shards[*dest as usize].with_write(|e| e.apply(op))?;
        dests.insert(*dest);
    }
    for d in &dests {
        ws.shards[*d as usize].with_write(|e| e.flush())?;
    }
    let mut sources: FastSet<u32> = fast_set();
    for (src, op) in &dels {
        ws.shards[*src as usize].with_write(|e| e.apply(op))?;
        sources.insert(*src);
    }
    for s in &sources {
        ws.shards[*s as usize].with_write(|e| e.flush())?;
    }
    ws.rules.write().mark_migrated(tenant, new_span);
    ws.migrations.bump_version();
    let _ = ws.rules_log.append_migrated(tenant, new_span);
    Ok(rows_moved)
}

/// Marks one migration `Done`: journal chain (tail drained → cutover →
/// completed) and the `esdb_migration_*` counters.
fn finish_migration_done(
    ws: &WriteState,
    tenant: TenantId,
    rows_moved: u64,
    tail_ops: u64,
    cutover_ns: u64,
) {
    let (old_span, new_span, parent, segments, bytes) = {
        let mut entries = ws.migrations.entries();
        let Some(e) = entries
            .iter_mut()
            .find(|e| e.tenant == tenant && e.phase.is_active())
        else {
            return;
        };
        e.rows_moved += rows_moved;
        let out = (
            e.old_span,
            e.new_span,
            e.last_seq,
            e.segments_shipped,
            e.bytes_shipped,
        );
        ws.migrations.finish(e, MigrationPhase::Done);
        out
    };
    if ws.telemetry.enabled() {
        let drained = ws.telemetry.emit(
            EventKind::MigrationTailDrained {
                tenant: tenant.0,
                ops: tail_ops,
            },
            Labels::tenant(tenant.0),
            parent,
        );
        let cut = ws.telemetry.emit(
            EventKind::MigrationCutover {
                tenant: tenant.0,
                rows_moved,
                tail_ops,
                cutover_ns,
            },
            Labels::tenant(tenant.0),
            drained,
        );
        ws.telemetry.emit(
            EventKind::MigrationCompleted {
                tenant: tenant.0,
                old_span,
                new_span,
            },
            Labels::tenant(tenant.0),
            cut,
        );
        let registry = ws.telemetry.registry();
        registry
            .counter("esdb_migration_segments_moved_total", Labels::none())
            .add(segments as u64);
        registry
            .counter("esdb_migration_bytes_shipped_total", Labels::none())
            .add(bytes);
        registry
            .counter("esdb_migration_rows_moved_total", Labels::none())
            .add(rows_moved);
        registry
            .counter("esdb_migration_tail_ops_total", Labels::none())
            .add(tail_ops);
        registry
            .histogram("esdb_migration_cutover_ns", Labels::none())
            .record(cutover_ns);
        registry
            .counter("esdb_migration_completed_total", Labels::none())
            .inc();
    }
}

/// Aborts one migration: staged plan and tail dropped, capture off, the
/// balancer re-armed. The committed rule stays — the append-only list
/// keeps the span grown for future records, old rows simply never move,
/// and read-your-writes holds throughout (the read span still covers
/// every historical placement).
fn abort_migration(ws: &WriteState, tenant: TenantId) {
    let (new_span, parent, phase) = {
        let mut entries = ws.migrations.entries();
        let Some(e) = entries
            .iter_mut()
            .find(|e| e.tenant == tenant && e.phase.is_active())
        else {
            return;
        };
        let out = (e.new_span, e.last_seq, e.phase.as_str());
        ws.migrations.finish(e, MigrationPhase::Aborted);
        out
    };
    ws.balancer.lock().on_abort(tenant, new_span);
    ws.migrations.bump_version();
    if ws.telemetry.enabled() {
        ws.telemetry.emit(
            EventKind::MigrationAborted {
                tenant: tenant.0,
                phase,
            },
            Labels::tenant(tenant.0),
            parent,
        );
        ws.telemetry
            .registry()
            .counter("esdb_migration_aborted_total", Labels::none())
            .inc();
    }
}

/// A clone-able write handle over a shared [`Esdb`] instance — the
/// write-side twin of [`EsdbReader`].
///
/// Every clone shares the same shards, per-shard commit queues,
/// router/rules, workload monitor, and atomic write accounting via
/// `Arc`, so N threads ingest concurrently through `&self` methods.
/// Writers routed to different shards proceed fully in parallel;
/// writers colliding on the same hot shard park their groups in that
/// shard's commit queue, and whichever writer holds the engine lock
/// applies everything pending under the one acquisition — one translog
/// append batch and one monitor/stats pass per group, so Zipf-skewed
/// contention degrades into batching instead of a lock convoy.
///
/// Error surfacing, chaos `WriteFault` injection, and write accounting
/// behave identically to [`Esdb::write`]/[`Esdb::write_batch`] — both
/// drive the same shared pipeline.
#[derive(Clone)]
pub struct EsdbWriter {
    state: Arc<WriteState>,
    executor: Executor,
}

impl EsdbWriter {
    /// Inserts a document, returning the shard it was routed to.
    pub fn insert(&self, doc: Document) -> Result<ShardId> {
        self.write(WriteOp::insert(doc))
    }

    /// Updates an existing record (routing triple must match the
    /// original creation time, §4.2).
    pub fn update(&self, doc: Document) -> Result<ShardId> {
        self.write(WriteOp::update(doc))
    }

    /// Deletes a record by routing triple.
    pub fn delete(
        &self,
        tenant: TenantId,
        record: RecordId,
        created_at: TimestampMs,
    ) -> Result<ShardId> {
        self.write(WriteOp::delete(tenant, record, created_at))
    }

    /// Applies a raw write operation.
    pub fn write(&self, op: WriteOp) -> Result<ShardId> {
        write_one(&self.state, op)
    }

    /// Flushes a [`crate::WriteBatcher`]'s coalesced operations through
    /// the shared pipeline (see [`Esdb::write_batch`]).
    pub fn write_batch(&self, batcher: &mut crate::WriteBatcher) -> Result<BatchApplied> {
        write_batch_shared(&self.state, &self.executor, batcher.flush())
    }
}

/// Borrowed view of everything the scatter-gather read path needs,
/// shared by [`Esdb`] and [`EsdbReader`] so both execute byte-identical
/// queries.
struct ReadPath<'a> {
    schema: &'a CollectionSchema,
    n_shards: u32,
    shards: &'a [Arc<ShardSlot>],
    migrations: &'a MigrationTable,
    filter_cache: Option<&'a SegmentFilterCache>,
    request_cache: Option<&'a ShardedCache<RequestCacheKey, Arc<QueryRows>>>,
    executor: &'a Executor,
    router: &'a Router,
    clock: &'a SharedClock,
    queries_total: &'a AtomicU64,
    block_queries_total: &'a AtomicU64,
    scalar_queries_total: &'a AtomicU64,
    telemetry: &'a Telemetry,
    timers: Option<&'a CoreTimers>,
}

impl ReadPath<'_> {
    /// Counts one query against the executor that served it, in both the
    /// instance stats and (when telemetry is on) the metrics registry.
    fn count_exec_path(&self, used_blocks: bool, blocks: &esdb_index::BlockStats) {
        if used_blocks {
            self.block_queries_total.fetch_add(1, Ordering::Relaxed);
        } else {
            self.scalar_queries_total.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t) = self.timers {
            t.record_exec_path(used_blocks, blocks);
        }
    }
}

/// The scatter-gather query pipeline (parse → translate → route → plan →
/// per-shard snapshot execution → gather), lock-free end to end: each
/// shard pins its published snapshot once and never touches the engine
/// lock.
fn run_query(rp: &ReadPath<'_>, sql: &str, opts: QueryOptions) -> Result<QueryRows> {
    let query = translate(parse_sql(sql)?);
    if query.table != rp.schema.name {
        return Err(EsdbError::UnknownCollection(query.table));
    }
    if query.is_aggregate() {
        return Err(EsdbError::Plan(
            "aggregate select lists run through aggregate(), not query()".into(),
        ));
    }
    rp.queries_total.fetch_add(1, Ordering::Relaxed);
    let t0 = rp.timers.map(|_| Instant::now());
    // Tail-based capture: head-sampled queries feed the per-stage
    // histograms; with tail capture on, *every* query buffers its span
    // tree so a slow one keeps the full trace even when unsampled.
    let (capture, sampled) = rp.telemetry.trace_decision();
    let trace = capture.then(QueryTrace::new);
    // Record sub-attribute usage for frequency-based indexing (shared
    // tracker — no engine lock).
    record_attr_usage(&query.filter, rp.shards);
    // Migration fence: the span is read here, the snapshots are pinned
    // later — a cutover between the two could hide rows mid-move. The
    // attempt retries whenever the migration version moves underneath
    // it (bumped on cutover entry AND exit, so any overlap is seen).
    let (merged, plan, fp, use_blocks, fanout) = loop {
        rp.migrations.wait_read_stable();
        let mv0 = rp.migrations.version();
        // Route: the tenant's span when the filter pins `tenant_id`,
        // otherwise every shard. The route and plan stages share clock
        // reads at their boundary and land in one batched push.
        let t_route = trace.as_ref().map(QueryTrace::now_ns);
        let span = match extract_tenant(&query.filter) {
            Some(tenant) => rp.router.span(tenant, rp.clock.now()),
            None => ShardSpan::new(0, rp.n_shards, rp.n_shards),
        };
        // Plan once per query: plans depend only on the filter and the
        // schema, so every shard of the fan-out shares one plan (and one
        // fingerprint annotation).
        let t_plan = trace.as_ref().map(QueryTrace::now_ns);
        let plan = if opts.use_optimizer {
            optimize(&query.filter, rp.schema)
        } else {
            naive_plan(&query.filter)
        };
        if let (Some(t), Some(r0), Some(p0)) = (trace.as_ref(), t_route, t_plan) {
            let end = t.now_ns();
            t.record_span_batch(&[
                ("route", 0, None, r0, p0.saturating_sub(r0)),
                ("plan", 0, None, p0, end.saturating_sub(p0)),
            ]);
        }
        let prepared = PreparedPlan::new(&plan);
        let fp = query_fingerprint(&plan, &query);
        // Executor choice is made once per query, from the plan shape alone:
        // the block path runs whenever it is enabled and every residual
        // predicate is a flat comparison (no nested booleans). Both
        // executors are row-identical by construction — the scalar one stays
        // the always-available equivalence oracle.
        let use_blocks = opts.block_execution && block_eligible(&plan);
        // Scatter: each shard in the span pins its published snapshot and
        // executes independently. The executor returns results in span
        // order, so the gather below is deterministic for any parallelism
        // degree.
        let span_shards: Vec<ShardId> = span.iter().collect();
        let query = &query;
        let prepared = &prepared;
        let trace_ref = trace.as_ref();
        let shard_results: Vec<QueryRows> = rp.executor.map(&span_shards, |_, shard| {
            let slot = &rp.shards[shard.index()];
            let t_busy = Instant::now();
            // Pin once. This is the read path's only synchronization: two
            // ref-count bumps under a sub-microsecond cell lock. Planning,
            // cache probes, posting intersection, and row materialization
            // below all run against the immutable view.
            let snap = slot.snapshots.pin();
            // Tier 2: the whole per-shard result. The generation is read
            // out of the *pinned* snapshot, so key and data always travel
            // together — a concurrent refresh between pin and probe cannot
            // pair the new generation with the old segments (or vice
            // versa).
            let key: RequestCacheKey = (shard.0, snap.search_generation(), fp);
            let hit = rp.request_cache.and_then(|rc| rc.get(&key));
            // The probe/execute boundary is the one per-shard instant the
            // busy-accounting reads can't supply. Head-sampled traces pay
            // the extra clock read for the fine-grained `cache_probe` stage
            // (it feeds the per-stage histograms); capture-only traces keep
            // the coarse tree — every stage a slow query needs — for free.
            let t_probe = trace_ref.filter(|_| sampled).map(QueryTrace::now_ns);
            let rows = match hit {
                Some(hit) => (*hit).clone(),
                None => {
                    // Tier 1: per-segment posting lists of cacheable
                    // sub-plans (namespaced by shard — segment ids repeat
                    // across shards).
                    let ctx = rp.filter_cache.map(|cache| FilterCacheContext {
                        cache,
                        shard: shard.0,
                    });
                    let rows = if use_blocks {
                        execute_prepared_blocks_on_snapshot(
                            query,
                            prepared,
                            snap.as_ref(),
                            ctx.as_ref(),
                        )
                    } else {
                        execute_prepared_on_snapshot(query, prepared, snap.as_ref(), ctx.as_ref())
                    };
                    if let Some(rc) = rp.request_cache {
                        rc.insert(key, Arc::new(rows.clone()), 1);
                    }
                    rows
                }
            };
            // Every shard of the fan-out reports an execute sample — cache
            // hits and empty result sets included — so a gather over k
            // shards always sees exactly k samples and per-shard timing
            // never has holes. Block set operations report their own wall
            // time as a stage, so slow-query traces show where skip-pruning
            // spent (or saved) it. Span boundaries reuse the busy-accounting
            // clock reads (plus one mid read at the probe boundary) and all
            // of this shard's samples land in a single batched push, so tail
            // capture adds one clock read per shard, not one per stage.
            let t_end = Instant::now();
            if let Some(t) = trace_ref {
                let s0 = t.offset_of(t_busy);
                let end = t.offset_of(t_end);
                let sh = Some(shard.0);
                let mut batch = [("", 0, sh, 0, 0); 3];
                let mut n = 0;
                if let Some(probe_end) = t_probe {
                    batch[n] = ("cache_probe", 0, sh, s0, probe_end.saturating_sub(s0));
                    n += 1;
                }
                if use_blocks {
                    let prune = rows.block_prune_ns;
                    batch[n] = ("block_prune", 0, sh, end.saturating_sub(prune), prune);
                    n += 1;
                }
                batch[n] = ("execute", 0, sh, s0, end.saturating_sub(s0));
                n += 1;
                t.record_span_batch(&batch[..n]);
            }
            // Lock-free execution still serves this shard's data, so the
            // time is charged to its busy counter explicitly.
            slot.busy_micros.fetch_add(
                t_end.duration_since(t_busy).as_micros() as u64,
                Ordering::Relaxed,
            );
            rows
        });
        let merged = {
            let _span = trace_ref.map(|t| t.span("gather", 0));
            merge_results(shard_results, query.order_by.as_ref(), query.limit)
        };
        if rp.migrations.version() == mv0 {
            break (merged, plan, fp, use_blocks, span_shards.len() as u32);
        }
    };
    rp.count_exec_path(use_blocks, &merged.blocks);
    let total_ns = t0.map(elapsed_ns);
    if let (Some(t), Some(ns)) = (rp.timers, total_ns) {
        t.query_total.record(ns);
    }
    let trace_id = trace.as_ref().map_or(0, QueryTrace::trace_id);
    let samples = trace.map(QueryTrace::into_samples);
    // Histogram feeding keeps the 1-in-N head-sampling volume; the
    // buffered span tree of an unsampled query exists only to ride
    // along with a slow-log entry (or be dropped for free).
    if sampled {
        if let Some(samples) = &samples {
            rp.telemetry.record_stages("esdb_query_stage_ns", samples);
        }
    }
    // Slow-query detection is always on when telemetry is enabled;
    // under tail capture the span tree is always populated.
    if let Some(ns) = total_ns {
        if ns >= rp.telemetry.slow_threshold_ns() {
            rp.telemetry.log_slow(SlowQueryEntry {
                trace_id,
                sql: sql.to_string(),
                plan: plan.to_string(),
                fingerprint: fp,
                tenant: extract_tenant(&query.filter).map(|t| t.0),
                fanout,
                total_ns: ns,
                stages: samples.unwrap_or_default(),
            });
        }
    }
    Ok(merged)
}

/// The scatter-gather aggregate pipeline. Eligible plans push the
/// aggregation below row materialization: every shard computes mergeable
/// [`AggPartials`] straight from columnar doc values against its pinned
/// snapshot, and the coordinator merges them in span order (keeping
/// MIN/MAX tie-breaking deterministic) before finishing. Ineligible
/// plans — block execution off, nested-boolean residuals, or an
/// aggregate over a column without doc values — fall back to
/// materializing matching rows per shard and aggregating once at the
/// coordinator with the scalar reference semantics. Both paths produce
/// identical rows; only `payload_reads` differs (0 under pushdown).
fn run_agg_query(rp: &ReadPath<'_>, sql: &str, opts: QueryOptions) -> Result<AggResult> {
    let query = translate(parse_sql(sql)?);
    if query.table != rp.schema.name {
        return Err(EsdbError::UnknownCollection(query.table));
    }
    if !query.is_aggregate() {
        return Err(EsdbError::Plan(
            "aggregate() requires an aggregate select list (COUNT/SUM/AVG/MIN/MAX)".into(),
        ));
    }
    rp.queries_total.fetch_add(1, Ordering::Relaxed);
    let t0 = rp.timers.map(|_| Instant::now());
    let (capture, sampled) = rp.telemetry.trace_decision();
    let trace = capture.then(QueryTrace::new);
    record_attr_usage(&query.filter, rp.shards);
    // Same migration fence + retry as `run_query`.
    let (result, plan, fp, pushdown, fanout) = loop {
        rp.migrations.wait_read_stable();
        let mv0 = rp.migrations.version();
        let t_route = trace.as_ref().map(QueryTrace::now_ns);
        let span = match extract_tenant(&query.filter) {
            Some(tenant) => rp.router.span(tenant, rp.clock.now()),
            None => ShardSpan::new(0, rp.n_shards, rp.n_shards),
        };
        let t_plan = trace.as_ref().map(QueryTrace::now_ns);
        let plan = if opts.use_optimizer {
            optimize(&query.filter, rp.schema)
        } else {
            naive_plan(&query.filter)
        };
        if let (Some(t), Some(r0), Some(p0)) = (trace.as_ref(), t_route, t_plan) {
            let end = t.now_ns();
            t.record_span_batch(&[
                ("route", 0, None, r0, p0.saturating_sub(r0)),
                ("plan", 0, None, p0, end.saturating_sub(p0)),
            ]);
        }
        let prepared = PreparedPlan::new(&plan);
        let fp = query_fingerprint(&plan, &query);
        let pushdown = opts.block_execution
            && block_eligible(&plan)
            && aggregate_pushdown_eligible(&query, rp.schema);
        let span_shards: Vec<ShardId> = span.iter().collect();
        let prepared = &prepared;
        let trace_ref = trace.as_ref();
        let result = if pushdown {
            let query_ref = &query;
            let partials: Vec<AggPartials> = rp.executor.map(&span_shards, |_, shard| {
                let slot = &rp.shards[shard.index()];
                let t_busy = Instant::now();
                let snap = slot.snapshots.pin();
                let ctx = rp.filter_cache.map(|cache| FilterCacheContext {
                    cache,
                    shard: shard.0,
                });
                let part = aggregate_prepared_blocks_on_snapshot(
                    query_ref,
                    prepared,
                    snap.as_ref(),
                    ctx.as_ref(),
                );
                // Span boundaries reuse the busy-accounting clock reads:
                // tail capture costs this closure zero extra `now` calls.
                let t_end = Instant::now();
                if let Some(t) = trace_ref {
                    let s0 = t.offset_of(t_busy);
                    let end = t.offset_of(t_end);
                    let sh = Some(shard.0);
                    let prune = part.block_prune_ns;
                    t.record_span_batch(&[
                        ("block_prune", 0, sh, end.saturating_sub(prune), prune),
                        ("execute", 0, sh, s0, end.saturating_sub(s0)),
                    ]);
                }
                slot.busy_micros.fetch_add(
                    t_end.duration_since(t_busy).as_micros() as u64,
                    Ordering::Relaxed,
                );
                part
            });
            let _span = trace_ref.map(|t| t.span("gather", 0));
            let mut merged = AggPartials::default();
            for p in partials {
                merged.merge(p);
            }
            merged.finish(&query.aggregates, query.group_by.is_some())
        } else {
            // The scalar fallback strips the aggregate clauses off the query
            // and materializes every matching row — ORDER BY/LIMIT don't
            // apply below an aggregate, so shards return their full match
            // sets and one reference aggregation runs over the gather.
            let row_query = Query {
                aggregates: Vec::new(),
                group_by: None,
                projection: Vec::new(),
                order_by: None,
                limit: None,
                ..query.clone()
            };
            let row_query = &row_query;
            let shard_rows: Vec<QueryRows> = rp.executor.map(&span_shards, |_, shard| {
                let slot = &rp.shards[shard.index()];
                let t_busy = Instant::now();
                let snap = slot.snapshots.pin();
                let ctx = rp.filter_cache.map(|cache| FilterCacheContext {
                    cache,
                    shard: shard.0,
                });
                let rows =
                    execute_prepared_on_snapshot(row_query, prepared, snap.as_ref(), ctx.as_ref());
                let t_end = Instant::now();
                if let Some(t) = trace_ref {
                    let s0 = t.offset_of(t_busy);
                    let end = t.offset_of(t_end);
                    t.record_span("execute", 0, Some(shard.0), s0, end.saturating_sub(s0));
                }
                slot.busy_micros.fetch_add(
                    t_end.duration_since(t_busy).as_micros() as u64,
                    Ordering::Relaxed,
                );
                rows
            });
            let _span = trace_ref.map(|t| t.span("gather", 0));
            let mut docs = Vec::new();
            let mut out = AggResult::default();
            for rows in shard_rows {
                out.postings_scanned += rows.postings_scanned;
                out.docs_scanned += rows.docs_scanned;
                docs.extend(rows.docs);
            }
            out.payload_reads = docs.len() as u64;
            out.rows = aggregate_rows(&docs, &query.aggregates, query.group_by.as_deref());
            out
        };
        if rp.migrations.version() == mv0 {
            break (result, plan, fp, pushdown, span_shards.len() as u32);
        }
    };
    rp.count_exec_path(pushdown, &result.blocks);
    let total_ns = t0.map(elapsed_ns);
    if let (Some(t), Some(ns)) = (rp.timers, total_ns) {
        t.agg_total.record(ns);
    }
    let trace_id = trace.as_ref().map_or(0, QueryTrace::trace_id);
    let samples = trace.map(QueryTrace::into_samples);
    if sampled {
        if let Some(samples) = &samples {
            rp.telemetry.record_stages("esdb_query_stage_ns", samples);
        }
    }
    if let Some(ns) = total_ns {
        if ns >= rp.telemetry.slow_threshold_ns() {
            rp.telemetry.log_slow(SlowQueryEntry {
                trace_id,
                sql: sql.to_string(),
                plan: plan.to_string(),
                fingerprint: fp,
                tenant: extract_tenant(&query.filter).map(|t| t.0),
                fanout,
                total_ns: ns,
                stages: samples.unwrap_or_default(),
            });
        }
    }
    Ok(result)
}

/// A clone-able, thread-safe read handle over a live [`Esdb`] instance.
///
/// Readers execute the exact same pipeline as [`Esdb::query`] — pinned
/// snapshots, both cache tiers, routing rules, telemetry — without
/// borrowing the instance: a writer thread keeps `&mut Esdb` while any
/// number of reader threads query through their own handles, and
/// neither side ever waits on a shard engine lock.
///
/// The handle captures the cache-enable flags and parallelism degree at
/// creation; routing rules and published snapshots are shared live.
#[derive(Clone)]
pub struct EsdbReader {
    schema: CollectionSchema,
    n_shards: u32,
    shards: Vec<Arc<ShardSlot>>,
    migrations: Arc<MigrationTable>,
    filter_cache: Option<Arc<SegmentFilterCache>>,
    request_cache: Option<Arc<ShardedCache<RequestCacheKey, Arc<QueryRows>>>>,
    executor: Executor,
    router: Arc<Router>,
    clock: SharedClock,
    queries_total: Arc<AtomicU64>,
    block_queries_total: Arc<AtomicU64>,
    scalar_queries_total: Arc<AtomicU64>,
    telemetry: Arc<Telemetry>,
    timers: Option<CoreTimers>,
}

impl EsdbReader {
    /// Executes a SQL query against the shards' published snapshots
    /// (identical semantics to [`Esdb::query`]).
    pub fn query(&self, sql: &str) -> Result<QueryRows> {
        self.query_opts(sql, QueryOptions::default())
    }

    /// Executes SQL with explicit options.
    pub fn query_opts(&self, sql: &str, opts: QueryOptions) -> Result<QueryRows> {
        run_query(&self.read_path(), sql, opts)
    }

    /// Executes an aggregate SQL query (identical semantics to
    /// [`Esdb::aggregate`]).
    pub fn aggregate(&self, sql: &str) -> Result<AggResult> {
        self.aggregate_opts(sql, QueryOptions::default())
    }

    /// Executes an aggregate query with explicit options.
    pub fn aggregate_opts(&self, sql: &str, opts: QueryOptions) -> Result<AggResult> {
        run_agg_query(&self.read_path(), sql, opts)
    }

    /// Point lookup by routing triple (see [`Esdb::get`]).
    pub fn get(
        &self,
        tenant: TenantId,
        record: RecordId,
        created_at: TimestampMs,
    ) -> Option<Document> {
        loop {
            self.migrations.wait_read_stable();
            let v = self.migrations.version();
            let shard = self.router.route(tenant, record, created_at);
            let doc = self.shards[shard.index()]
                .snapshots
                .pin()
                .get_record(record.raw())
                .cloned();
            if self.migrations.version() == v {
                return doc;
            }
        }
    }

    /// Pins the current published snapshot of one shard (see
    /// [`Esdb::pin_snapshot`]).
    pub fn pin_snapshot(&self, shard: ShardId) -> Arc<ShardSnapshot> {
        self.shards[shard.index()].snapshots.pin()
    }

    /// The collection schema.
    pub fn schema(&self) -> &CollectionSchema {
        &self.schema
    }

    fn read_path(&self) -> ReadPath<'_> {
        ReadPath {
            schema: &self.schema,
            n_shards: self.n_shards,
            shards: &self.shards,
            migrations: self.migrations.as_ref(),
            filter_cache: self.filter_cache.as_deref(),
            request_cache: self.request_cache.as_deref(),
            executor: &self.executor,
            router: &self.router,
            clock: &self.clock,
            queries_total: &self.queries_total,
            block_queries_total: &self.block_queries_total,
            scalar_queries_total: &self.scalar_queries_total,
            telemetry: &self.telemetry,
            timers: self.timers.as_ref(),
        }
    }
}

/// Delta of the monotone cache counters; residency (`bytes`, `entries`)
/// stays absolute since those are levels, not totals.
fn cache_delta(current: &CacheStats, base: &CacheStats) -> CacheStats {
    CacheStats {
        hits: current.hits.saturating_sub(base.hits),
        misses: current.misses.saturating_sub(base.misses),
        evictions: current.evictions.saturating_sub(base.evictions),
        bytes: current.bytes,
        entries: current.entries,
    }
}

/// Finds a `tenant_id = <n>` equality that holds for *every* match of the
/// filter (top level or present in every OR branch).
fn extract_tenant(e: &Expr) -> Option<TenantId> {
    match e {
        Expr::Eq(col, v) if col == "tenant_id" => v.as_int().map(|i| TenantId(i as u64)),
        Expr::And(cs) => cs.iter().find_map(extract_tenant),
        Expr::Or(cs) => {
            let tenants: Vec<Option<TenantId>> = cs.iter().map(extract_tenant).collect();
            let first = tenants.first().copied().flatten()?;
            tenants.iter().all(|t| *t == Some(first)).then_some(first)
        }
        _ => None,
    }
}

fn record_attr_usage(e: &Expr, shards: &[Arc<ShardSlot>]) {
    fn collect<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
        match e {
            Expr::AttrEq(name, _) => out.push(name),
            Expr::And(cs) | Expr::Or(cs) => {
                for c in cs {
                    collect(c, out);
                }
            }
            _ => {}
        }
    }
    let mut names = Vec::new();
    collect(e, &mut names);
    if names.is_empty() {
        return;
    }
    // The tracker is shared with each engine (which reads it at refresh
    // to rank attrs), so recording here needs no engine lock.
    for slot in shards {
        let mut tracker = slot.attr_tracker.lock();
        for n in &names {
            tracker.record(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::ManualClock;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-core-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn open(name: &str, cfg: impl FnOnce(EsdbConfig) -> EsdbConfig) -> (Esdb, Arc<ManualClock>) {
        let (clock, driver) = SharedClock::manual(1_000_000);
        let db = Esdb::open_with_clock(
            CollectionSchema::transaction_logs(),
            cfg(EsdbConfig::new(tmpdir(name))),
            clock,
        )
        .unwrap();
        (db, driver)
    }

    fn doc(tenant: u64, record: u64, at: TimestampMs) -> Document {
        Document::builder(TenantId(tenant), RecordId(record), at)
            .field("status", (record % 2) as i64)
            .field("group", (record % 5) as i64)
            .field("auction_title", format!("item number {record}"))
            .build()
    }

    #[test]
    fn insert_refresh_query_roundtrip() {
        let (mut db, _) = open("roundtrip", |c| c);
        for r in 0..50 {
            db.insert(doc(10086, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086 AND status = 1")
            .unwrap();
        assert_eq!(rows.docs.len(), 25);
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 10086 ORDER BY created_time DESC LIMIT 3")
            .unwrap();
        assert_eq!(rows.docs.len(), 3);
        assert_eq!(rows.docs[0].record_id, RecordId(49));
    }

    #[test]
    fn unknown_table_rejected() {
        let (db, _) = open("badtable", |c| c);
        assert!(matches!(
            db.query("SELECT * FROM nope"),
            Err(EsdbError::UnknownCollection(_))
        ));
    }

    #[test]
    fn cold_tenant_stays_on_one_shard() {
        let (mut db, _) = open("cold", |c| c);
        let mut shards = std::collections::HashSet::new();
        for r in 0..20 {
            shards.insert(db.insert(doc(5, r, 2_000 + r)).unwrap());
        }
        assert_eq!(shards.len(), 1, "cold tenant must not spread");
        assert_eq!(db.read_span(TenantId(5)).len, 1);
    }

    #[test]
    fn hot_tenant_spreads_after_rebalance_and_stays_readable() {
        let (mut db, driver) = open("hot", |c| c.shards(16));
        // Hot tenant dominates the monitor window.
        for r in 0..3_000u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        let span = db.read_span(TenantId(777));
        assert!(span.len > 1, "hot tenant should spread, span {span:?}");
        // New writes spread across the span.
        let mut new_shards = std::collections::HashSet::new();
        for r in 10_000..10_200u64 {
            let t = driver.now();
            new_shards.insert(db.insert(doc(777, r, t)).unwrap());
            driver.advance(1);
        }
        assert!(new_shards.len() > 1, "writes should hit multiple shards");
        db.refresh();
        // Read-your-writes: all 2700 old + 200 new rows visible.
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777")
            .unwrap();
        assert_eq!(rows.docs.len(), 2_700 + 200);
    }

    #[test]
    fn updates_route_to_original_shard_after_rule_change() {
        let (mut db, driver) = open("update-after-rule", |c| c.shards(16));
        let created = driver.now() - 1;
        let shard_before = db.insert(doc(42, 1, created)).unwrap();
        // Force a rule for tenant 42 by making it hot.
        for r in 100..2_100u64 {
            db.insert(doc(42, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        assert!(db.read_span(TenantId(42)).len > 1);
        // Update the original record: same routing triple → same shard.
        let shard_after = db
            .update(
                Document::builder(TenantId(42), RecordId(1), created)
                    .field("status", 9i64)
                    .build(),
            )
            .unwrap();
        assert_eq!(
            shard_before, shard_after,
            "update must follow the original rule"
        );
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 42 AND status = 9")
            .unwrap();
        assert_eq!(rows.docs.len(), 1);
        assert_eq!(rows.docs[0].record_id, RecordId(1));
    }

    #[test]
    fn delete_across_rule_change() {
        let (mut db, driver) = open("delete-after-rule", |c| c.shards(16));
        let created = driver.now() - 1;
        db.insert(doc(42, 1, created)).unwrap();
        for r in 100..2_100u64 {
            db.insert(doc(42, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        db.delete(TenantId(42), RecordId(1), created).unwrap();
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 42 AND record_id = 1")
            .unwrap();
        assert!(rows.docs.is_empty(), "deleted record must not resurface");
    }

    #[test]
    fn queries_without_tenant_fan_out_everywhere() {
        let (mut db, _) = open("fanout", |c| c.shards(8));
        for t in 0..20u64 {
            db.insert(doc(t, t, 3_000 + t)).unwrap();
        }
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE status = 0")
            .unwrap();
        assert_eq!(rows.docs.len(), 10);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = tmpdir("persist");
        {
            let mut db = Esdb::open(
                CollectionSchema::transaction_logs(),
                EsdbConfig::new(&dir).shards(4),
            )
            .unwrap();
            for r in 0..40 {
                db.insert(doc(9, r, 5_000 + r)).unwrap();
            }
            db.flush().unwrap();
        }
        let db = Esdb::open(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(4),
        )
        .unwrap();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 9")
            .unwrap();
        assert_eq!(rows.docs.len(), 40, "all rows recovered after reopen");
    }

    #[test]
    fn hashing_and_double_modes_work() {
        let (mut db, _) = open("hashmode", |c| c.routing(RoutingMode::Hashing).shards(8));
        for r in 0..10 {
            db.insert(doc(3, r, 100 + r)).unwrap();
        }
        assert_eq!(db.read_span(TenantId(3)).len, 1);
        assert_eq!(db.rebalance(), 0, "balancer inert outside dynamic mode");

        let (mut db2, _) = open("dblmode", |c| {
            c.routing(RoutingMode::DoubleHashing(4)).shards(8)
        });
        let mut shards = std::collections::HashSet::new();
        for r in 0..50 {
            shards.insert(db2.insert(doc(3, r, 100 + r)).unwrap());
        }
        assert_eq!(db2.read_span(TenantId(3)).len, 4);
        assert!(shards.len() > 1);
    }

    #[test]
    fn stats_reflect_state() {
        let (mut db, _) = open("stats", |c| c.shards(4));
        for r in 0..30 {
            db.insert(doc(1, r, 100 + r)).unwrap();
        }
        let s = db.stats();
        assert_eq!(s.writes, 30);
        assert_eq!(s.buffered_docs, 30);
        assert_eq!(s.live_docs, 0);
        db.refresh();
        let s = db.stats();
        assert_eq!(s.live_docs, 30);
        assert_eq!(s.buffered_docs, 0);
        let total: usize = db.shard_doc_counts().iter().sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn mixed_shard_batch_reports_per_shard_counts() {
        let (mut db, _) = open("mixed-batch", |c| c.shards(8));
        // Many tenants → ops hash to several distinct shards.
        let mut batcher = crate::WriteBatcher::new();
        for t in 0..40u64 {
            batcher.push(WriteOp::insert(doc(t, t, 9_000 + t)));
        }
        assert_eq!(batcher.accepted(), 40);
        let applied = db.write_batch(&mut batcher).unwrap();
        assert_eq!(applied.total, 40);
        assert!(
            applied.per_shard.len() > 1,
            "40 tenants should land on multiple shards: {:?}",
            applied.per_shard
        );
        let sum: usize = applied.per_shard.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, 40);
        // Ascending, unique shard ids.
        let ids: Vec<u32> = applied.per_shard.iter().map(|(s, _)| s.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "per-shard counts sorted and unique");
        // Per-shard counts agree with where the data actually lives.
        assert_eq!(db.stats().writes, 40);
        db.refresh();
        for (shard, n) in &applied.per_shard {
            assert_eq!(
                db.shard_doc_counts()[shard.index()],
                *n,
                "shard {shard:?} holds its batched rows"
            );
        }
    }

    #[test]
    fn batch_and_singles_agree() {
        // The batched write path must land every op on the same shard the
        // one-at-a-time path picks.
        let (mut db_a, _) = open("batch-vs-single-a", |c| c.shards(8));
        let (mut db_b, _) = open("batch-vs-single-b", |c| c.shards(8));
        let mut batcher = crate::WriteBatcher::new();
        for t in 0..30u64 {
            let d = doc(t % 5, t, 4_000 + t);
            batcher.push(WriteOp::insert(d.clone()));
            db_b.insert(d).unwrap();
        }
        db_a.write_batch(&mut batcher).unwrap();
        db_a.refresh();
        db_b.refresh();
        assert_eq!(db_a.shard_doc_counts(), db_b.shard_doc_counts());
    }

    #[test]
    fn parallel_and_sequential_queries_agree() {
        let sqls = [
            "SELECT * FROM transaction_logs WHERE tenant_id = 777 AND status = 1 \
             ORDER BY created_time DESC LIMIT 25",
            "SELECT * FROM transaction_logs WHERE tenant_id = 777 \
             ORDER BY created_time ASC LIMIT 50",
            "SELECT * FROM transaction_logs WHERE status = 0",
        ];
        let (mut db, driver) = open("par-vs-seq", |c| c.shards(16).parallelism(1));
        for r in 0..2_500u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
        }
        db.rebalance();
        driver.advance(10);
        for r in 2_500..2_700u64 {
            let t = driver.now();
            db.insert(doc(777, r, t)).unwrap();
            driver.advance(1);
        }
        db.refresh();
        assert!(
            db.read_span(TenantId(777)).len > 1,
            "span must be parallel-worthy"
        );
        for sql in sqls {
            assert_eq!(db.parallelism(), 1);
            let sequential = db.query(sql).unwrap();
            for degree in [2, 4, 8] {
                db.set_parallelism(degree);
                let parallel = db.query(sql).unwrap();
                assert_eq!(
                    parallel.docs, sequential.docs,
                    "row-identical results required at parallelism {degree} for {sql}"
                );
                assert_eq!(parallel.postings_scanned, sequential.postings_scanned);
                assert_eq!(parallel.docs_scanned, sequential.docs_scanned);
            }
            db.set_parallelism(1);
        }
    }

    #[test]
    fn busy_time_and_parallelism_surface_in_stats() {
        let (mut db, _) = open("busy-stats", |c| c.shards(4).parallelism(2));
        for r in 0..100 {
            db.insert(doc(1, r, 100 + r)).unwrap();
        }
        db.refresh();
        db.query("SELECT * FROM transaction_logs WHERE status = 1")
            .unwrap();
        let s = db.stats();
        assert_eq!(s.parallelism, 2);
        assert_eq!(s.shard_busy_micros.len(), 4);
        // The refresh + fan-out query touched every shard; at least the
        // tenant's write shard must have accumulated busy time.
        assert!(
            s.shard_busy_micros.iter().any(|&m| m > 0),
            "busy counters never advanced: {:?}",
            s.shard_busy_micros
        );
    }

    #[test]
    fn parallel_maintenance_matches_sequential_state() {
        let mk = |name: &str, degree: usize| {
            let (mut db, _) = open(name, |c| c.shards(8).parallelism(degree));
            for r in 0..400u64 {
                db.insert(doc(r % 7, r, 1_000 + r)).unwrap();
            }
            db.refresh();
            for r in 400..800u64 {
                db.insert(doc(r % 7, r, 1_000 + r)).unwrap();
            }
            db.refresh();
            db.merge();
            db.flush().unwrap();
            db
        };
        let seq = mk("maint-seq", 1);
        let par = mk("maint-par", 4);
        assert_eq!(seq.shard_doc_counts(), par.shard_doc_counts());
        let (a, b) = (seq.stats(), par.stats());
        assert_eq!(a.live_docs, b.live_docs);
        assert_eq!(a.segments, b.segments);
    }

    #[test]
    fn query_caches_hit_and_stay_correct_across_deletes() {
        let (mut db, _) = open("cache-deletes", |c| c.shards(4));
        for r in 0..200 {
            db.insert(doc(7, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 7 AND status = 1 \
                   ORDER BY created_time ASC LIMIT 50";
        let first = db.query(sql).unwrap();
        assert_eq!(first.docs.len(), 50);
        let second = db.query(sql).unwrap();
        assert_eq!(second.docs, first.docs);
        let s = db.stats();
        assert!(
            s.request_cache.hits >= 1,
            "repeat query must hit tier 2: {:?}",
            s.request_cache
        );
        assert!(s.filter_cache.entries >= 1, "{:?}", s.filter_cache);
        assert!(s.filter_cache.bytes > 0);
        // Tombstone a matching row *without* a refresh: the generation
        // bump makes the tier-2 entry unreachable and the tier-1 hit is
        // re-filtered through the new liveness.
        db.delete(TenantId(7), RecordId(1), 1_001).unwrap();
        let third = db.query(sql).unwrap();
        assert!(third.docs.iter().all(|d| d.record_id != RecordId(1)));
        assert_eq!(third.docs.len(), 50, "limit refilled from later rows");
        assert_ne!(third.docs, first.docs);
    }

    #[test]
    fn caches_survive_merge_and_sweeps_reap_stale_entries() {
        let (mut db, _) = open("cache-merge", |c| c.shards(2));
        let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 3 AND status = 0";
        // Four same-tier segments on the tenant's shard, so the tiered
        // policy fires.
        for round in 0..4u64 {
            for r in round * 50..(round + 1) * 50 {
                db.insert(doc(3, r, 1_000 + r)).unwrap();
            }
            db.refresh();
        }
        let before = db.query(sql).unwrap();
        db.query(sql).unwrap(); // warm both tiers
        let entries_before = db.stats().filter_cache.entries;
        assert!(entries_before >= 1);
        let merged = db.merge();
        assert!(merged >= 1, "merge policy should fold the segments");
        // The sweep reaped every entry keyed by a merged-away segment and
        // every request result from a superseded generation.
        let s = db.stats();
        assert_eq!(s.request_cache.entries, 0, "{:?}", s.request_cache);
        let after = db.query(sql).unwrap();
        assert_eq!(after.docs.len(), before.docs.len());
        let mut a: Vec<_> = after.docs.iter().map(|d| d.record_id).collect();
        let mut b: Vec<_> = before.docs.iter().map(|d| d.record_id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "merge must not change results");
    }

    #[test]
    fn disabled_caches_restore_uncached_behavior() {
        let (mut db_on, _) = open("cache-on", |c| c.shards(4));
        let (mut db_off, _) = open("cache-off", |c| c.shards(4).query_caches(false));
        for r in 0..150 {
            db_on.insert(doc(9, r, 1_000 + r)).unwrap();
            db_off.insert(doc(9, r, 1_000 + r)).unwrap();
        }
        db_on.refresh();
        db_off.refresh();
        let sqls = [
            "SELECT * FROM transaction_logs WHERE tenant_id = 9 AND status = 0",
            "SELECT * FROM transaction_logs WHERE tenant_id = 9 AND group = 3 \
             ORDER BY created_time DESC LIMIT 10",
            "SELECT * FROM transaction_logs WHERE status = 1",
        ];
        for sql in sqls {
            for _ in 0..2 {
                let a = db_on.query(sql).unwrap();
                let b = db_off.query(sql).unwrap();
                assert_eq!(a.docs, b.docs, "{sql}");
            }
        }
        let s = db_off.stats();
        assert_eq!(s.filter_cache.hits + s.filter_cache.misses, 0);
        assert_eq!(s.filter_cache.entries, 0);
        assert_eq!(s.request_cache.hits + s.request_cache.misses, 0);
        assert_eq!(s.request_cache.entries, 0);
        let s_on = db_on.stats();
        assert!(s_on.request_cache.hits >= sqls.len() as u64);
    }

    #[test]
    fn refresh_invalidates_request_cache() {
        let (mut db, _) = open("cache-refresh", |c| c.shards(2));
        for r in 0..60 {
            db.insert(doc(5, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        let sql = "SELECT * FROM transaction_logs WHERE tenant_id = 5";
        assert_eq!(db.query(sql).unwrap().docs.len(), 60);
        db.query(sql).unwrap();
        assert!(db.stats().request_cache.entries >= 1);
        // New rows become searchable at refresh; the cached result for the
        // old generation must not serve.
        for r in 60..90 {
            db.insert(doc(5, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        assert_eq!(db.stats().request_cache.entries, 0, "sweep reaped stale");
        assert_eq!(db.query(sql).unwrap().docs.len(), 90);
    }

    #[test]
    fn telemetry_snapshot_traces_and_slow_log() {
        let (mut db, _) = open("telemetry-on", |c| {
            c.shards(4).telemetry_config(TelemetryConfig {
                trace_sample_every: 1,      // trace every request
                slow_query_threshold_us: 0, // every query is "slow"
                ..TelemetryConfig::default()
            })
        });
        for r in 0..40 {
            db.insert(doc(r % 6, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        // Tenantless fan-out: hits all 4 shards, most return few/no rows.
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE status = 1")
            .unwrap();
        assert!(!rows.docs.is_empty());
        let snap = db.telemetry_snapshot();
        let totals = snap
            .histograms
            .iter()
            .find(|(n, _, _)| n == "esdb_query_total_ns")
            .expect("query total histogram");
        assert_eq!(totals.2.count(), 1);
        assert!(snap
            .histograms
            .iter()
            .any(|(n, _, _)| n == "esdb_write_total_ns"));
        assert!(snap
            .gauges
            .iter()
            .any(|(n, _, _)| n == "esdb_shard_busy_micros"));
        // The slow log (threshold 0) captured the query with its trace.
        let slow = db.slow_queries();
        assert_eq!(slow.len(), 1);
        let entry = &slow[0];
        assert_eq!(entry.fanout, 4);
        assert_eq!(entry.tenant, None);
        assert!(entry.plan.contains("Filter") || !entry.plan.is_empty());
        // Every shard of the fan-out reported an execute sample even
        // though some shards contributed zero rows.
        let execs: Vec<u32> = entry
            .stages
            .iter()
            .filter(|s| s.stage == "execute")
            .filter_map(|s| s.shard)
            .collect();
        assert_eq!(execs.len(), 4, "one execute sample per shard: {execs:?}");
        for stage in ["route", "plan", "cache_probe", "gather"] {
            assert!(
                entry.stages.iter().any(|s| s.stage == stage),
                "missing {stage} stage in {:?}",
                entry.stages
            );
        }
    }

    #[test]
    fn telemetry_disabled_records_nothing_extra() {
        let (mut db, _) = open("telemetry-off", |c| c.shards(4).telemetry(false));
        for r in 0..20 {
            db.insert(doc(1, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
            .unwrap();
        let snap = db.telemetry_snapshot();
        assert!(snap.histograms.is_empty(), "no latency histograms when off");
        assert!(snap.gauges.is_empty(), "no injected gauges when off");
        // The monitor still records into the shared registry (balancing
        // depends on it), so counter series remain.
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, _)| n == "esdb_monitor_writes_total"));
        assert!(db.slow_queries().is_empty());
    }

    #[test]
    fn take_stats_returns_deltas() {
        let (mut db, _) = open("take-stats", |c| c.shards(4));
        for r in 0..10 {
            db.insert(doc(1, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
            .unwrap();
        let first = db.take_stats();
        assert_eq!(first.writes, 10);
        assert_eq!(first.queries, 1);
        assert_eq!(first.live_docs, 10, "levels stay absolute");
        for r in 10..15 {
            db.insert(doc(1, r, 1_000 + r)).unwrap();
        }
        let second = db.take_stats();
        assert_eq!(second.writes, 5, "delta since previous take");
        assert_eq!(second.queries, 0);
        assert_eq!(second.live_docs, 10, "levels stay absolute");
        assert!(
            second.shard_busy_micros.iter().sum::<u64>()
                <= first.shard_busy_micros.iter().sum::<u64>()
                    + db.stats().shard_busy_micros.iter().sum::<u64>()
        );
        // Cache *counters* are deltas, residency is a level.
        let warm = db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1");
        warm.unwrap();
        db.query("SELECT * FROM transaction_logs WHERE tenant_id = 1")
            .unwrap();
        let third = db.take_stats();
        assert_eq!(third.queries, 2);
        assert!(third.request_cache.hits >= 1);
        let fourth = db.take_stats();
        assert_eq!(fourth.request_cache.hits, 0, "hit counter drained");
    }

    #[test]
    fn extract_tenant_from_or_branches() {
        use esdb_doc::FieldValue;
        let same = Expr::Or(vec![
            Expr::And(vec![
                Expr::Eq("tenant_id".into(), FieldValue::Int(7)),
                Expr::Eq("status".into(), FieldValue::Int(1)),
            ]),
            Expr::And(vec![
                Expr::Eq("tenant_id".into(), FieldValue::Int(7)),
                Expr::Eq("group".into(), FieldValue::Int(2)),
            ]),
        ]);
        assert_eq!(extract_tenant(&same), Some(TenantId(7)));
        let mixed = Expr::Or(vec![
            Expr::Eq("tenant_id".into(), FieldValue::Int(7)),
            Expr::Eq("tenant_id".into(), FieldValue::Int(8)),
        ]);
        assert_eq!(extract_tenant(&mixed), None, "different tenants → fan out");
    }

    /// Documents with enough typed fields to exercise every aggregate.
    fn rich_doc(tenant: u64, record: u64, at: TimestampMs) -> Document {
        Document::builder(TenantId(tenant), RecordId(record), at)
            .field("status", (record % 3) as i64)
            .field("group", (record % 5) as i64)
            .field("amount", esdb_doc::FieldValue::Float(record as f64 * 1.5))
            .field(
                "province",
                if record % 2 == 0 {
                    "zhejiang"
                } else {
                    "jiangsu"
                },
            )
            .field("auction_title", format!("item number {record}"))
            .build()
    }

    #[test]
    fn block_and_scalar_query_paths_agree_and_are_counted() {
        let (mut db, _) = open("block-vs-scalar", |c| c.shards(4));
        for r in 0..300u64 {
            db.insert(rich_doc(r % 6, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        let sqls = [
            "SELECT * FROM transaction_logs WHERE tenant_id = 1 AND status = 1",
            "SELECT * FROM transaction_logs WHERE status = 2 AND group = 4 \
             ORDER BY created_time DESC LIMIT 20",
            "SELECT * FROM transaction_logs WHERE amount >= 100.5 AND province = 'zhejiang'",
            "SELECT * FROM transaction_logs WHERE MATCH(auction_title, 'number') LIMIT 50",
        ];
        for sql in sqls {
            let block = db.query(sql).unwrap();
            let scalar = db
                .query_opts(
                    sql,
                    QueryOptions {
                        block_execution: false,
                        ..QueryOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(block.docs, scalar.docs, "row identity for {sql}");
        }
        let s = db.stats();
        assert_eq!(s.block_queries, sqls.len() as u64, "{s:?}");
        assert_eq!(s.scalar_queries, sqls.len() as u64, "{s:?}");
        assert_eq!(s.queries, 2 * sqls.len() as u64);
    }

    #[test]
    fn aggregates_match_scalar_oracle_across_shards() {
        let (mut db, _) = open("agg-oracle", |c| c.shards(8));
        for r in 0..500u64 {
            db.insert(rich_doc(r % 7, r, 1_000 + r)).unwrap();
        }
        // Tombstones so liveness filtering is part of the equivalence.
        for r in (0..500u64).step_by(9) {
            db.delete(TenantId(r % 7), RecordId(r), 1_000 + r).unwrap();
        }
        db.refresh();
        let sqls = [
            "SELECT COUNT(*) FROM transaction_logs WHERE status = 1",
            "SELECT COUNT(*), SUM(amount), AVG(amount) FROM transaction_logs \
             WHERE tenant_id = 3",
            "SELECT MIN(created_time), MAX(created_time) FROM transaction_logs \
             WHERE province = 'jiangsu'",
            "SELECT COUNT(*), SUM(amount) FROM transaction_logs \
             WHERE status = 0 GROUP BY province",
            "SELECT COUNT(*), MIN(amount) FROM transaction_logs GROUP BY group",
            "SELECT COUNT(*) FROM transaction_logs WHERE tenant_id = 9999",
        ];
        for sql in sqls {
            let pushed = db.aggregate(sql).unwrap();
            let oracle = db
                .aggregate_opts(
                    sql,
                    QueryOptions {
                        block_execution: false,
                        ..QueryOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(pushed.rows, oracle.rows, "aggregate identity for {sql}");
            assert_eq!(
                pushed.payload_reads, 0,
                "pushdown must not touch stored payloads for {sql}"
            );
        }
        let s = db.stats();
        assert_eq!(s.block_queries, sqls.len() as u64);
        assert_eq!(s.scalar_queries, sqls.len() as u64);
    }

    #[test]
    fn aggregate_api_rejects_mismatched_select_lists() {
        let (mut db, _) = open("agg-guards", |c| c.shards(2));
        db.insert(rich_doc(1, 1, 1_000)).unwrap();
        db.refresh();
        assert!(matches!(
            db.aggregate("SELECT * FROM transaction_logs WHERE status = 1"),
            Err(EsdbError::Plan(_))
        ));
        assert!(matches!(
            db.query("SELECT COUNT(*) FROM transaction_logs WHERE status = 1"),
            Err(EsdbError::Plan(_))
        ));
        // Readers share the same pipeline and guards.
        let reader = db.reader();
        assert!(matches!(
            reader.aggregate("SELECT * FROM transaction_logs"),
            Err(EsdbError::Plan(_))
        ));
        let agg = reader
            .aggregate("SELECT COUNT(*) FROM transaction_logs")
            .unwrap();
        assert_eq!(agg.rows[0].values[0], esdb_doc::FieldValue::Int(1));
    }

    #[test]
    fn block_exec_telemetry_counters_ratio_and_prune_stage() {
        let (mut db, _) = open("block-telemetry", |c| {
            c.shards(4).telemetry_config(TelemetryConfig {
                trace_sample_every: 1,
                slow_query_threshold_us: 0,
                ..TelemetryConfig::default()
            })
        });
        for r in 0..200u64 {
            db.insert(rich_doc(r % 4, r, 1_000 + r)).unwrap();
        }
        db.refresh();
        // An OR of two index lookups plans as a Union — a block set
        // operation, so the posting-block counters advance.
        db.query("SELECT * FROM transaction_logs WHERE status = 1 OR group = 2")
            .unwrap();
        db.aggregate("SELECT COUNT(*), SUM(amount) FROM transaction_logs WHERE status = 0")
            .unwrap();
        let snap = db.telemetry_snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
        };
        assert_eq!(counter("esdb_block_exec_queries_total"), Some(2));
        assert!(
            counter("esdb_block_exec_blocks_scanned_total").unwrap_or(0)
                + counter("esdb_block_exec_blocks_skipped_total").unwrap_or(0)
                + counter("esdb_block_exec_blocks_pruned_total").unwrap_or(0)
                > 0,
            "block counters must account for posting blocks"
        );
        let ratio = snap
            .gauges
            .iter()
            .find(|(n, _, _)| n == "esdb_block_exec_hit_ratio_percent")
            .expect("hit ratio gauge")
            .2;
        assert_eq!(ratio, 100, "both queries took the block path");
        // The sampled trace carried the block_prune stage end to end.
        let slow = db.slow_queries();
        assert!(slow
            .iter()
            .any(|e| e.stages.iter().any(|s| s.stage == "block_prune")));
        // The aggregate total landed in its own histogram.
        assert!(snap
            .histograms
            .iter()
            .any(|(n, _, _)| n == "esdb_aggregate_total_ns"));
        // Exposition stays lint-clean with the new series.
        let text = snap.to_prometheus();
        let errors = esdb_telemetry::lint_prometheus(&text);
        assert!(errors.is_empty(), "prometheus lint errors: {errors:?}");
        // Forcing the scalar path moves the ratio off 100%.
        db.query_opts(
            "SELECT * FROM transaction_logs WHERE status = 1",
            QueryOptions {
                block_execution: false,
                ..QueryOptions::default()
            },
        )
        .unwrap();
        let snap = db.telemetry_snapshot();
        let ratio = snap
            .gauges
            .iter()
            .find(|(n, _, _)| n == "esdb_block_exec_hit_ratio_percent")
            .unwrap()
            .2;
        assert_eq!(ratio, 66, "2 of 3 queries on the block path");
    }

    /// Every copy of every row the hot tenant wrote before `upto`, as
    /// `(record, shards holding it)` — the physical-placement oracle the
    /// migration tests assert collapse with.
    fn physical_copies(db: &Esdb, tenant: u64, records: u64) -> Vec<(u64, Vec<u32>)> {
        let n = db.stats().shard_busy_micros.len() as u32;
        (0..records)
            .map(|r| {
                let holders: Vec<u32> = (0..n)
                    .filter(|s| {
                        db.pin_snapshot(ShardId(*s))
                            .get_record(r)
                            .map_or(false, |d| d.tenant_id == TenantId(tenant))
                    })
                    .collect();
                (r, holders)
            })
            .collect()
    }

    #[test]
    fn live_migration_moves_rows_and_collapses_old_span() {
        let (mut db, _driver) = open("migrate-live", |c| c.shards(16));
        // Distinct creation times: ORDER BY has no ties, so row-identity
        // comparisons are insensitive to which shard each row lives on.
        for r in 0..3_000u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, 900_000 + r)).unwrap();
        }
        db.refresh();
        let before = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC")
            .unwrap();
        // Commit the rule; the same pass starts the migration and ships
        // the segments (commit-wait is 0 on the manual clock).
        db.rebalance();
        let rule = db.rules_snapshot().last().cloned().expect("rule committed");
        assert!(rule.offset > 1);
        assert_eq!(db.drive_migrations(), 1, "one migration to completion");
        let status = db.migrations_snapshot().pop().unwrap();
        assert_eq!(status.phase, MigrationPhase::Done);
        assert_eq!(status.new_span, rule.offset);
        assert!(status.rows_moved > 0, "hot tenant rows physically moved");
        // Old span fully collapsed: every row lives at exactly its
        // new-span placement, nowhere else.
        for (r, holders) in physical_copies(&db, 777, 3_000) {
            if r % 10 >= 9 {
                continue; // other tenants' records
            }
            let dest = place(TenantId(777), RecordId(r), rule.offset, 16).0;
            assert_eq!(holders, vec![dest], "record {r} collapsed to {dest}");
        }
        // Row-identity across the cutover.
        let after = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC")
            .unwrap();
        assert_eq!(before.docs, after.docs, "cutover must not change results");
        // Point reads follow the migrated routing to the new placement.
        assert!(db.get(TenantId(777), RecordId(0), 900_000).is_some());
        // The journal carries the full parent-linked lifecycle chain.
        let events = db.telemetry().journal().tail(usize::MAX);
        let seq_of = |name: &str| events.iter().find(|e| e.kind.name() == name).map(|e| e.seq);
        let parent_of = |name: &str| {
            events
                .iter()
                .find(|e| e.kind.name() == name)
                .map(|e| e.parent_seq)
        };
        for (child, parent) in [
            ("migration_started", "rule_appended"),
            ("migration_segments_shipped", "migration_started"),
            ("migration_tail_drained", "migration_segments_shipped"),
            ("migration_cutover", "migration_tail_drained"),
            ("migration_completed", "migration_cutover"),
        ] {
            assert_eq!(
                parent_of(child).expect(child),
                seq_of(parent).expect(parent),
                "{child} must parent-link to {parent}"
            );
        }
        // Metrics surfaced and exposition stays lint-clean.
        let snap = db.telemetry_snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
        };
        assert_eq!(counter("esdb_migration_completed_total"), Some(1));
        assert!(counter("esdb_migration_rows_moved_total").unwrap_or(0) > 0);
        let errors = esdb_telemetry::lint_prometheus(&snap.to_prometheus());
        assert!(errors.is_empty(), "prometheus lint errors: {errors:?}");
        // The debug bundle renders the terminal migration state.
        let bundle = db.debug_bundle().to_json();
        assert!(bundle.contains("\"phase\": \"done\""), "bundle: {bundle}");
    }

    #[test]
    fn migration_tail_rides_through_cutover() {
        let (mut db, driver) = open("migrate-tail", |c| c.shards(16));
        for r in 0..2_500u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
        }
        db.rebalance(); // rule committed, handoff shipped, now Draining
        let rule = db.rules_snapshot().last().cloned().unwrap();
        // Pre-rule writes racing the drain: created before the rule's
        // effective time, landed after the export — the captured tail.
        for r in 5_000..5_040u64 {
            db.insert(doc(777, r, rule.effective_time - 1)).unwrap();
        }
        driver.advance(10);
        assert_eq!(db.drive_migrations(), 1);
        let status = db.migrations_snapshot().pop().unwrap();
        assert_eq!(status.phase, MigrationPhase::Done);
        assert!(status.tail_ops >= 40, "tail captured: {}", status.tail_ops);
        db.refresh();
        // Tail rows are exactly-once at their new placement.
        for r in 5_000..5_040u64 {
            let dest = place(TenantId(777), RecordId(r), rule.offset, 16).0;
            let holders: Vec<u32> = (0..16u32)
                .filter(|s| db.pin_snapshot(ShardId(*s)).get_record(r).is_some())
                .collect();
            assert_eq!(holders, vec![dest], "tail record {r}");
        }
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777")
            .unwrap();
        assert_eq!(rows.docs.len(), 2_250 + 40, "no loss, no duplication");
    }

    #[test]
    fn migration_abort_leaves_reads_intact_and_rearms_balancer() {
        let (mut db, driver) = open("migrate-abort", |c| c.shards(16));
        for r in 0..2_500u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
        }
        db.refresh();
        let before = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC")
            .unwrap();
        db.rebalance();
        driver.advance(10);
        assert!(db.migrations_snapshot().iter().any(|s| s.phase.is_active()));
        assert_eq!(db.abort_migrations(), 1);
        let status = db.migrations_snapshot().pop().unwrap();
        assert_eq!(status.phase, MigrationPhase::Aborted);
        // The rule stays committed (spans never shrink) and every row is
        // still readable at its old placement.
        assert!(db.read_span(TenantId(777)).len > 1);
        let after = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777 ORDER BY created_time ASC")
            .unwrap();
        assert_eq!(before.docs, after.docs, "abort must not lose rows");
        let events = db.telemetry().journal().tail(usize::MAX);
        assert!(events.iter().any(|e| e.kind.name() == "migration_aborted"));
    }

    #[test]
    fn migration_tail_overflow_aborts_instead_of_cutover() {
        let (mut db, driver) = open("migrate-overflow", |c| {
            c.shards(16).migration_tail_max_ops(0)
        });
        for r in 0..2_500u64 {
            let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
            db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
        }
        db.rebalance(); // Draining, capturing
        let rule = db.rules_snapshot().last().cloned().unwrap();
        // One pre-rule write overflows the zero-length tail bound.
        db.insert(doc(777, 9_999, rule.effective_time - 1)).unwrap();
        driver.advance(10);
        assert_eq!(
            db.drive_migrations(),
            0,
            "overflow must abort, not cut over"
        );
        let status = db.migrations_snapshot().pop().unwrap();
        assert_eq!(status.phase, MigrationPhase::Aborted);
        db.refresh();
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777")
            .unwrap();
        assert_eq!(rows.docs.len(), 2_250 + 1, "acked writes survive the abort");
    }

    #[test]
    fn committed_rules_and_migrations_survive_reopen() {
        let dir = tmpdir("migrate-reopen");
        let (clock, driver) = SharedClock::manual(1_000_000);
        let rule;
        {
            let mut db = Esdb::open_with_clock(
                CollectionSchema::transaction_logs(),
                EsdbConfig::new(&dir).shards(16),
                clock.clone(),
            )
            .unwrap();
            for r in 0..2_500u64 {
                let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
                db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
            }
            db.rebalance();
            driver.advance(10);
            assert_eq!(db.drive_migrations(), 1);
            rule = db.rules_snapshot().last().cloned().unwrap();
            db.flush().unwrap();
        }
        let db = Esdb::open_with_clock(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(16),
            clock,
        )
        .unwrap();
        // The replayed rule list has both the rule and its migrated mark:
        // a point write on an old record routes to the *new* placement.
        assert_eq!(db.rules_snapshot().last().unwrap().offset, rule.offset);
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777")
            .unwrap();
        assert_eq!(rows.docs.len(), 2_250, "all rows visible after reopen");
        for (r, holders) in physical_copies(&db, 777, 2_500) {
            if r % 10 >= 9 {
                continue;
            }
            let dest = place(TenantId(777), RecordId(r), rule.offset, 16).0;
            assert_eq!(holders, vec![dest], "record {r} stays collapsed");
        }
    }

    #[test]
    fn interrupted_cutover_completes_at_open() {
        let dir = tmpdir("migrate-recover");
        let (clock, driver) = SharedClock::manual(1_000_000);
        let rule;
        {
            let mut db = Esdb::open_with_clock(
                CollectionSchema::transaction_logs(),
                EsdbConfig::new(&dir).shards(16),
                clock.clone(),
            )
            .unwrap();
            for r in 0..2_500u64 {
                let tenant = if r % 10 < 9 { 777 } else { 1_000 + r };
                db.insert(doc(tenant, r, driver.now() - 1)).unwrap();
            }
            // Commit the rule but kill the migration before its cutover:
            // rows stay at their old placement, the rule is durable.
            db.rebalance();
            rule = db.rules_snapshot().last().cloned().unwrap();
            db.abort_migrations();
            db.flush().unwrap();
        }
        // Simulate a crash *after* the durable cutover intent was logged
        // but before any row moved: the completion is owed at open.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("rules.log"))
                .unwrap();
            writeln!(f, "cutover {} {} {}", 777, rule.offset, rule.effective_time).unwrap();
        }
        driver.advance(10);
        let db = Esdb::open_with_clock(
            CollectionSchema::transaction_logs(),
            EsdbConfig::new(&dir).shards(16),
            clock,
        )
        .unwrap();
        // Recovery ran the idempotent completion scan: the old span is
        // collapsed and every acked row survived, exactly once.
        let rows = db
            .query("SELECT * FROM transaction_logs WHERE tenant_id = 777")
            .unwrap();
        assert_eq!(rows.docs.len(), 2_250, "no rows lost in recovery");
        for (r, holders) in physical_copies(&db, 777, 2_500) {
            if r % 10 >= 9 {
                continue;
            }
            let dest = place(TenantId(777), RecordId(r), rule.offset, 16).0;
            assert_eq!(holders, vec![dest], "record {r} recovered to {dest}");
        }
    }
}
