//! Live-migration state: the data plane of the [`crate::Esdb`]
//! migration coordinator.
//!
//! A committed grow-rule widens a hot tenant's *write* span immediately
//! (dynamic secondary hashing, §4.2), but rows created before the rule
//! still live at their historical placement. The coordinator moves them
//! through a phase machine held here:
//!
//! ```text
//! CommitWait ─▶ Handoff ─▶ Draining ─▶ Cutover ─▶ Done
//!      │            │          │           │
//!      └────────────┴──────────┴───────────┴──▶ Aborted
//! ```
//!
//! * **CommitWait** — the rule is appended with an activation timestamp
//!   `effective_time = commit + commit_wait`; nothing moves until the
//!   live clock passes it, so every node's writes agree on which side of
//!   the rule a record falls (clock-skew-safe activation).
//! * **Handoff** — translog-tail capture switches on *first*, then the
//!   source shards refresh and pin snapshots, and the tenant's
//!   pre-rule rows are exported into per-destination shipped segments
//!   (`esdb-replication` physical mode). Writes keep flowing.
//! * **Draining** — the captured tail is bounded; exceeding the bound
//!   aborts rather than chasing an unbounded backlog.
//! * **Cutover** — the write barrier closes (new write permits block,
//!   in-flight permits drain), shipped segments are adopted, the tail is
//!   re-applied at the new placement, destinations are flushed durable,
//!   source copies are tombstoned, and the rule list is marked migrated
//!   so *all* future point operations route by the new span.
//! * **Done / Aborted** — terminal. Abort keeps the committed rule (the
//!   append-only list is safe: the span stays grown for future records,
//!   old rows simply never move) and re-arms the balancer via
//!   `on_abort`.
//!
//! This module owns the concurrency primitives — the write-permit
//! barrier, the reader fence, the migration version used for query
//! retry — and the durable `rules.log` that makes rule commits and
//! cutovers crash-safe. The engine-touching step logic lives in
//! `db.rs`, which has the shards.

use esdb_common::{EsdbError, Result, TenantId, TimestampMs};
use esdb_doc::WriteOp;
use esdb_replication::HandoffPlan;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lifecycle phase of one live migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Rule committed; waiting out the commit-wait window.
    CommitWait,
    /// Exporting the tenant's pre-rule rows into shipped segments.
    Handoff,
    /// Handoff staged; bounded translog tail pending cutover.
    Draining,
    /// Write barrier closed; adopting, tombstoning, switching routing.
    Cutover,
    /// Migration complete; the old span has fully collapsed.
    Done,
    /// Migration abandoned; staged state dropped, rule kept.
    Aborted,
}

impl MigrationPhase {
    /// Stable snake_case name for JSON exposition and journal payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationPhase::CommitWait => "commit_wait",
            MigrationPhase::Handoff => "handoff",
            MigrationPhase::Draining => "draining",
            MigrationPhase::Cutover => "cutover",
            MigrationPhase::Done => "done",
            MigrationPhase::Aborted => "aborted",
        }
    }

    /// Whether the migration still holds coordinator state.
    pub fn is_active(self) -> bool {
        !matches!(self, MigrationPhase::Done | MigrationPhase::Aborted)
    }
}

/// Public snapshot of one migration, rendered by `/admin/migrations`
/// and `debug_bundle()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationStatus {
    /// Tenant being migrated.
    pub tenant: TenantId,
    /// Shard span before the rule.
    pub old_span: u32,
    /// Shard span after the rule.
    pub new_span: u32,
    /// Rule activation timestamp (commit + commit-wait).
    pub effective_time: TimestampMs,
    /// Current phase.
    pub phase: MigrationPhase,
    /// Rows whose placement changed (export + moved tail), so far.
    pub rows_moved: u64,
    /// Approximate bytes shipped in segments.
    pub bytes_shipped: u64,
    /// Shipped segments built.
    pub segments_shipped: u32,
    /// Translog-tail ops captured during handoff.
    pub tail_ops: u64,
}

impl MigrationStatus {
    /// Renders one status as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenant\": {}, \"old_span\": {}, \"new_span\": {}, \"effective_time\": {}, \
             \"phase\": \"{}\", \"rows_moved\": {}, \"bytes_shipped\": {}, \
             \"segments_shipped\": {}, \"tail_ops\": {}}}",
            self.tenant.0,
            self.old_span,
            self.new_span,
            self.effective_time,
            self.phase.as_str(),
            self.rows_moved,
            self.bytes_shipped,
            self.segments_shipped,
            self.tail_ops
        )
    }
}

/// Renders a status list as a JSON array (the `/admin/migrations` and
/// debug-bundle fragment).
pub fn statuses_to_json(statuses: &[MigrationStatus]) -> String {
    let mut out = String::from("[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&s.to_json());
    }
    out.push(']');
    out
}

/// One live migration's coordinator state. Fields are crate-visible:
/// the step logic in `db.rs` mutates entries under the table lock.
pub(crate) struct MigrationEntry {
    pub tenant: TenantId,
    pub old_span: u32,
    pub new_span: u32,
    pub effective_time: TimestampMs,
    /// Journal seq of the last lifecycle event, for causal chaining.
    pub last_seq: u64,
    pub phase: MigrationPhase,
    /// Staged handoff (built during Handoff, consumed at Cutover).
    pub plan: Option<HandoffPlan>,
    /// Captured translog tail: ops for this tenant with
    /// `created_at <= effective_time` that applied to source shards
    /// while the handoff was in flight, with the shard they landed on.
    pub tail: Vec<(WriteOp, u32)>,
    /// Whether the per-write tail capture hook feeds this entry.
    pub capturing: bool,
    /// The tail exceeded its bound; capture stopped and the next step
    /// must abort (ops past the bound were dropped, so cutover would
    /// lose them — abort leaves every row at its acked placement).
    pub overflowed: bool,
    /// A cutover attempt failed *after* its durable intent was logged:
    /// the next step (or the next open) must run the idempotent logical
    /// completion instead of a fresh cutover.
    pub needs_recovery: bool,
    pub rows_moved: u64,
    pub bytes_shipped: u64,
    pub segments_shipped: u32,
    /// Cumulative tail ops captured (survives the tail being consumed
    /// at cutover, for status/metrics).
    pub tail_ops: u64,
}

impl MigrationEntry {
    pub(crate) fn status(&self) -> MigrationStatus {
        MigrationStatus {
            tenant: self.tenant,
            old_span: self.old_span,
            new_span: self.new_span,
            effective_time: self.effective_time,
            phase: self.phase,
            rows_moved: self.rows_moved,
            bytes_shipped: self.bytes_shipped,
            segments_shipped: self.segments_shipped,
            tail_ops: self.tail_ops,
        }
    }
}

/// RAII write permit: holding one means a write may be anywhere between
/// routing and apply. Cutover's barrier waits for the count to reach
/// zero, so no operation can route by the old placement and land after
/// the switch.
pub(crate) struct WritePermit<'a> {
    table: &'a MigrationTable,
}

impl Drop for WritePermit<'_> {
    fn drop(&mut self) {
        self.table.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Shared migration table: the entries plus the atomics the write and
/// read hot paths check. With no migration active every check is a
/// single relaxed-ish atomic load.
pub(crate) struct MigrationTable {
    entries: Mutex<Vec<MigrationEntry>>,
    /// Entries in a non-terminal phase (gates the capture hook).
    active: AtomicU64,
    /// Migrations currently inside the cutover window. While nonzero,
    /// new write permits and reads block — the seqlock's write side.
    gate: AtomicU64,
    /// Write permits outstanding.
    in_flight: AtomicU64,
    /// Bumped on every visibility transition (cutover enter/leave,
    /// abort). Readers capture it before the scatter and retry the
    /// query if it moved — the seqlock's read side.
    version: AtomicU64,
    /// Serializes coordinator stepping across threads.
    pub(crate) step_lock: Mutex<()>,
    /// Captured-tail bound; exceeding it aborts the migration.
    tail_max_ops: usize,
}

impl MigrationTable {
    pub(crate) fn new(tail_max_ops: usize) -> Self {
        MigrationTable {
            entries: Mutex::new(Vec::new()),
            active: AtomicU64::new(0),
            gate: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            version: AtomicU64::new(0),
            step_lock: Mutex::new(()),
            tail_max_ops,
        }
    }

    /// Registers a rule commit as a pending migration.
    pub(crate) fn register(&self, entry: MigrationEntry) {
        let mut entries = self.entries.lock();
        // A tenant re-proposed after an abort replaces its terminal
        // entry; concurrent active duplicates are not registered.
        if entries
            .iter()
            .any(|e| e.tenant == entry.tenant && e.phase.is_active())
        {
            return;
        }
        entries.retain(|e| e.tenant != entry.tenant || e.phase.is_active());
        entries.push(entry);
        self.active.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether any migration is active (one atomic load — the write
    /// path's capture-hook gate).
    #[inline]
    pub(crate) fn any_active(&self) -> bool {
        self.active.load(Ordering::Acquire) > 0
    }

    /// Count of active migrations (the `esdb_migrations_active` gauge).
    pub(crate) fn active_count(&self) -> u64 {
        self.active.load(Ordering::Acquire)
    }

    /// Acquires a write permit, blocking while a cutover is switching
    /// placements. Fast path: one load (gate) + one RMW (permit count).
    pub(crate) fn begin_write(&self) -> WritePermit<'_> {
        while self.gate.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        WritePermit { table: self }
    }

    /// Blocks readers while a cutover is mid-switch. Fast path: one
    /// atomic load.
    #[inline]
    pub(crate) fn wait_read_stable(&self) {
        while self.gate.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
    }

    /// The migration version — capture before a scatter, compare after
    /// the gather, retry the query on mismatch.
    #[inline]
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    pub(crate) fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Raises the cutover gate and waits until every in-flight write
    /// permit drains. On return no write is between routing and apply.
    pub(crate) fn close_write_barrier(&self) {
        self.gate.fetch_add(1, Ordering::AcqRel);
        while self.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
    }

    /// Lowers the cutover gate, releasing writers and readers.
    pub(crate) fn open_write_barrier(&self) {
        self.gate.fetch_sub(1, Ordering::AcqRel);
    }

    /// Marks one entry terminal, decrementing the active count.
    pub(crate) fn finish(&self, entry: &mut MigrationEntry, phase: MigrationPhase) {
        debug_assert!(!phase.is_active());
        if entry.phase.is_active() {
            self.active.fetch_sub(1, Ordering::AcqRel);
        }
        entry.phase = phase;
        entry.capturing = false;
        entry.plan = None;
        entry.tail = Vec::new();
    }

    /// The tail-capture hook, called from the group-commit drain at
    /// each op's success point (so capture happens before the
    /// submitter's permit releases). When the tail exceeds its bound,
    /// capture stops and the entry is flagged for abort — the op is
    /// still durable at its (old-placement) shard, and abort leaves it
    /// there, so nothing acked is ever lost.
    pub(crate) fn capture(&self, op: &WriteOp, shard: u32) {
        let (tenant, _, created_at) = op.routing();
        let mut entries = self.entries.lock();
        for e in entries.iter_mut() {
            if e.capturing && e.tenant == tenant && created_at <= e.effective_time {
                if e.tail.len() >= self.tail_max_ops {
                    e.overflowed = true;
                    e.capturing = false;
                } else {
                    e.tail.push((op.clone(), shard));
                    e.tail_ops += 1;
                }
                return;
            }
        }
    }

    /// Snapshot of every migration's public status, newest last.
    pub(crate) fn statuses(&self) -> Vec<MigrationStatus> {
        self.entries.lock().iter().map(|e| e.status()).collect()
    }

    /// Locked access to the entries, for the coordinator step logic.
    pub(crate) fn entries(&self) -> parking_lot::MutexGuard<'_, Vec<MigrationEntry>> {
        self.entries.lock()
    }
}

/// A replayed `rules.log`: everything needed to restore routing state
/// and finish interrupted cutovers at open.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct RulesLogReplay {
    /// Committed rules in append order: `(tenant, offset, effective_time)`.
    pub rules: Vec<(TenantId, u32, TimestampMs)>,
    /// Migrated markings in append order: `(tenant, offset)`.
    pub migrated: Vec<(TenantId, u32)>,
    /// Cutovers that began but never logged `migrated`: the recovery
    /// completion must finish these deterministically.
    pub pending_cutovers: Vec<(TenantId, u32, TimestampMs)>,
}

/// Append-only durable log of routing decisions under `data_dir`.
///
/// Three line kinds, space-separated plain text:
///
/// ```text
/// rule <tenant> <offset> <effective_time>   # committed grow-rule
/// cutover <tenant> <offset> <effective_time># cutover began (intent)
/// migrated <tenant> <offset>                # cutover finished
/// ```
///
/// `cutover` is the migration's durable commit point: once it is
/// synced, completion is inevitable — a crash before `migrated`
/// re-runs the idempotent logical completion at the next open. A crash
/// with no `cutover` line aborts the handoff (nothing durable moved;
/// the rule itself survives, so the span stays grown).
pub(crate) struct RulesLog {
    path: PathBuf,
    file: Mutex<Option<File>>,
}

impl RulesLog {
    pub(crate) fn new(data_dir: &Path) -> Self {
        RulesLog {
            path: data_dir.join("rules.log"),
            file: Mutex::new(None),
        }
    }

    fn append(&self, line: &str) -> Result<()> {
        let mut guard = self.file.lock();
        if guard.is_none() {
            if let Some(parent) = self.path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            *guard = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            );
        }
        let f = guard.as_mut().expect("rules.log just opened");
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_data()?;
        Ok(())
    }

    pub(crate) fn append_rule(&self, tenant: TenantId, offset: u32, t: TimestampMs) -> Result<()> {
        self.append(&format!("rule {} {} {}", tenant.0, offset, t))
    }

    pub(crate) fn append_cutover(
        &self,
        tenant: TenantId,
        offset: u32,
        t: TimestampMs,
    ) -> Result<()> {
        self.append(&format!("cutover {} {} {}", tenant.0, offset, t))
    }

    pub(crate) fn append_migrated(&self, tenant: TenantId, offset: u32) -> Result<()> {
        self.append(&format!("migrated {} {}", tenant.0, offset))
    }

    /// Replays the log (missing file = empty state). Unparseable lines
    /// are rejected loudly — routing state is not something to guess at.
    pub(crate) fn replay(&self) -> Result<RulesLogReplay> {
        let mut out = RulesLogReplay::default();
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        let mut cutovers: Vec<(TenantId, u32, TimestampMs)> = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let bad = || EsdbError::Config(format!("corrupt rules.log line: {line:?}"));
            let num = |s: &str| s.parse::<u64>().map_err(|_| bad());
            match parts.as_slice() {
                ["rule", t, s, at] => {
                    out.rules
                        .push((TenantId(num(t)?), num(s)? as u32, num(at)?));
                }
                ["cutover", t, s, at] => {
                    cutovers.push((TenantId(num(t)?), num(s)? as u32, num(at)?));
                }
                ["migrated", t, s] => {
                    let (tenant, offset) = (TenantId(num(t)?), num(s)? as u32);
                    cutovers.retain(|(ct, cs, _)| !(*ct == tenant && *cs == offset));
                    out.migrated.push((tenant, offset));
                }
                _ => return Err(bad()),
            }
        }
        out.pending_cutovers = cutovers;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-migrate-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn rules_log_roundtrip_and_pending_cutover() {
        let dir = tmp("log");
        let log = RulesLog::new(&dir);
        assert_eq!(log.replay().unwrap(), RulesLogReplay::default());
        log.append_rule(TenantId(7), 4, 1_000).unwrap();
        log.append_cutover(TenantId(7), 4, 1_000).unwrap();
        log.append_rule(TenantId(9), 2, 2_000).unwrap();
        log.append_cutover(TenantId(9), 2, 2_000).unwrap();
        log.append_migrated(TenantId(7), 4).unwrap();
        let replay = log.replay().unwrap();
        assert_eq!(
            replay.rules,
            vec![(TenantId(7), 4, 1_000), (TenantId(9), 2, 2_000)]
        );
        assert_eq!(replay.migrated, vec![(TenantId(7), 4)]);
        assert_eq!(replay.pending_cutovers, vec![(TenantId(9), 2, 2_000)]);
        // Reopen sees identical state (durability is the whole point).
        let again = RulesLog::new(&dir);
        assert_eq!(again.replay().unwrap(), replay);
    }

    #[test]
    fn corrupt_rules_log_is_rejected() {
        let dir = tmp("corrupt");
        std::fs::write(dir.join("rules.log"), "rule 1 nonsense 3\n").unwrap();
        assert!(RulesLog::new(&dir).replay().is_err());
        std::fs::write(dir.join("rules.log"), "unknown 1 2 3\n").unwrap();
        assert!(RulesLog::new(&dir).replay().is_err());
    }

    #[test]
    fn write_barrier_drains_permits() {
        let table = MigrationTable::new(10);
        let p1 = table.begin_write();
        let p2 = table.begin_write();
        drop(p1);
        let t = std::thread::spawn({
            let table: &'static MigrationTable = unsafe { std::mem::transmute(&table) };
            move || {
                table.close_write_barrier();
                table.open_write_barrier();
            }
        });
        // The barrier cannot close while p2 is held.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "barrier must wait for in-flight permit");
        drop(p2);
        t.join().unwrap();
        // Gate reopened: new permits come straight through.
        drop(table.begin_write());
    }

    #[test]
    fn status_json_is_stable() {
        let s = MigrationStatus {
            tenant: TenantId(7),
            old_span: 1,
            new_span: 4,
            effective_time: 1_000,
            phase: MigrationPhase::Draining,
            rows_moved: 12,
            bytes_shipped: 3_400,
            segments_shipped: 3,
            tail_ops: 2,
        };
        assert_eq!(
            statuses_to_json(&[s]),
            "[{\"tenant\": 7, \"old_span\": 1, \"new_span\": 4, \"effective_time\": 1000, \
             \"phase\": \"draining\", \"rows_moved\": 12, \"bytes_shipped\": 3400, \
             \"segments_shipped\": 3, \"tail_ops\": 2}]"
        );
    }
}
