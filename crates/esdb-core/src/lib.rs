//! ESDB-RS: an embeddable reproduction of ESDB (SIGMOD '22), Alibaba's
//! cloud-native document database for extremely skewed multi-tenant
//! workloads.
//!
//! The [`Esdb`] facade runs the full stack in one process: `N` real storage
//! shards (translog + segments + indexes), the three routing policies with
//! **dynamic secondary hashing** as the default, the workload monitor +
//! load balancer (Algorithm 1), the append-only secondary-hashing rule list
//! with read-your-writes matching (§4.2), SQL queries through Xdriver4ES
//! translation and the rule-based optimizer (§5.1), and frequency-based
//! sub-attribute indexing (§3.2).
//!
//! ```no_run
//! use esdb_core::{Esdb, EsdbConfig};
//! use esdb_doc::{CollectionSchema, Document};
//! use esdb_common::{TenantId, RecordId};
//!
//! let mut db = Esdb::open(
//!     CollectionSchema::transaction_logs(),
//!     EsdbConfig::new("/tmp/esdb-demo"),
//! ).unwrap();
//! db.insert(
//!     Document::builder(TenantId(10086), RecordId(1), 1_000)
//!         .field("status", 1i64)
//!         .field("auction_title", "rust in action hardcover")
//!         .build(),
//! ).unwrap();
//! db.refresh();
//! let rows = db.query(
//!     "SELECT * FROM transaction_logs WHERE tenant_id = 10086 AND status = 1 LIMIT 10",
//! ).unwrap();
//! assert_eq!(rows.docs.len(), 1);
//! ```

mod batcher;
mod db;
mod migrate;

pub use batcher::WriteBatcher;
pub use db::{BatchApplied, Esdb, EsdbConfig, EsdbReader, EsdbStats, EsdbWriter, RoutingMode};
pub use migrate::{
    statuses_to_json as migration_statuses_to_json, MigrationPhase, MigrationStatus,
};

// The layered crates, re-exported so applications can depend on
// `esdb-core` alone.
pub use esdb_balancer as balancer;
pub use esdb_cluster as cluster;
pub use esdb_common as common;
pub use esdb_consensus as consensus;
pub use esdb_doc as doc;
pub use esdb_index as index;
pub use esdb_query as query;
pub use esdb_replication as replication;
pub use esdb_routing as routing;
pub use esdb_storage as storage;
pub use esdb_telemetry as telemetry;
pub use esdb_workload as workload;
