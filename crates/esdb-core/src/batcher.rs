//! Write-client workload batching (paper §3.1, write clients, feature 3):
//! "When a write client detects that a row (identified by its row ID) will
//! be frequently modified in a short period of time, it will batch-execute
//! the workloads by aggregating together these modifications and only
//! materializing the eventual state of this row."
//!
//! The batcher buffers write operations per routing key and coalesces
//! same-record operations into the terminal state:
//!
//! * `Insert` then `Update*` → one `Insert` with the final image,
//! * `Update` then `Update` → the last `Update`,
//! * `Insert` then `Delete` → nothing at all,
//! * `Update`/`Delete` on an unbuffered record pass through.

use esdb_common::fastmap::{fast_map, FastMap};
use esdb_doc::{WriteKind, WriteOp};

/// Coalesces a burst of writes into the minimal operation sequence.
///
/// ```
/// use esdb_core::WriteBatcher;
/// use esdb_doc::{Document, WriteOp};
/// use esdb_common::{TenantId, RecordId};
///
/// let mut batcher = WriteBatcher::new();
/// let doc = |status: i64| {
///     Document::builder(TenantId(1), RecordId(42), 100)
///         .field("status", status)
///         .build()
/// };
/// batcher.push(WriteOp::insert(doc(0)));
/// batcher.push(WriteOp::update(doc(1)));
/// batcher.push(WriteOp::update(doc(2)));
/// // Three modifications, one materialized write.
/// let ops = batcher.flush();
/// assert_eq!(ops.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct WriteBatcher {
    /// Buffered terminal op per record id; `None` marks an
    /// insert-then-delete annihilation.
    ops: FastMap<u64, Option<WriteOp>>,
    /// Record ids in first-arrival order (stable flush order).
    order: Vec<u64>,
    accepted: u64,
}

impl WriteBatcher {
    /// Empty batcher.
    pub fn new() -> Self {
        WriteBatcher {
            ops: fast_map(),
            order: Vec::new(),
            accepted: 0,
        }
    }

    /// Buffers one operation, coalescing with any buffered op for the same
    /// record.
    pub fn push(&mut self, op: WriteOp) {
        self.accepted += 1;
        let rid = op.doc.record_id.raw();
        match self.ops.get_mut(&rid) {
            None => {
                self.order.push(rid);
                self.ops.insert(rid, Some(op));
            }
            Some(slot) => {
                *slot = match (slot.take(), op) {
                    // The record was annihilated (insert+delete) and now
                    // reappears: treat the new op as the fresh state.
                    (None, op) => Some(op),
                    (Some(prev), op) => match (prev.kind, op.kind) {
                        // An insert followed by updates materializes as an
                        // insert of the final image.
                        (WriteKind::Insert, WriteKind::Update) => Some(WriteOp {
                            kind: WriteKind::Insert,
                            doc: op.doc,
                        }),
                        // Insert followed by delete: the row never existed
                        // as far as the server needs to know.
                        (WriteKind::Insert, WriteKind::Delete) => None,
                        // Anything else: last write wins.
                        (_, _) => Some(op),
                    },
                };
            }
        }
    }

    /// Operations accepted since the last flush (pre-coalescing).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Buffered operations that will actually be sent.
    pub fn pending(&self) -> usize {
        self.ops.values().filter(|o| o.is_some()).count()
    }

    /// Drains the batch in first-arrival order.
    pub fn flush(&mut self) -> Vec<WriteOp> {
        let mut out = Vec::with_capacity(self.order.len());
        for rid in self.order.drain(..) {
            if let Some(Some(op)) = self.ops.remove(&rid) {
                out.push(op);
            }
        }
        self.accepted = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};
    use esdb_doc::Document;

    fn doc(r: u64, status: i64) -> Document {
        Document::builder(TenantId(1), RecordId(r), 100)
            .field("status", status)
            .build()
    }

    #[test]
    fn updates_coalesce_to_final_state() {
        let mut b = WriteBatcher::new();
        b.push(WriteOp::insert(doc(1, 0)));
        b.push(WriteOp::update(doc(1, 1)));
        b.push(WriteOp::update(doc(1, 2)));
        assert_eq!(b.accepted(), 3);
        assert_eq!(b.pending(), 1);
        let ops = b.flush();
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0].kind,
            WriteKind::Insert,
            "insert+updates stays an insert"
        );
        assert_eq!(ops[0].doc.get("status"), Some(esdb_doc::FieldValue::Int(2)));
    }

    #[test]
    fn insert_then_delete_annihilates() {
        let mut b = WriteBatcher::new();
        b.push(WriteOp::insert(doc(5, 0)));
        b.push(WriteOp::delete(TenantId(1), RecordId(5), 100));
        assert_eq!(b.pending(), 0);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn update_then_delete_keeps_delete() {
        let mut b = WriteBatcher::new();
        b.push(WriteOp::update(doc(5, 1)));
        b.push(WriteOp::delete(TenantId(1), RecordId(5), 100));
        let ops = b.flush();
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0].kind,
            WriteKind::Delete,
            "server-side row still needs the delete"
        );
    }

    #[test]
    fn annihilated_record_can_reappear() {
        let mut b = WriteBatcher::new();
        b.push(WriteOp::insert(doc(5, 0)));
        b.push(WriteOp::delete(TenantId(1), RecordId(5), 100));
        b.push(WriteOp::insert(doc(5, 7)));
        let ops = b.flush();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].doc.get("status"), Some(esdb_doc::FieldValue::Int(7)));
    }

    #[test]
    fn flush_preserves_arrival_order_and_resets() {
        let mut b = WriteBatcher::new();
        b.push(WriteOp::insert(doc(3, 0)));
        b.push(WriteOp::insert(doc(1, 0)));
        b.push(WriteOp::insert(doc(2, 0)));
        b.push(WriteOp::update(doc(3, 9)));
        let ops = b.flush();
        let rids: Vec<u64> = ops.iter().map(|o| o.doc.record_id.raw()).collect();
        assert_eq!(rids, vec![3, 1, 2]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.accepted(), 0);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn distinct_records_pass_through() {
        let mut b = WriteBatcher::new();
        for r in 0..10 {
            b.push(WriteOp::insert(doc(r, 0)));
        }
        assert_eq!(b.flush().len(), 10);
    }
}
