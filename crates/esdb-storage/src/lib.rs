//! The shard storage engine (paper §3.3, "Execution layer").
//!
//! Each shard is an independent engine with the Elasticsearch write path
//! the paper inherits:
//!
//! * writes append to the **Translog** (WAL, [`translog`]) for durability,
//! * then index into an **in-memory buffer** that is *not yet searchable*,
//! * a periodic **refresh** freezes the buffer into an immutable searchable
//!   segment (near-real-time search),
//! * **flush** persists segments to disk and rolls the translog,
//! * crash **recovery** loads persisted segments and replays the translog
//!   tail,
//! * **segment merge** compacts small segments (driven by the policy in
//!   `esdb-index`).
//!
//! [`codec`] is the self-contained binary serialization used by both the
//! translog and segment files (length-prefixed, Murmur3-checksummed).

pub mod codec;
pub mod persist;
pub mod shard;
pub mod snapshot;
pub mod translog;

pub use shard::{ShardConfig, ShardEngine, ShardStats};
pub use snapshot::{ShardSnapshot, SnapshotCell};
pub use translog::{Translog, WriteFault};
