//! The Translog — ESDB's write-ahead log (paper §3.3: "Every write workload
//! will be added to the Translog once it is successfully submitted ... data
//! that has not been flushed to the disk can be safely recovered from
//! Translogs").
//!
//! The log is a sequence of checksummed frames (see [`crate::codec`]).
//! `flush` (§3.3, Elasticsearch "flush") rolls the generation: a new file
//! starts and the old one is deleted once segments are durable. Replay
//! tolerates a torn tail (the standard crash contract: a partially-written
//! final record is discarded).

use crate::codec::{decode_op, encode_op, frame, read_frame};
use esdb_common::{EsdbError, Result};
use esdb_doc::WriteOp;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An injectable append-fault hook (chaos testing). Consulted once per
/// [`Translog::append`] with the length of the framed record about to be
/// written; returning `Some(k)` tears the write after `k` bytes — only the
/// prefix reaches the file and the append reports an I/O error, which is
/// exactly what a crash mid-`write(2)` leaves on disk. Returning `None`
/// lets the append proceed untouched.
///
/// Implementations must be deterministic for a given seed so that chaos
/// schedules replay identically (see `esdb-chaos`).
pub trait WriteFault: Send + Sync + std::fmt::Debug {
    /// How many bytes of the `frame_len`-byte frame actually land, or
    /// `None` for a healthy full write.
    fn torn_write_len(&self, frame_len: usize) -> Option<usize>;
}

/// An append-only, generation-rolled write-ahead log.
#[derive(Debug)]
pub struct Translog {
    dir: PathBuf,
    generation: u64,
    file: File,
    /// Ops appended since the last sync (for sync-batching stats).
    unsynced: usize,
    /// Total ops appended in this generation.
    ops_in_generation: usize,
    /// Optional chaos hook torn through every append.
    write_fault: Option<Arc<dyn WriteFault>>,
}

impl Translog {
    /// Opens (or creates) the translog in `dir`, resuming the latest
    /// generation.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let generation = Self::latest_generation(&dir)?.unwrap_or(0);
        let path = Self::gen_path(&dir, generation);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Translog {
            dir,
            generation,
            file,
            unsynced: 0,
            ops_in_generation: 0,
            write_fault: None,
        })
    }

    /// Installs (or clears) the chaos append-fault hook.
    pub fn set_write_fault(&mut self, fault: Option<Arc<dyn WriteFault>>) {
        self.write_fault = fault;
    }

    fn gen_path(dir: &Path, generation: u64) -> PathBuf {
        dir.join(format!("translog-{generation:010}.log"))
    }

    fn latest_generation(dir: &Path) -> Result<Option<u64>> {
        let mut latest = None;
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(g) = name
                .strip_prefix("translog-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                latest = Some(latest.map_or(g, |l: u64| l.max(g)));
            }
        }
        Ok(latest)
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends one operation (buffered; call [`Translog::sync`] to make it
    /// durable).
    pub fn append(&mut self, op: &WriteOp) -> Result<()> {
        let framed = frame(&encode_op(op));
        if let Some(fault) = &self.write_fault {
            if let Some(k) = fault.torn_write_len(framed.len()) {
                // Torn write: only a prefix lands (flushed so the partial
                // frame really is on disk for the recovery path to see),
                // and the append fails loudly — the caller must treat the
                // engine as crashed and recover via `replay`.
                let k = k.min(framed.len());
                self.file.write_all(&framed[..k])?;
                self.file.sync_data()?;
                return Err(EsdbError::Io(format!(
                    "chaos: torn translog append ({k} of {} bytes written)",
                    framed.len()
                )));
            }
        }
        self.file.write_all(&framed)?;
        self.unsynced += 1;
        self.ops_in_generation += 1;
        Ok(())
    }

    /// Appends a group of operations (buffered). The healthy path encodes
    /// every frame into one contiguous buffer and issues a single
    /// `write_all` — the batching the per-shard group commit relies on.
    /// When a chaos [`WriteFault`] hook is installed the ops go through
    /// [`Translog::append`] one at a time instead, so tear placement and
    /// the on-disk prefix stay byte-identical to the sequential path.
    ///
    /// Returns one result per *attempted* op, in submission order. With
    /// `stop_on_error`, ops after the first failure are not attempted and
    /// the returned vector is short; without it every op is attempted.
    pub fn append_batch(&mut self, ops: &[WriteOp], stop_on_error: bool) -> Vec<Result<()>> {
        if self.write_fault.is_some() {
            let mut out = Vec::with_capacity(ops.len());
            for op in ops {
                let r = self.append(op);
                let failed = r.is_err();
                out.push(r);
                if failed && stop_on_error {
                    break;
                }
            }
            return out;
        }
        let mut buf = Vec::new();
        for op in ops {
            buf.extend_from_slice(&frame(&encode_op(op)));
        }
        match self.file.write_all(&buf) {
            Ok(()) => {
                self.unsynced += ops.len();
                self.ops_in_generation += ops.len();
                ops.iter().map(|_| Ok(())).collect()
            }
            Err(e) => {
                // A failed group write leaves the file in an unknown
                // state; conservatively fail every op — recovery keeps
                // whatever whole frames actually landed.
                let msg = e.to_string();
                ops.iter()
                    .map(|_| Err(EsdbError::Io(msg.clone())))
                    .collect()
            }
        }
    }

    /// Fsyncs pending appends; returns how many ops were made durable.
    pub fn sync(&mut self) -> Result<usize> {
        self.file.sync_data()?;
        Ok(std::mem::take(&mut self.unsynced))
    }

    /// Ops appended to the current generation.
    pub fn ops_in_generation(&self) -> usize {
        self.ops_in_generation
    }

    /// Replays every generation in order. A torn final record (crash during
    /// append) is silently dropped; corruption elsewhere is an error.
    pub fn replay(&self) -> Result<Vec<WriteOp>> {
        let mut gens: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(g) = name
                .strip_prefix("translog-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        let mut ops = Vec::new();
        for (gi, g) in gens.iter().enumerate() {
            let mut data = Vec::new();
            File::open(Self::gen_path(&self.dir, *g))?.read_to_end(&mut data)?;
            let mut offset = 0usize;
            loop {
                match read_frame(&data[offset..]) {
                    Ok(None) => break,
                    Ok(Some((payload, n))) => {
                        ops.push(decode_op(payload)?);
                        offset += n;
                    }
                    Err(e) => {
                        // A torn tail is only acceptable on the *last*
                        // generation (a crash mid-append).
                        if gi == gens.len() - 1 {
                            break;
                        }
                        return Err(e);
                    }
                }
            }
        }
        Ok(ops)
    }

    /// Rolls to a new generation after a successful flush, deleting older
    /// generations (their data is now durable in segment files).
    pub fn roll_generation(&mut self) -> Result<()> {
        self.sync()?;
        let old = self.generation;
        self.generation += 1;
        let path = Self::gen_path(&self.dir, self.generation);
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.ops_in_generation = 0;
        // Delete all generations <= old.
        for g in 0..=old {
            let p = Self::gen_path(&self.dir, g);
            if p.exists() {
                std::fs::remove_file(p)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};
    use esdb_doc::Document;

    fn op(r: u64) -> WriteOp {
        WriteOp::insert(
            Document::builder(TenantId(1), RecordId(r), r * 10)
                .field("status", (r % 3) as i64)
                .build(),
        )
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-translog-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_sync_replay() {
        let dir = tmpdir("basic");
        let mut t = Translog::open(&dir).unwrap();
        for r in 0..10 {
            t.append(&op(r)).unwrap();
        }
        assert_eq!(t.sync().unwrap(), 10);
        assert_eq!(t.sync().unwrap(), 0, "second sync has nothing pending");
        let ops = t.replay().unwrap();
        assert_eq!(ops.len(), 10);
        assert_eq!(ops[3].doc.record_id, RecordId(3));
    }

    #[test]
    fn reopen_resumes_generation_and_data() {
        let dir = tmpdir("reopen");
        {
            let mut t = Translog::open(&dir).unwrap();
            t.append(&op(1)).unwrap();
            t.sync().unwrap();
        }
        let mut t = Translog::open(&dir).unwrap();
        t.append(&op(2)).unwrap();
        t.sync().unwrap();
        assert_eq!(t.replay().unwrap().len(), 2, "both ops survive reopen");
    }

    #[test]
    fn roll_generation_truncates_history() {
        let dir = tmpdir("roll");
        let mut t = Translog::open(&dir).unwrap();
        t.append(&op(1)).unwrap();
        t.roll_generation().unwrap();
        assert_eq!(t.generation(), 1);
        assert_eq!(t.ops_in_generation(), 0);
        assert!(t.replay().unwrap().is_empty(), "old generation deleted");
        t.append(&op(2)).unwrap();
        t.sync().unwrap();
        assert_eq!(t.replay().unwrap().len(), 1);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let dir = tmpdir("torn");
        let mut t = Translog::open(&dir).unwrap();
        t.append(&op(1)).unwrap();
        t.append(&op(2)).unwrap();
        t.sync().unwrap();
        // Simulate a crash mid-append: chop bytes off the file tail.
        let path = Translog::gen_path(&dir, 0);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let t = Translog::open(&dir).unwrap();
        let ops = t.replay().unwrap();
        assert_eq!(
            ops.len(),
            1,
            "complete first record survives, torn second dropped"
        );
        assert_eq!(ops[0].doc.record_id, RecordId(1));
    }

    /// Tears the `nth` append (0-based) after `bytes` bytes of the frame.
    #[derive(Debug)]
    struct TearNth {
        nth: usize,
        bytes: usize,
        seen: std::sync::atomic::AtomicUsize,
    }

    impl WriteFault for TearNth {
        fn torn_write_len(&self, _frame_len: usize) -> Option<usize> {
            let i = self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            (i == self.nth).then_some(self.bytes)
        }
    }

    #[test]
    fn write_fault_hook_tears_append_and_replay_recovers_prefix() {
        let dir = tmpdir("fault-hook");
        let mut t = Translog::open(&dir).unwrap();
        t.set_write_fault(Some(Arc::new(TearNth {
            nth: 2,
            bytes: 7,
            seen: std::sync::atomic::AtomicUsize::new(0),
        })));
        t.append(&op(1)).unwrap();
        t.append(&op(2)).unwrap();
        let err = t.append(&op(3)).expect_err("third append is torn");
        assert!(matches!(err, EsdbError::Io(_)), "fault surfaces as Io");
        // Crash-and-recover: a fresh open replays exactly the un-torn
        // prefix; the partial third frame is dropped.
        drop(t);
        let t = Translog::open(&dir).unwrap();
        let ops = t.replay().unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].doc.record_id, RecordId(2));
    }

    proptest::proptest! {
        /// Chop the *final* record at an arbitrary byte offset: replay must
        /// return exactly the un-torn prefix — never an error, never a
        /// partial decode of the torn record (satellite of the chaos PR;
        /// generalizes `torn_tail_is_dropped`'s fixed offset).
        #[test]
        fn prop_random_truncation_yields_untorn_prefix(
            n_ops in 1u64..9,
            cut_seed in proptest::prelude::any::<u64>(),
        ) {
            let dir = tmpdir(&format!("prop-trunc-{n_ops}"));
            let mut t = Translog::open(&dir).unwrap();
            for r in 0..n_ops {
                t.append(&op(r)).unwrap();
            }
            t.sync().unwrap();
            let last_len = frame(&encode_op(&op(n_ops - 1))).len();
            // Cut strictly inside the final frame (0 = clean boundary
            // after n_ops-1 records, last_len-1 = one byte short).
            let k = (cut_seed % last_len as u64) as usize;
            let path = Translog::gen_path(&dir, 0);
            let data = std::fs::read(&path).unwrap();
            std::fs::write(&path, &data[..data.len() - last_len + k]).unwrap();
            let t = Translog::open(&dir).unwrap();
            let ops = t.replay().unwrap();
            proptest::prop_assert_eq!(ops.len() as u64, n_ops - 1);
            for (i, o) in ops.iter().enumerate() {
                proptest::prop_assert_eq!(o.doc.record_id, RecordId(i as u64));
            }
        }
    }

    #[test]
    fn bitflip_detected_as_torn_tail() {
        let dir = tmpdir("flip");
        let mut t = Translog::open(&dir).unwrap();
        t.append(&op(1)).unwrap();
        t.sync().unwrap();
        let path = Translog::gen_path(&dir, 0);
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let t = Translog::open(&dir).unwrap();
        assert!(
            t.replay().unwrap().is_empty(),
            "corrupt sole record dropped"
        );
    }
}
