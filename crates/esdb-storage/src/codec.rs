//! Binary serialization for write operations and documents.
//!
//! A small, self-contained codec (no external serialization crates):
//! little-endian fixed-width integers, length-prefixed strings, tagged
//! field values. Every framed record carries a Murmur3 checksum so the
//! translog and segment files detect torn writes and corruption.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use esdb_common::hash::murmur3_32;
use esdb_common::{EsdbError, RecordId, Result, TenantId};
use esdb_doc::{Document, FieldValue, WriteKind, WriteOp};

/// Encodes a [`FieldValue`] with a 1-byte tag.
pub fn put_value(buf: &mut BytesMut, v: &FieldValue) {
    match v {
        FieldValue::Null => buf.put_u8(0),
        FieldValue::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        FieldValue::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        FieldValue::Float(x) => {
            buf.put_u8(3);
            buf.put_f64_le(*x);
        }
        FieldValue::Timestamp(t) => {
            buf.put_u8(4);
            buf.put_u64_le(*t);
        }
        FieldValue::Str(s) => {
            buf.put_u8(5);
            put_str(buf, s);
        }
    }
}

/// Decodes a [`FieldValue`].
pub fn get_value(buf: &mut Bytes) -> Result<FieldValue> {
    if buf.remaining() < 1 {
        return Err(EsdbError::Corruption("truncated value tag".into()));
    }
    match buf.get_u8() {
        0 => Ok(FieldValue::Null),
        1 => {
            check(buf, 1)?;
            Ok(FieldValue::Bool(buf.get_u8() != 0))
        }
        2 => {
            check(buf, 8)?;
            Ok(FieldValue::Int(buf.get_i64_le()))
        }
        3 => {
            check(buf, 8)?;
            Ok(FieldValue::Float(buf.get_f64_le()))
        }
        4 => {
            check(buf, 8)?;
            Ok(FieldValue::Timestamp(buf.get_u64_le()))
        }
        5 => Ok(FieldValue::Str(get_str(buf)?)),
        t => Err(EsdbError::Corruption(format!("bad value tag {t}"))),
    }
}

/// Length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    check(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    check(buf, len)?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|e| EsdbError::Corruption(format!("bad utf8: {e}")))
}

fn check(buf: &Bytes, need: usize) -> Result<()> {
    if buf.remaining() < need {
        Err(EsdbError::Corruption(format!(
            "truncated: need {need}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Encodes a [`Document`].
pub fn put_document(buf: &mut BytesMut, doc: &Document) {
    buf.put_u64_le(doc.tenant_id.raw());
    buf.put_u64_le(doc.record_id.raw());
    buf.put_u64_le(doc.created_at);
    buf.put_u32_le(doc.field_count() as u32);
    for (name, value) in doc.fields() {
        put_str(buf, name);
        put_value(buf, value);
    }
    buf.put_u32_le(doc.attrs().len() as u32);
    for (k, v) in doc.attrs() {
        put_str(buf, k);
        put_str(buf, v);
    }
}

/// Decodes a [`Document`].
pub fn get_document(buf: &mut Bytes) -> Result<Document> {
    check(buf, 8 * 3 + 4)?;
    let tenant = TenantId(buf.get_u64_le());
    let record = RecordId(buf.get_u64_le());
    let created = buf.get_u64_le();
    let nfields = buf.get_u32_le() as usize;
    if nfields > 1 << 20 {
        return Err(EsdbError::Corruption(format!(
            "absurd field count {nfields}"
        )));
    }
    let mut b = Document::builder(tenant, record, created);
    for _ in 0..nfields {
        let name = get_str(buf)?;
        let value = get_value(buf)?;
        b = b.field(name, value);
    }
    check(buf, 4)?;
    let nattrs = buf.get_u32_le() as usize;
    if nattrs > 1 << 20 {
        return Err(EsdbError::Corruption(format!("absurd attr count {nattrs}")));
    }
    for _ in 0..nattrs {
        let k = get_str(buf)?;
        let v = get_str(buf)?;
        b = b.attr(k, v);
    }
    Ok(b.build())
}

/// Encodes a [`WriteOp`] to a standalone byte vector.
pub fn encode_op(op: &WriteOp) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(128);
    buf.put_u8(match op.kind {
        WriteKind::Insert => 0,
        WriteKind::Update => 1,
        WriteKind::Delete => 2,
    });
    put_document(&mut buf, &op.doc);
    buf.to_vec()
}

/// Decodes a [`WriteOp`] from bytes produced by [`encode_op`].
pub fn decode_op(bytes: &[u8]) -> Result<WriteOp> {
    let mut buf = Bytes::copy_from_slice(bytes);
    check(&buf, 1)?;
    let kind = match buf.get_u8() {
        0 => WriteKind::Insert,
        1 => WriteKind::Update,
        2 => WriteKind::Delete,
        t => return Err(EsdbError::Corruption(format!("bad op kind {t}"))),
    };
    let doc = get_document(&mut buf)?;
    Ok(WriteOp { kind, doc })
}

/// Frames `payload` as `[len u32][checksum u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&murmur3_32(payload, 0).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one frame from `data`, returning `(payload, bytes_consumed)`.
/// `Ok(None)` means a clean end (no more bytes); a torn/corrupt frame is an
/// error carrying how many clean bytes preceded it.
pub fn read_frame(data: &[u8]) -> Result<Option<(&[u8], usize)>> {
    if data.is_empty() {
        return Ok(None);
    }
    if data.len() < 8 {
        return Err(EsdbError::Corruption("torn frame header".into()));
    }
    let len = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes")) as usize;
    let sum = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if data.len() < 8 + len {
        return Err(EsdbError::Corruption("torn frame payload".into()));
    }
    let payload = &data[8..8 + len];
    if murmur3_32(payload, 0) != sum {
        return Err(EsdbError::Corruption("frame checksum mismatch".into()));
    }
    Ok(Some((payload, 8 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_doc() -> Document {
        Document::builder(TenantId(10086), RecordId(42), 1_700_000_000_000)
            .field("status", 1i64)
            .field("amount", FieldValue::Float(99.5))
            .field("title", "双11 hardcover")
            .field("flag", true)
            .field("nil", FieldValue::Null)
            .field("ts", FieldValue::Timestamp(123))
            .attr("activity", "1111")
            .build()
    }

    #[test]
    fn document_roundtrip() {
        let d = sample_doc();
        let mut buf = BytesMut::new();
        put_document(&mut buf, &d);
        let mut bytes = buf.freeze();
        let back = get_document(&mut bytes).unwrap();
        assert_eq!(back, d);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn op_roundtrip_all_kinds() {
        for op in [
            WriteOp::insert(sample_doc()),
            WriteOp::update(sample_doc()),
            WriteOp::delete(TenantId(1), RecordId(2), 3),
        ] {
            assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn frame_roundtrip_and_corruption() {
        let payload = b"hello world";
        let framed = frame(payload);
        let (got, n) = read_frame(&framed).unwrap().unwrap();
        assert_eq!(got, payload);
        assert_eq!(n, framed.len());
        // Flip a payload byte → checksum error.
        let mut bad = framed.clone();
        bad[10] ^= 0xFF;
        assert!(matches!(read_frame(&bad), Err(EsdbError::Corruption(_))));
        // Truncated payload → torn frame.
        assert!(read_frame(&framed[..framed.len() - 1]).is_err());
        // Empty = clean end.
        assert!(read_frame(&[]).unwrap().is_none());
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[9]).is_err());
        assert!(decode_op(&[0, 1, 2, 3]).is_err());
    }

    fn arb_value() -> impl Strategy<Value = FieldValue> {
        prop_oneof![
            Just(FieldValue::Null),
            any::<bool>().prop_map(FieldValue::Bool),
            any::<i64>().prop_map(FieldValue::Int),
            any::<f64>()
                .prop_filter("no nan", |x| !x.is_nan())
                .prop_map(FieldValue::Float),
            any::<u64>().prop_map(FieldValue::Timestamp),
            ".{0,20}".prop_map(FieldValue::Str),
        ]
    }

    proptest! {
        #[test]
        fn prop_op_roundtrip(
            tenant in any::<u64>(),
            record in any::<u64>(),
            created in any::<u64>(),
            fields in proptest::collection::vec(("[a-z]{1,8}", arb_value()), 0..8),
            attrs in proptest::collection::vec(("[a-z]{1,8}", ".{0,10}"), 0..5),
            kind in 0u8..3,
        ) {
            let mut b = Document::builder(TenantId(tenant), RecordId(record), created);
            for (n, v) in fields {
                b = b.field(n, v);
            }
            for (k, v) in attrs {
                b = b.attr(k, v);
            }
            let doc = b.build();
            let op = match kind {
                0 => WriteOp::insert(doc),
                1 => WriteOp::update(doc),
                _ => WriteOp { kind: WriteKind::Delete, doc },
            };
            let back = decode_op(&encode_op(&op)).unwrap();
            prop_assert_eq!(back, op);
        }
    }
}
