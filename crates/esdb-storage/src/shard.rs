//! The per-shard storage engine, tying together translog, in-memory buffer,
//! segments, merging, and recovery (paper §3.3, Fig. 3 "Execution Layer").

use crate::persist;
use crate::snapshot::{ShardSnapshot, SnapshotCell};
use crate::translog::{Translog, WriteFault};
use esdb_common::fastmap::{fast_map, fast_set, FastMap, FastSet};
use esdb_common::Result;
use esdb_doc::{CollectionSchema, Document, WriteKind, WriteOp};
use esdb_index::merge::merge_segments;
use esdb_index::{AttrFrequencyTracker, MergePolicy, Segment, SegmentId, TieredMergePolicy};
use esdb_telemetry::{EventKind, Histogram, Labels, Telemetry, NO_PARENT};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Shard engine configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Directory for translog generations, segment files and the commit
    /// point.
    pub dir: PathBuf,
    /// Auto-refresh when the buffer reaches this many documents (0 =
    /// manual refresh only). Elasticsearch refreshes on a timer; the
    /// embedded engine and tests drive refresh explicitly or by size.
    pub refresh_buffer_docs: usize,
    /// Merge policy.
    pub merge: TieredMergePolicy,
    /// Shard id used as the `shard` label on telemetry series.
    pub shard: u32,
    /// Shared telemetry; `None` (the default) records nothing.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Chaos append-fault hook installed on the translog (see
    /// [`crate::translog::WriteFault`]); `None` for production use.
    pub write_fault: Option<Arc<dyn WriteFault>>,
}

impl ShardConfig {
    /// Config rooted at `dir` with defaults.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ShardConfig {
            dir: dir.into(),
            refresh_buffer_docs: 0,
            merge: TieredMergePolicy::default(),
            shard: 0,
            telemetry: None,
            write_fault: None,
        }
    }

    /// Attaches shared telemetry, labeling this engine's series `shard`.
    pub fn with_telemetry(mut self, shard: u32, telemetry: Arc<Telemetry>) -> Self {
        self.shard = shard;
        self.telemetry = Some(telemetry);
        self
    }

    /// Installs a chaos append-fault hook on the shard's translog.
    pub fn with_write_fault(mut self, fault: Arc<dyn WriteFault>) -> Self {
        self.write_fault = Some(fault);
        self
    }
}

/// Cached per-stage histogram handles (write-path stage taxonomy:
/// `translog_append` and `index` sampled per-op, `refresh` / `merge` /
/// `flush` timed unconditionally since they are rare).
struct StageTimers {
    telemetry: Arc<Telemetry>,
    translog_append: Arc<Histogram>,
    index: Arc<Histogram>,
    refresh: Arc<Histogram>,
    merge: Arc<Histogram>,
    flush: Arc<Histogram>,
}

impl StageTimers {
    fn new(shard: u32, telemetry: Arc<Telemetry>) -> Self {
        let h = |stage: &'static str| {
            telemetry.registry().histogram(
                "esdb_storage_stage_ns",
                Labels::stage(stage).with_shard(shard),
            )
        };
        StageTimers {
            translog_append: h("translog_append"),
            index: h("index"),
            refresh: h("refresh"),
            merge: h("merge"),
            flush: h("flush"),
            telemetry,
        }
    }

    /// Journals a maintenance event (refresh/merge/flush), labeled by
    /// the shard the event names.
    fn emit_segment_event(&self, kind: EventKind) {
        let shard = match kind {
            EventKind::SegmentRefresh { shard, .. }
            | EventKind::SegmentMerge { shard, .. }
            | EventKind::SegmentFlush { shard, .. } => shard,
            _ => unreachable!("only segment maintenance events route here"),
        };
        self.telemetry.emit(kind, Labels::shard(shard), NO_PARENT);
    }
}

/// Point-in-time statistics for monitoring and the figure harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Live documents visible to search.
    pub live_docs: usize,
    /// Documents buffered but not yet searchable.
    pub buffered_docs: usize,
    /// Searchable segments.
    pub segments: usize,
    /// Approximate shard bytes (segments + buffer).
    pub size_bytes: usize,
    /// Refreshes performed.
    pub refreshes: u64,
    /// Merges performed.
    pub merges: u64,
}

/// Nanoseconds from `t0` to now, saturating into `u64`.
#[inline]
fn ns_since(t0: Instant) -> u64 {
    ns_between(t0, Instant::now())
}

/// Nanoseconds from `t0` to `t1`, saturating into `u64`.
#[inline]
fn ns_between(t0: Instant, t1: Instant) -> u64 {
    t1.duration_since(t0).as_nanos().min(u64::MAX as u128) as u64
}

/// A single shard's storage engine.
pub struct ShardEngine {
    schema: CollectionSchema,
    config: ShardConfig,
    translog: Translog,
    // In-memory buffer (tombstone-able so buffered updates/deletes work).
    buffer: Vec<Option<Document>>,
    buffer_by_record: FastMap<u64, usize>,
    buffer_bytes: usize,
    // Searchable state. Segments are `Arc`-shared with published
    // snapshots; tombstones copy-on-write, never mutate in place.
    segments: Vec<Arc<Segment>>,
    next_segment_id: SegmentId,
    /// Segments persisted as of the last flush.
    persisted: FastSet<SegmentId>,
    /// Persisted segments whose tombstones changed since the last flush.
    dirty: FastSet<SegmentId>,
    /// Files of merged-away segments that the current commit point still
    /// references; deleting them before the next commit point is written
    /// would lose data on a crash (the Lucene deletion policy).
    pending_file_deletes: Vec<SegmentId>,
    // Frequency-based sub-attribute indexing (§3.2). Shared with the
    // query layer, which records filtered attributes without taking the
    // engine lock.
    attr_tracker: Arc<Mutex<AttrFrequencyTracker>>,
    indexed_attrs: Arc<FastSet<String>>,
    stats_refreshes: u64,
    stats_merges: u64,
    timers: Option<StageTimers>,
    /// Bumped whenever the *searchable* state changes: a tombstone lands
    /// in a segment, a refresh adds one, or a merge replaces some. The
    /// request cache keys whole results by this, so any change makes every
    /// cached result for the shard unreachable.
    generation: u64,
    /// Generation of the snapshot last published into `snapshots`.
    published_generation: u64,
    /// Where readers pin point-in-time views; shared with `ShardSlot`
    /// so pinning never touches the engine lock.
    snapshots: Arc<SnapshotCell>,
}

impl ShardEngine {
    /// Opens the shard, recovering persisted segments and replaying the
    /// translog tail if present.
    pub fn open(schema: CollectionSchema, config: ShardConfig) -> Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let mut translog = Translog::open(config.dir.join("translog"))?;
        translog.set_write_fault(config.write_fault.clone());
        let timers = config
            .telemetry
            .as_ref()
            .filter(|t| t.enabled())
            .map(|t| StageTimers::new(config.shard, Arc::clone(t)));

        let mut engine = ShardEngine {
            schema,
            translog,
            buffer: Vec::new(),
            buffer_by_record: fast_map(),
            buffer_bytes: 0,
            segments: Vec::new(),
            next_segment_id: 1,
            persisted: fast_set(),
            dirty: fast_set(),
            pending_file_deletes: Vec::new(),
            attr_tracker: Arc::new(Mutex::new(AttrFrequencyTracker::new())),
            indexed_attrs: Arc::new(fast_set()),
            stats_refreshes: 0,
            stats_merges: 0,
            timers,
            generation: 0,
            published_generation: 0,
            snapshots: Arc::new(SnapshotCell::new(ShardSnapshot::capture(
                &[],
                0,
                Arc::new(fast_set()),
            ))),
            config,
        };

        // Load the commit point, then replay the translog tail on top.
        if let Some((ids, next_id)) = persist::read_commit_point(&engine.config.dir)? {
            for id in ids {
                let seg = persist::load_segment(
                    &engine.config.dir,
                    id,
                    &engine.schema,
                    &engine.indexed_attrs,
                )?;
                engine.persisted.insert(id);
                engine.segments.push(Arc::new(seg));
            }
            engine.next_segment_id = next_id;
        }
        let tail = engine.translog.replay()?;
        for op in tail {
            engine.apply_to_memory(&op);
        }
        // First publication: recovered state becomes the readers' view.
        engine.publish_snapshot();
        Ok(engine)
    }

    /// The shard's schema.
    pub fn schema(&self) -> &CollectionSchema {
        &self.schema
    }

    /// Applies one write: translog first (durability), then memory.
    /// Per-op stage timing (translog append, in-memory index) is trace
    /// sampled — a translog append is microsecond-scale, so reading the
    /// clock on every op would itself be measurable.
    pub fn apply(&mut self, op: &WriteOp) -> Result<()> {
        self.apply_group(std::slice::from_ref(op), true)
            .pop()
            .expect("single-op group yields one result")
    }

    /// Applies a group of writes under one engine entry: one translog
    /// append batch, memory applies in submission order, then a single
    /// refresh-threshold check and snapshot publication for the whole
    /// group. Per-op outcomes come back in submission order; with
    /// `stop_on_error`, ops after the first failure are not attempted and
    /// the returned vector is short. An op whose translog append failed
    /// is never applied to memory — the durability contract (recovery
    /// replays exactly the acknowledged ops) is per-op, not per-group.
    pub fn apply_group(&mut self, ops: &[WriteOp], stop_on_error: bool) -> Vec<Result<()>> {
        let sampled = self
            .timers
            .as_ref()
            .is_some_and(|t| t.telemetry.should_trace());
        let t0 = sampled.then(Instant::now);
        let results = self.translog.append_batch(ops, stop_on_error);
        let t1 = sampled.then(Instant::now);
        for (op, r) in ops.iter().zip(&results) {
            if r.is_ok() {
                self.apply_to_memory(op);
            }
        }
        if let (Some(t0), Some(t1)) = (t0, t1) {
            let t2 = Instant::now();
            let t = self.timers.as_ref().expect("sampled implies timers");
            t.translog_append.record(ns_between(t0, t1));
            t.index.record(ns_between(t1, t2));
        }
        if self.config.refresh_buffer_docs > 0
            && self.live_buffer_len() >= self.config.refresh_buffer_docs
        {
            self.refresh();
        }
        // A tombstone that landed in a segment changed the searchable
        // state — publish it (refresh publishes on its own).
        self.maybe_publish();
        results
    }

    /// Makes buffered writes durable (fsync the translog).
    pub fn sync(&mut self) -> Result<usize> {
        self.translog.sync()
    }

    fn live_buffer_len(&self) -> usize {
        self.buffer_by_record.len()
    }

    /// Tombstones `rid` in whichever segment holds it live. Copy-on-write:
    /// if a published snapshot still shares the segment, `Arc::make_mut`
    /// detaches the engine's copy first, so pinned readers are untouched.
    fn tombstone_in_segments(&mut self, rid: u64) {
        for seg in &mut self.segments {
            if seg.find_record(rid).is_some() {
                if Arc::make_mut(seg).delete_record(rid) {
                    self.dirty.insert(seg.id);
                    self.generation += 1;
                }
                break;
            }
        }
    }

    fn apply_to_memory(&mut self, op: &WriteOp) {
        let rid = op.doc.record_id.raw();
        match op.kind {
            WriteKind::Insert | WriteKind::Update => {
                self.attr_tracker.lock().record_write(op.doc.attrs());
                if let Some(&idx) = self.buffer_by_record.get(&rid) {
                    // Replace in place (workload batching lands here too).
                    self.buffer[idx] = Some(op.doc.clone());
                } else {
                    // If the record lives in a segment, tombstone it there.
                    self.tombstone_in_segments(rid);
                    self.buffer_by_record.insert(rid, self.buffer.len());
                    self.buffer.push(Some(op.doc.clone()));
                }
                self.buffer_bytes += op.doc.approx_size();
            }
            WriteKind::Delete => {
                if let Some(idx) = self.buffer_by_record.remove(&rid) {
                    self.buffer[idx] = None;
                }
                self.tombstone_in_segments(rid);
            }
        }
    }

    /// Refresh (§3.3 near-real-time search): freezes the buffer into a new
    /// searchable segment. Returns the new segment id, or `None` if the
    /// buffer was empty.
    pub fn refresh(&mut self) -> Option<SegmentId> {
        let t0 = self.timers.as_ref().map(|_| Instant::now());
        // Re-rank indexed sub-attributes before building (frequency-based
        // indexing responds to drift).
        if self.schema.attr_index_top_k > 0 {
            self.indexed_attrs =
                Arc::new(self.attr_tracker.lock().top_k(self.schema.attr_index_top_k));
        }
        let docs: Vec<Document> = self.buffer.drain(..).flatten().collect();
        self.buffer_by_record.clear();
        let size = std::mem::take(&mut self.buffer_bytes);
        if docs.is_empty() {
            return None;
        }
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let seg = esdb_index::builder::build_segment(
            id,
            docs,
            &self.schema,
            &esdb_index::Analyzer::default(),
            &self.indexed_attrs,
            size,
        );
        self.segments.push(Arc::new(seg));
        self.stats_refreshes += 1;
        self.generation += 1;
        self.maybe_publish();
        if let (Some(t), Some(t0)) = (&self.timers, t0) {
            t.refresh.record(ns_since(t0));
            t.emit_segment_event(EventKind::SegmentRefresh {
                shard: self.config.shard,
                segments: self.segments.len() as u32,
            });
        }
        Some(id)
    }

    /// Runs the merge policy once; returns the new segment id if a merge
    /// happened.
    pub fn maybe_merge(&mut self) -> Option<SegmentId> {
        let sizes: Vec<(SegmentId, usize, usize)> = self
            .segments
            .iter()
            .map(|s| (s.id, s.live_count(), s.size_bytes()))
            .collect();
        let victims = self.config.merge.select(&sizes);
        if victims.len() < 2 {
            return None;
        }
        Some(self.force_merge(&victims))
    }

    /// Merges the given segment ids unconditionally.
    pub fn force_merge(&mut self, ids: &[SegmentId]) -> SegmentId {
        let t0 = self.timers.as_ref().map(|_| Instant::now());
        let inputs: Vec<&Segment> = self
            .segments
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| s.as_ref())
            .collect();
        let new_id = self.next_segment_id;
        self.next_segment_id += 1;
        let merged = merge_segments(new_id, &inputs, &self.schema, &self.indexed_attrs);
        self.segments.retain(|s| !ids.contains(&s.id));
        for id in ids {
            if self.persisted.remove(id) {
                // The commit point still references this file — defer the
                // delete until the next flush has written a new one.
                self.pending_file_deletes.push(*id);
            }
            self.dirty.remove(id);
        }
        self.segments.push(Arc::new(merged));
        self.stats_merges += 1;
        self.generation += 1;
        self.maybe_publish();
        if let (Some(t), Some(t0)) = (&self.timers, t0) {
            t.merge.record(ns_since(t0));
            t.emit_segment_event(EventKind::SegmentMerge {
                shard: self.config.shard,
                merged: ids.len() as u32,
                segments: self.segments.len() as u32,
            });
        }
        new_id
    }

    /// Flush (§3.3): refresh, persist new/dirty segments, write the commit
    /// point, roll the translog generation.
    pub fn flush(&mut self) -> Result<()> {
        let t0 = self.timers.as_ref().map(|_| Instant::now());
        self.refresh();
        for seg in &self.segments {
            if !self.persisted.contains(&seg.id) || self.dirty.contains(&seg.id) {
                persist::write_segment(&self.config.dir, seg)?;
                self.persisted.insert(seg.id);
                self.dirty.remove(&seg.id);
            }
        }
        let ids: Vec<SegmentId> = self.segments.iter().map(|s| s.id).collect();
        persist::write_commit_point(&self.config.dir, &ids, self.next_segment_id)?;
        self.translog.roll_generation()?;
        // The new commit point no longer references merged-away segments;
        // their files can finally go.
        for id in self.pending_file_deletes.drain(..) {
            persist::remove_segment(&self.config.dir, id)?;
        }
        if let (Some(t), Some(t0)) = (&self.timers, t0) {
            t.flush.record(ns_since(t0));
            t.emit_segment_event(EventKind::SegmentFlush {
                shard: self.config.shard,
                segments: self.segments.len() as u32,
            });
        }
        Ok(())
    }

    /// Installs a shipped segment (the migration-handoff adopt path):
    /// the segment was built elsewhere from another shard's exported
    /// rows and arrives fully indexed, so adoption costs no re-indexing.
    /// It is re-identified into this engine's id space, made searchable
    /// immediately, and left unpersisted — the caller decides when to
    /// [`ShardEngine::flush`] for durability (the migration coordinator
    /// flushes destinations before tombstoning sources, so rows always
    /// have at least one durable home).
    ///
    /// Any live local copy of an adopted record is superseded first
    /// (buffer entry dropped, segment copy tombstoned), making adoption
    /// idempotent — re-adopting after a crash-recovery re-run converges
    /// instead of duplicating.
    pub fn adopt_segment(&mut self, seg: Segment) -> SegmentId {
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let mut seg = seg;
        seg.id = id;
        let rids: Vec<u64> = seg.live_docs().map(|(_, d)| d.record_id.raw()).collect();
        for rid in rids {
            if let Some(idx) = self.buffer_by_record.remove(&rid) {
                self.buffer[idx] = None;
            }
            self.tombstone_in_segments(rid);
        }
        self.segments.push(Arc::new(seg));
        self.generation += 1;
        self.maybe_publish();
        id
    }

    /// The searchable segments (maintenance and replication walk these;
    /// the query engine executes against a pinned snapshot instead).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// The shard's snapshot cell. `ShardSlot` shares this so readers pin
    /// point-in-time views without touching the engine lock.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.snapshots)
    }

    /// Pins the currently published snapshot.
    pub fn pin_snapshot(&self) -> Arc<ShardSnapshot> {
        self.snapshots.pin()
    }

    /// Publishes the current searchable state if it changed since the
    /// last publication.
    fn maybe_publish(&mut self) {
        if self.generation != self.published_generation {
            self.publish_snapshot();
        }
    }

    /// Unconditionally publishes the current searchable state.
    fn publish_snapshot(&mut self) {
        self.snapshots.publish(ShardSnapshot::capture(
            &self.segments,
            self.generation,
            Arc::clone(&self.indexed_attrs),
        ));
        self.published_generation = self.generation;
    }

    /// Search generation: changes iff the result of some query over this
    /// shard could change. Buffered (not-yet-refreshed) writes do *not*
    /// bump it — they are invisible to search until refresh.
    pub fn search_generation(&self) -> u64 {
        self.generation
    }

    /// Looks up a live record across searchable segments, returning the
    /// stored document.
    pub fn get_record(&self, record_id: u64) -> Option<&Document> {
        for seg in &self.segments {
            if let Some(d) = seg.find_record(record_id) {
                return seg.doc(d);
            }
        }
        None
    }

    /// Whether `record_id` exists (buffered or searchable).
    pub fn contains_record(&self, record_id: u64) -> bool {
        self.buffer_by_record.contains_key(&record_id)
            || self
                .segments
                .iter()
                .any(|s| s.find_record(record_id).is_some())
    }

    /// Current statistics.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            live_docs: self.segments.iter().map(|s| s.live_count()).sum(),
            buffered_docs: self.live_buffer_len(),
            segments: self.segments.len(),
            size_bytes: self.segments.iter().map(|s| s.size_bytes()).sum::<usize>()
                + self.buffer_bytes,
            refreshes: self.stats_refreshes,
            merges: self.stats_merges,
        }
    }

    /// Shared handle to the sub-attribute frequency tracker. Queries
    /// record their filtered attributes through this without holding any
    /// engine lock; refresh reads the ranking through the same handle.
    pub fn attr_tracker(&self) -> Arc<Mutex<AttrFrequencyTracker>> {
        Arc::clone(&self.attr_tracker)
    }

    /// Currently indexed sub-attributes.
    pub fn indexed_attrs(&self) -> &FastSet<String> {
        &self.indexed_attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{RecordId, TenantId};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn open(name: &str) -> ShardEngine {
        ShardEngine::open(
            CollectionSchema::transaction_logs(),
            ShardConfig::new(tmpdir(name)),
        )
        .unwrap()
    }

    fn doc(r: u64, status: i64) -> Document {
        Document::builder(TenantId(1), RecordId(r), 1000 + r)
            .field("status", status)
            .field("auction_title", format!("item {r}"))
            .build()
    }

    #[test]
    fn near_real_time_visibility() {
        let mut s = open("nrt");
        s.apply(&WriteOp::insert(doc(1, 1))).unwrap();
        // Buffered, not yet searchable.
        assert_eq!(s.stats().buffered_docs, 1);
        assert_eq!(s.stats().live_docs, 0);
        assert!(s.get_record(1).is_none());
        assert!(s.contains_record(1));
        s.refresh();
        assert_eq!(s.stats().live_docs, 1);
        assert!(s.get_record(1).is_some());
    }

    #[test]
    fn update_in_buffer_replaces() {
        let mut s = open("upd-buf");
        s.apply(&WriteOp::insert(doc(1, 0))).unwrap();
        s.apply(&WriteOp::update(doc(1, 9))).unwrap();
        s.refresh();
        assert_eq!(s.stats().live_docs, 1);
        assert_eq!(
            s.get_record(1).unwrap().get("status"),
            Some(esdb_doc::FieldValue::Int(9))
        );
    }

    #[test]
    fn update_across_segments_tombstones_old() {
        let mut s = open("upd-seg");
        s.apply(&WriteOp::insert(doc(1, 0))).unwrap();
        s.refresh();
        s.apply(&WriteOp::update(doc(1, 5))).unwrap();
        s.refresh();
        assert_eq!(s.stats().live_docs, 1, "old version tombstoned");
        assert_eq!(
            s.get_record(1).unwrap().get("status"),
            Some(esdb_doc::FieldValue::Int(5))
        );
    }

    #[test]
    fn delete_everywhere() {
        let mut s = open("del");
        s.apply(&WriteOp::insert(doc(1, 0))).unwrap();
        s.refresh();
        s.apply(&WriteOp::insert(doc(2, 0))).unwrap(); // still buffered
        s.apply(&WriteOp::delete(TenantId(1), RecordId(1), 0))
            .unwrap();
        s.apply(&WriteOp::delete(TenantId(1), RecordId(2), 0))
            .unwrap();
        s.refresh();
        assert_eq!(s.stats().live_docs, 0);
        assert!(!s.contains_record(1));
        assert!(!s.contains_record(2));
    }

    #[test]
    fn crash_recovery_replays_translog() {
        let dir = tmpdir("recover");
        {
            let mut s =
                ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
                    .unwrap();
            for r in 0..50 {
                s.apply(&WriteOp::insert(doc(r, (r % 2) as i64))).unwrap();
            }
            s.sync().unwrap();
            // No flush: everything only in the translog. Drop = crash.
        }
        let mut s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        s.refresh();
        assert_eq!(s.stats().live_docs, 50, "all writes recovered from WAL");
    }

    #[test]
    fn flush_then_recover_without_translog() {
        let dir = tmpdir("flush");
        {
            let mut s =
                ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
                    .unwrap();
            for r in 0..30 {
                s.apply(&WriteOp::insert(doc(r, 1))).unwrap();
            }
            s.flush().unwrap();
        }
        let s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        assert_eq!(s.stats().live_docs, 30, "recovered from segment files");
        assert!(s.get_record(29).is_some());
    }

    #[test]
    fn post_flush_deletes_survive_recovery() {
        let dir = tmpdir("flush-del");
        {
            let mut s =
                ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
                    .unwrap();
            for r in 0..10 {
                s.apply(&WriteOp::insert(doc(r, 1))).unwrap();
            }
            s.flush().unwrap();
            // Delete after the flush: lives only in the new translog
            // generation.
            s.apply(&WriteOp::delete(TenantId(1), RecordId(3), 0))
                .unwrap();
            s.sync().unwrap();
        }
        let s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        assert_eq!(s.stats().live_docs, 9);
        assert!(!s.contains_record(3));
    }

    #[test]
    fn double_flush_rewrites_dirty_segments() {
        let dir = tmpdir("dirty");
        let mut s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        for r in 0..10 {
            s.apply(&WriteOp::insert(doc(r, 1))).unwrap();
        }
        s.flush().unwrap();
        s.apply(&WriteOp::delete(TenantId(1), RecordId(5), 0))
            .unwrap();
        s.flush().unwrap(); // tombstone must be re-persisted
        drop(s);
        let s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        assert!(!s.contains_record(5));
        assert_eq!(s.stats().live_docs, 9);
    }

    #[test]
    fn auto_refresh_on_buffer_size() {
        let dir = tmpdir("auto");
        let mut cfg = ShardConfig::new(&dir);
        cfg.refresh_buffer_docs = 5;
        let mut s = ShardEngine::open(CollectionSchema::transaction_logs(), cfg).unwrap();
        for r in 0..12 {
            s.apply(&WriteOp::insert(doc(r, 1))).unwrap();
        }
        assert!(
            s.stats().refreshes >= 2,
            "buffer threshold triggers refresh"
        );
        assert!(s.stats().live_docs >= 10);
    }

    #[test]
    fn telemetry_records_storage_stages() {
        use esdb_telemetry::TelemetryConfig;
        let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
            trace_sample_every: 1, // sample every op so counts are exact
            ..TelemetryConfig::default()
        }));
        let cfg = ShardConfig::new(tmpdir("telemetry")).with_telemetry(3, Arc::clone(&telemetry));
        let mut s = ShardEngine::open(CollectionSchema::transaction_logs(), cfg).unwrap();
        for r in 0..8 {
            s.apply(&WriteOp::insert(doc(r, 1))).unwrap();
        }
        s.refresh();
        s.flush().unwrap();
        let reg = telemetry.registry();
        let labels = |stage| Labels::stage(stage).with_shard(3);
        assert_eq!(
            reg.histogram("esdb_storage_stage_ns", labels("translog_append"))
                .count(),
            8
        );
        assert_eq!(
            reg.histogram("esdb_storage_stage_ns", labels("index"))
                .count(),
            8
        );
        // One standalone refresh; the flush-time refresh found an empty
        // buffer and early-returned before the timer records.
        assert_eq!(
            reg.histogram("esdb_storage_stage_ns", labels("refresh"))
                .count(),
            1
        );
        assert_eq!(
            reg.histogram("esdb_storage_stage_ns", labels("flush"))
                .count(),
            1
        );
    }

    #[test]
    fn adopt_segment_installs_shipped_rows() {
        let mut src = open("adopt-src");
        for r in 0..6 {
            src.apply(&WriteOp::insert(doc(r, 1))).unwrap();
        }
        src.refresh();
        // Export the source's rows into a shipped segment (what the
        // migration coordinator builds from a pinned snapshot).
        let docs: Vec<Document> = src.segments()[0]
            .live_docs()
            .map(|(_, d)| d.clone())
            .collect();
        let shipped = esdb_index::builder::build_segment(
            0,
            docs,
            src.schema(),
            &esdb_index::Analyzer::default(),
            &fast_set(),
            1024,
        );

        let dir = tmpdir("adopt-dst");
        let mut dst =
            ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
                .unwrap();
        let id = dst.adopt_segment(shipped.clone());
        assert!(id >= 1, "adopted segment gets a local id");
        assert_eq!(dst.stats().live_docs, 6);
        assert!(dst.get_record(3).is_some(), "adopted rows are searchable");
        // Re-adoption converges instead of duplicating.
        dst.adopt_segment(shipped);
        assert_eq!(dst.stats().live_docs, 6, "idempotent re-adoption");
        // Flush persists the adopted rows; recovery sees them.
        dst.flush().unwrap();
        drop(dst);
        let dst = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        assert_eq!(dst.stats().live_docs, 6, "adopted rows survive recovery");
    }

    #[test]
    fn merge_compacts_segments() {
        let mut s = open("merge");
        for batch in 0..5 {
            for r in 0..10 {
                s.apply(&WriteOp::insert(doc(batch * 10 + r, 1))).unwrap();
            }
            s.refresh();
        }
        assert_eq!(s.stats().segments, 5);
        let merged = s.maybe_merge();
        assert!(merged.is_some());
        assert_eq!(s.stats().segments, 1);
        assert_eq!(s.stats().live_docs, 50);
        assert_eq!(s.stats().merges, 1);
    }

    #[test]
    fn crash_between_merge_and_flush_loses_nothing() {
        // Regression: merging used to delete persisted segment files that
        // the commit point still referenced; a crash in that window lost
        // every row of the merged segments.
        let dir = tmpdir("merge-crash");
        {
            let mut s =
                ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
                    .unwrap();
            for batch in 0..4 {
                for r in 0..5 {
                    s.apply(&WriteOp::insert(doc(batch * 5 + r, 1))).unwrap();
                }
                s.refresh();
            }
            s.flush().unwrap();
            s.maybe_merge().expect("merge the 4 small segments");
            // Crash: drop without flushing the new commit point.
        }
        let s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        assert_eq!(
            s.stats().live_docs,
            20,
            "pre-merge files must still be readable"
        );
        for r in 0..20 {
            assert!(s.contains_record(r), "record {r} lost in the crash window");
        }
    }

    #[test]
    fn merge_then_flush_then_recover() {
        let dir = tmpdir("merge-flush");
        {
            let mut s =
                ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
                    .unwrap();
            for batch in 0..4 {
                for r in 0..5 {
                    s.apply(&WriteOp::insert(doc(batch * 5 + r, 1))).unwrap();
                }
                s.refresh();
            }
            s.flush().unwrap();
            s.maybe_merge().expect("should merge 4 tiny segments");
            s.flush().unwrap();
        }
        let s = ShardEngine::open(CollectionSchema::transaction_logs(), ShardConfig::new(&dir))
            .unwrap();
        assert_eq!(s.stats().live_docs, 20);
        assert_eq!(s.stats().segments, 1);
    }
}
