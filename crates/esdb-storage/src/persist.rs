//! Segment files and commit points.
//!
//! `flush` persists each segment's live documents to a `segment-<id>.seg`
//! file (framed, checksummed) and writes a commit point listing the durable
//! segment ids. Recovery loads the commit point, rebuilds each segment's
//! indexes from its documents, and replays the translog tail on top.
//! Rebuilding indexes on load mirrors what our in-memory engine needs;
//! the *bytes on disk* are what physical replication ships (§5.2).

use crate::codec::{frame, get_document, put_document, read_frame};
use bytes::{Bytes, BytesMut};
use esdb_common::fastmap::FastSet;
use esdb_common::{EsdbError, Result};
use esdb_doc::{CollectionSchema, Document};
use esdb_index::builder::build_segment;
use esdb_index::{Analyzer, Segment, SegmentId};
use std::io::Write;
use std::path::{Path, PathBuf};

fn segment_path(dir: &Path, id: SegmentId) -> PathBuf {
    dir.join(format!("segment-{id:010}.seg"))
}

fn commit_path(dir: &Path) -> PathBuf {
    dir.join("commit.point")
}

/// Writes a segment's live documents to its file. Returns bytes written.
pub fn write_segment(dir: &Path, segment: &Segment) -> Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut body = BytesMut::new();
    for (_, doc) in segment.live_docs() {
        let mut one = BytesMut::new();
        put_document(&mut one, doc);
        body.extend_from_slice(&frame(&one));
    }
    let path = segment_path(dir, segment.id);
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&body)?;
    f.sync_data()?;
    std::fs::rename(&tmp, &path)?;
    Ok(body.len())
}

/// Loads a segment file and rebuilds its indexes.
pub fn load_segment(
    dir: &Path,
    id: SegmentId,
    schema: &CollectionSchema,
    indexed_attrs: &FastSet<String>,
) -> Result<Segment> {
    let data = std::fs::read(segment_path(dir, id))?;
    let mut docs: Vec<Document> = Vec::new();
    let mut size = 0usize;
    let mut offset = 0usize;
    while let Some((payload, n)) = read_frame(&data[offset..])? {
        let mut b = Bytes::copy_from_slice(payload);
        let doc = get_document(&mut b)?;
        size += doc.approx_size();
        docs.push(doc);
        offset += n;
    }
    Ok(build_segment(
        id,
        docs,
        schema,
        &Analyzer::default(),
        indexed_attrs,
        size,
    ))
}

/// Deletes a segment file (post-merge cleanup).
pub fn remove_segment(dir: &Path, id: SegmentId) -> Result<()> {
    let p = segment_path(dir, id);
    if p.exists() {
        std::fs::remove_file(p)?;
    }
    Ok(())
}

/// Writes the commit point: the set of durable segment ids plus the next
/// segment id counter.
pub fn write_commit_point(dir: &Path, segment_ids: &[SegmentId], next_id: SegmentId) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut body = BytesMut::new();
    bytes::BufMut::put_u64_le(&mut body, next_id);
    bytes::BufMut::put_u32_le(&mut body, segment_ids.len() as u32);
    for &id in segment_ids {
        bytes::BufMut::put_u64_le(&mut body, id);
    }
    let framed = frame(&body);
    let path = commit_path(dir);
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&framed)?;
    f.sync_data()?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Reads the commit point; `Ok(None)` when none exists (fresh shard).
pub fn read_commit_point(dir: &Path) -> Result<Option<(Vec<SegmentId>, SegmentId)>> {
    let path = commit_path(dir);
    if !path.exists() {
        return Ok(None);
    }
    let data = std::fs::read(path)?;
    let Some((payload, _)) = read_frame(&data)? else {
        return Ok(None);
    };
    let mut buf = Bytes::copy_from_slice(payload);
    use bytes::Buf;
    if buf.remaining() < 12 {
        return Err(EsdbError::Corruption("short commit point".into()));
    }
    let next_id = buf.get_u64_le();
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(EsdbError::Corruption("truncated commit point".into()));
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(buf.get_u64_le());
    }
    Ok(Some((ids, next_id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::fastmap::fast_set;
    use esdb_common::{RecordId, TenantId};
    use esdb_index::SegmentBuilder;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("esdb-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn make_segment(id: SegmentId) -> Segment {
        let mut b = SegmentBuilder::without_attr_index(CollectionSchema::transaction_logs());
        for r in 0..20u64 {
            b.add(
                Document::builder(TenantId(r % 3), RecordId(r), 1000 + r)
                    .field("status", (r % 2) as i64)
                    .field("auction_title", format!("widget {r}"))
                    .build(),
            );
        }
        b.refresh(id)
    }

    #[test]
    fn segment_roundtrip_rebuilds_indexes() {
        let dir = tmpdir("seg");
        let seg = make_segment(5);
        let bytes = write_segment(&dir, &seg).unwrap();
        assert!(bytes > 0);
        let schema = CollectionSchema::transaction_logs();
        let loaded = load_segment(&dir, 5, &schema, &fast_set()).unwrap();
        assert_eq!(loaded.live_count(), 20);
        assert_eq!(
            loaded.numeric_eq("status", 1).len(),
            seg.numeric_eq("status", 1).len()
        );
        assert_eq!(loaded.term_docs("auction_title", "widget").len(), 20);
    }

    #[test]
    fn deleted_docs_not_persisted() {
        let dir = tmpdir("del");
        let mut seg = make_segment(1);
        assert!(seg.delete_record(7));
        write_segment(&dir, &seg).unwrap();
        let schema = CollectionSchema::transaction_logs();
        let loaded = load_segment(&dir, 1, &schema, &fast_set()).unwrap();
        assert_eq!(loaded.live_count(), 19);
        assert!(loaded.find_record(7).is_none());
    }

    #[test]
    fn commit_point_roundtrip() {
        let dir = tmpdir("commit");
        assert!(read_commit_point(&dir).unwrap().is_none());
        write_commit_point(&dir, &[3, 1, 9], 10).unwrap();
        let (ids, next) = read_commit_point(&dir).unwrap().unwrap();
        assert_eq!(ids, vec![3, 1, 9]);
        assert_eq!(next, 10);
        // Overwrite is atomic and replaces.
        write_commit_point(&dir, &[4], 11).unwrap();
        let (ids, next) = read_commit_point(&dir).unwrap().unwrap();
        assert_eq!(ids, vec![4]);
        assert_eq!(next, 11);
    }

    #[test]
    fn remove_segment_is_idempotent() {
        let dir = tmpdir("rm");
        let seg = make_segment(2);
        write_segment(&dir, &seg).unwrap();
        remove_segment(&dir, 2).unwrap();
        remove_segment(&dir, 2).unwrap();
        let schema = CollectionSchema::transaction_logs();
        assert!(load_segment(&dir, 2, &schema, &fast_set()).is_err());
    }
}
