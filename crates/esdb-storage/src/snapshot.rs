//! Epoch-published point-in-time snapshots of a shard's searchable state.
//!
//! The engine owns the mutable indexing state (buffer, translog, segment
//! working set). Readers never touch it: every visibility change
//! (refresh, merge, tombstone, recovery) publishes a fresh immutable
//! [`ShardSnapshot`] into the shard's [`SnapshotCell`], and queries pin
//! the current snapshot once — two atomic ref-count bumps under a
//! sub-microsecond read lock — then run entirely lock-free against it.
//! Maintenance never waits on readers; a pinned snapshot keeps answering
//! identically even after the engine merges away its segments, because
//! the segment payloads are `Arc`-shared and tombstones copy the
//! liveness overlay on write instead of mutating it in place.
//!
//! Retired segments are freed by reference counting: when the last
//! pinned snapshot referencing a merged-away segment drops, the segment
//! memory goes with it. There is no epoch list to scan and no grace
//! period — lifetime is exact.

use esdb_common::fastmap::{fast_set, FastSet};
use esdb_doc::Document;
use esdb_index::snapshot::SnapshotView;
use esdb_index::Segment;
use parking_lot::RwLock;
use std::sync::Arc;

/// An immutable point-in-time view of one shard's searchable state.
///
/// The segment set, every segment's liveness bitmap, and the search
/// generation are captured together at publish time, so they can never
/// disagree: a cache entry keyed on `(segment id, search_generation)`
/// read out of one pinned snapshot is exact by construction.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    segments: Arc<[Arc<Segment>]>,
    search_generation: u64,
    live_docs: usize,
    indexed_attrs: Arc<FastSet<String>>,
}

impl ShardSnapshot {
    /// Captures a snapshot from the engine's working set.
    pub(crate) fn capture(
        segments: &[Arc<Segment>],
        search_generation: u64,
        indexed_attrs: Arc<FastSet<String>>,
    ) -> Self {
        ShardSnapshot {
            live_docs: segments.iter().map(|s| s.live_count()).sum(),
            segments: segments.to_vec().into(),
            search_generation,
            indexed_attrs,
        }
    }

    /// Builds a view over an explicit segment set — e.g. a replica's
    /// installed segment copies serving degraded reads while the
    /// primary is unavailable. `search_generation` should be monotone
    /// across successive views of the same source so generation-keyed
    /// caches never alias distinct states.
    pub fn from_segments(segments: Vec<Arc<Segment>>, search_generation: u64) -> Self {
        let mut indexed_attrs = fast_set();
        for seg in &segments {
            for a in seg.indexed_attrs() {
                indexed_attrs.insert(a.clone());
            }
        }
        ShardSnapshot {
            live_docs: segments.iter().map(|s| s.live_count()).sum(),
            segments: segments.into(),
            search_generation,
            indexed_attrs: Arc::new(indexed_attrs),
        }
    }

    /// The sealed segments of this view, oldest first.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// The generation this view was published under.
    pub fn search_generation(&self) -> u64 {
        self.search_generation
    }

    /// Live docs visible to this view.
    pub fn live_docs(&self) -> usize {
        self.live_docs
    }

    /// Sub-attributes indexed as of this view.
    pub fn indexed_attrs(&self) -> &FastSet<String> {
        &self.indexed_attrs
    }

    /// Looks up a live record in this view, returning the stored document.
    pub fn get_record(&self, record_id: u64) -> Option<&Document> {
        for seg in self.segments.iter() {
            if let Some(d) = seg.find_record(record_id) {
                return seg.doc(d);
            }
        }
        None
    }

    /// Whether a live doc holding `record_id` is visible in this view.
    pub fn contains_record(&self, record_id: u64) -> bool {
        self.segments
            .iter()
            .any(|s| s.find_record(record_id).is_some())
    }
}

impl SnapshotView for ShardSnapshot {
    fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    fn search_generation(&self) -> u64 {
        self.search_generation
    }

    fn live_count(&self) -> usize {
        self.live_docs
    }
}

/// The publication point: an arc-swap-style cell holding the current
/// snapshot. Writers replace the `Arc` under a write lock held for one
/// pointer store; readers clone it out under a read lock held for one
/// ref-count bump. Neither side ever blocks on query execution.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<ShardSnapshot>>,
}

impl SnapshotCell {
    /// A cell starting at the given snapshot.
    pub(crate) fn new(initial: ShardSnapshot) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// Pins the current snapshot. The returned view is immutable and
    /// remains valid (and answers identically) no matter what the engine
    /// does afterwards.
    pub fn pin(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Atomically replaces the published snapshot.
    pub(crate) fn publish(&self, snapshot: ShardSnapshot) {
        *self.current.write() = Arc::new(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::fastmap::fast_set;

    #[test]
    fn pin_is_stable_across_publish() {
        let cell = SnapshotCell::new(ShardSnapshot::capture(&[], 0, Arc::new(fast_set())));
        let pinned = cell.pin();
        cell.publish(ShardSnapshot::capture(&[], 7, Arc::new(fast_set())));
        assert_eq!(pinned.search_generation(), 0, "pinned view unchanged");
        assert_eq!(
            cell.pin().search_generation(),
            7,
            "new pins see the publish"
        );
    }
}
