//! Analytic query-throughput model for the Fig. 16 reproduction.
//!
//! The paper measures per-tenant query throughput (QPS) with three client
//! machines saturating an 8-node cluster. The determinants it calls out:
//!
//! * **fan-out** — "when using double hashing ... a query has to be
//!   expanded to 8 subqueries, one for each shard", which is why double
//!   hashing sits ~63% below single-shard policies for small tenants
//!   (§6.3.1);
//! * **shard size** — "queries running on large shards incur higher
//!   overhead" (§6.2.2), which is what keeps hashing from beating dynamic
//!   for big tenants;
//! * **per-query constant** — parse/translate/route/fetch-LIMIT-100 work
//!   that every query pays once regardless of fan-out. The observed 63%
//!   gap (not 8×) between 1-shard and 8-shard plans pins this constant at
//!   ≈10× the per-subquery cost.
//!
//! Work(q) = c_query + Σ_{shard ∈ span} (c_subquery
//!           + c_tenant_frac · frac(tenant docs in shard)
//!           + c_shard_frac · frac(shard docs)), and QPS = capacity / Work.
//! Doc terms use *fractions of the dataset* so the model is invariant to
//! the simulated dataset's absolute size.

use crate::sim::RunReport;
use esdb_common::TenantId;
use esdb_routing::ShardSpan;

/// Cost coefficients (work units; see module docs for the calibration).
#[derive(Debug, Clone, Copy)]
pub struct QueryCostModel {
    /// Per-query constant (client, translation, routing, result fetch).
    pub c_query: f64,
    /// Fixed cost of one subquery (network + per-shard planning + merge).
    pub c_subquery: f64,
    /// Cost × (tenant docs in shard / total docs).
    pub c_tenant_frac: f64,
    /// Cost × (shard docs / total docs) — big-shard overhead.
    pub c_shard_frac: f64,
    /// Total query-serving capacity (work units/sec across the cluster).
    pub capacity: f64,
}

impl Default for QueryCostModel {
    fn default() -> Self {
        // Calibrated so that: small tenant on 1 shard ≈ 15K QPS, on 8
        // shards ≈ 9K (the paper's 63% gap), and the top tenant's doc mass
        // costs ≈25% extra on a single shard.
        QueryCostModel {
            c_query: 10.0,
            c_subquery: 1.0,
            c_tenant_frac: 34.0,
            c_shard_frac: 8.0,
            capacity: 165_000.0,
        }
    }
}

/// Computes per-tenant QPS from a completed write-simulation report.
#[derive(Debug)]
pub struct QueryThroughputModel<'a> {
    report: &'a RunReport,
    model: QueryCostModel,
    total_docs: f64,
}

impl<'a> QueryThroughputModel<'a> {
    /// Wraps a report with the given cost model.
    pub fn new(report: &'a RunReport, model: QueryCostModel) -> Self {
        let total_docs = report.per_shard_writes.iter().sum::<u64>() as f64;
        QueryThroughputModel {
            report,
            model,
            total_docs: total_docs.max(1.0),
        }
    }

    /// The work one query for `tenant` with shard span `span` costs.
    pub fn query_cost(&self, tenant: TenantId, span: &ShardSpan) -> f64 {
        let tenant_docs = *self.report.per_tenant_docs.get(&tenant).unwrap_or(&0) as f64;
        let per_shard_tenant_frac = tenant_docs / span.len as f64 / self.total_docs;
        let mut cost = self.model.c_query;
        for shard in span.iter() {
            let shard_frac = self.report.per_shard_writes[shard.index()] as f64 / self.total_docs;
            cost += self.model.c_subquery
                + self.model.c_tenant_frac * per_shard_tenant_frac
                + self.model.c_shard_frac * shard_frac;
        }
        cost
    }

    /// Saturated QPS for `tenant` (capacity / per-query work).
    pub fn qps(&self, tenant: TenantId, span: &ShardSpan) -> f64 {
        self.model.capacity / self.query_cost(tenant, span)
    }

    /// Query latency proxy (ms): per-query constant plus the largest
    /// parallel subquery plus a span-proportional aggregation term.
    pub fn latency_ms(&self, tenant: TenantId, span: &ShardSpan) -> f64 {
        let tenant_docs = *self.report.per_tenant_docs.get(&tenant).unwrap_or(&0) as f64;
        let per_shard_tenant_frac = tenant_docs / span.len as f64 / self.total_docs;
        let worst = span
            .iter()
            .map(|shard| {
                let shard_frac =
                    self.report.per_shard_writes[shard.index()] as f64 / self.total_docs;
                self.model.c_subquery
                    + self.model.c_tenant_frac * per_shard_tenant_frac
                    + self.model.c_shard_frac * shard_frac
            })
            .fold(0.0f64, f64::max);
        // 1 work unit ≈ 2 ms of single-shard latency at the calibrated
        // scale (165 ms avg for a loaded shard matches Fig. 19's ≤164 ms).
        2.0 * (self.model.c_query / 2.0 + worst + 0.1 * span.len as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::fastmap::fast_map;

    fn report(shard_docs: &[u64], tenant_docs: &[(u64, u64)]) -> RunReport {
        let mut per_tenant = fast_map();
        for &(t, d) in tenant_docs {
            per_tenant.insert(TenantId(t), d);
        }
        RunReport {
            per_shard_writes: shard_docs.to_vec(),
            per_tenant_docs: per_tenant,
            duration_ms: 1_000,
            ..RunReport::default()
        }
    }

    #[test]
    fn fanout_gap_matches_calibration() {
        // Small tenant, uniform shards: 8-way fan-out should cost ~63%
        // more QPS-wise than single shard (the paper's Fig. 16 gap).
        let r = report(&[1_000; 512], &[(1, 10)]);
        let m = QueryThroughputModel::new(&r, QueryCostModel::default());
        let narrow = m.qps(TenantId(1), &ShardSpan::new(0, 1, 512));
        let wide = m.qps(TenantId(1), &ShardSpan::new(0, 8, 512));
        let gain = narrow / wide;
        assert!(
            (1.4..2.1).contains(&gain),
            "1-shard/8-shard QPS ratio {gain} out of the paper's range"
        );
    }

    #[test]
    fn big_tenant_single_shard_pays_doc_cost() {
        let mut shards = vec![1_000u64; 512];
        shards[0] = 100_000; // the hot shard holds ~16% of all docs
        let r = report(&shards, &[(1, 99_000), (2, 10)]);
        let m = QueryThroughputModel::new(&r, QueryCostModel::default());
        let hot = m.qps(TenantId(1), &ShardSpan::new(0, 1, 512));
        let cold = m.qps(TenantId(2), &ShardSpan::new(5, 1, 512));
        assert!(
            hot < cold,
            "hot-tenant queries must be slower: {hot} vs {cold}"
        );
        // But not catastrophically (the doc term is gentle).
        assert!(hot > cold * 0.3);
    }

    #[test]
    fn splitting_big_tenant_does_not_tank_qps() {
        // The paper's headline: dynamic's moderate fan-out for big tenants
        // is compensated by smaller shards — no significant QPS drop.
        let mut hashing_shards = vec![1_000u64; 512];
        hashing_shards[0] = 100_000;
        let r1 = report(&hashing_shards, &[(1, 99_000)]);
        let m1 = QueryThroughputModel::new(&r1, QueryCostModel::default());
        let hashing_qps = m1.qps(TenantId(1), &ShardSpan::new(0, 1, 512));

        let mut dynamic_shards = vec![1_000u64; 512];
        for s in dynamic_shards.iter_mut().take(16) {
            *s = 1_000 + 99_000 / 16;
        }
        let r2 = report(&dynamic_shards, &[(1, 99_000)]);
        let m2 = QueryThroughputModel::new(&r2, QueryCostModel::default());
        let dynamic_qps = m2.qps(TenantId(1), &ShardSpan::new(0, 16, 512));
        assert!(
            dynamic_qps > hashing_qps * 0.45,
            "split big tenant {dynamic_qps} vs single-shard {hashing_qps}"
        );
    }

    #[test]
    fn unknown_tenant_costs_only_overheads() {
        let r = report(&[10; 4], &[]);
        let m = QueryThroughputModel::new(&r, QueryCostModel::default());
        let c = m.query_cost(TenantId(99), &ShardSpan::new(0, 2, 4));
        assert!(c > 10.0 && c < 40.0);
    }

    #[test]
    fn latency_follows_worst_shard() {
        let mut shards = vec![100u64; 8];
        shards[3] = 100_000;
        let r = report(&shards, &[(1, 10)]);
        let m = QueryThroughputModel::new(&r, QueryCostModel::default());
        let lat_small = m.latency_ms(TenantId(1), &ShardSpan::new(0, 2, 8));
        let lat_with_big = m.latency_ms(TenantId(1), &ShardSpan::new(2, 2, 8));
        assert!(lat_with_big > lat_small);
    }
}
