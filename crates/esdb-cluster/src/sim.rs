//! The cluster simulation loop.

use crate::config::{ClusterConfig, PolicySpec};
use crate::node::{SimNode, Task};
use esdb_balancer::{LoadBalancer, WorkloadMonitor};
use esdb_chaos::{ChaosEvent, ChaosSchedule, FailoverController};
use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{Clock, ManualClock, NodeId, ShardId, SharedClock, TenantId, TimestampMs};
use esdb_consensus::{ConsensusConfig, FaultPlan, Master, Participant, RoundOutcome, RuleBody};
use esdb_routing::{DoubleHashRouting, DynamicRouting, HashRouting, RoutingPolicy, ShardSpan};
use esdb_telemetry::{
    Counter, DebugBundle, EventKind, Histogram, Labels, Telemetry, TelemetryConfig,
    TelemetrySnapshot, NO_PARENT,
};
use esdb_workload::WriteEvent;
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-tick statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickStats {
    /// Tick start time, ms.
    pub time_ms: TimestampMs,
    /// Writes generated this tick.
    pub generated: u64,
    /// Primary completions this tick.
    pub completed: u64,
    /// Sum of completion delays (ms) over completed writes.
    pub delay_sum_ms: u64,
    /// Max completion delay this tick.
    pub max_delay_ms: u64,
    /// Writes waiting in client queues at tick end.
    pub client_backlog: u64,
    /// Writes in the system at tick end (client queues + node queues) —
    /// feeds the Little's-law delay estimate.
    pub in_system: u64,
}

/// The full output of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-tick series.
    pub ticks: Vec<TickStats>,
    /// Completed primaries per node.
    pub per_node_completed: Vec<u64>,
    /// Lifetime utilization per node.
    pub per_node_utilization: Vec<f64>,
    /// Completed writes per shard.
    pub per_shard_writes: Vec<u64>,
    /// Writes *routed* to each shard (arrival counts — saturation cannot
    /// mask skew here, which is what Fig. 12(b) measures).
    pub per_shard_arrivals: Vec<u64>,
    /// Bytes per shard.
    pub per_shard_bytes: Vec<u64>,
    /// Documents per tenant.
    pub per_tenant_docs: FastMap<TenantId, u64>,
    /// Secondary hashing rules committed during the run.
    pub rules_committed: usize,
    /// Wall-clock covered, ms.
    pub duration_ms: u64,
    /// Node crashes applied by the chaos schedule.
    pub node_crashes: u64,
    /// Node restarts applied by the chaos schedule.
    pub node_restarts: u64,
    /// Shard promotions completed (replica took over as primary).
    pub promotions: u64,
    /// Translog ops replayed by completed promotions.
    pub replayed_ops: u64,
    /// Translog ops replayed to rebuild replicas on surviving nodes.
    pub resync_ops: u64,
    /// Client write retries scheduled (dead/in-transition shard backoff).
    pub write_retries: u64,
    /// Writes failed back to the client after exhausting the retry budget.
    pub failed_writes: u64,
    /// Acknowledged writes whose shard lost every live copy (only possible
    /// when primary *and* replica nodes are down simultaneously — the
    /// failover bench asserts this stays zero).
    pub lost_acknowledged_writes: u64,
}

impl RunReport {
    /// Mean completed throughput (writes/sec) after `warmup_ms`.
    pub fn throughput_tps(&self, warmup_ms: u64) -> f64 {
        let (mut done, mut ms) = (0u64, 0u64);
        for t in &self.ticks {
            if t.time_ms >= warmup_ms {
                done += t.completed;
                ms += tick_len(&self.ticks);
            }
        }
        if ms == 0 {
            0.0
        } else {
            done as f64 * 1_000.0 / ms as f64
        }
    }

    /// Mean write delay (ms) after `warmup_ms`, via Little's law:
    /// `avg sojourn = (∫ writes-in-system dt) / completions`. Unlike a
    /// completed-writes average, this charges the growing queues of an
    /// overloaded policy to its delay instead of silently dropping them.
    pub fn avg_delay_ms(&self, warmup_ms: u64) -> f64 {
        let tick = tick_len(&self.ticks);
        let (mut area, mut n) = (0u128, 0u64);
        for t in &self.ticks {
            if t.time_ms >= warmup_ms {
                area += (t.in_system as u128) * tick as u128;
                n += t.completed;
            }
        }
        if n == 0 {
            0.0
        } else {
            area as f64 / n as f64
        }
    }

    /// Mean delay of *completed* writes only (the biased metric, kept for
    /// comparison and for runs that fully drain).
    pub fn avg_completed_delay_ms(&self, warmup_ms: u64) -> f64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for t in &self.ticks {
            if t.time_ms >= warmup_ms {
                sum += t.delay_sum_ms;
                n += t.completed;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Max write delay (ms) in the window `[from_ms, to_ms)` — Fig. 19's
    /// headline metric.
    pub fn max_delay_in(&self, from_ms: u64, to_ms: u64) -> u64 {
        self.ticks
            .iter()
            .filter(|t| t.time_ms >= from_ms && t.time_ms < to_ms)
            .map(|t| t.max_delay_ms)
            .max()
            .unwrap_or(0)
    }

    /// Per-node completed throughput (writes/sec).
    pub fn node_throughput_tps(&self) -> Vec<f64> {
        let secs = (self.duration_ms as f64 / 1_000.0).max(1e-9);
        self.per_node_completed
            .iter()
            .map(|&c| c as f64 / secs)
            .collect()
    }

    /// Population stddev of per-node throughput.
    pub fn node_throughput_stddev(&self) -> f64 {
        esdb_common::stats::stddev(&self.node_throughput_tps())
    }

    /// Population stddev of per-shard *offered* write throughput
    /// (arrivals/sec). Arrival-based on purpose: a saturated node caps its
    /// shards' completions, which would understate hashing's skew.
    pub fn shard_throughput_stddev(&self) -> f64 {
        let secs = (self.duration_ms as f64 / 1_000.0).max(1e-9);
        let tps: Vec<f64> = self
            .per_shard_arrivals
            .iter()
            .map(|&c| c as f64 / secs)
            .collect();
        esdb_common::stats::stddev(&tps)
    }
}

fn tick_len(ticks: &[TickStats]) -> u64 {
    if ticks.len() >= 2 {
        ticks[1].time_ms - ticks[0].time_ms
    } else {
        100
    }
}

enum PolicyImpl {
    Hash(HashRouting),
    Double(DoubleHashRouting),
    Dynamic(DynamicRouting),
}

impl PolicyImpl {
    fn route(&self, ev: &WriteEvent) -> ShardId {
        match self {
            PolicyImpl::Hash(p) => p.route_write(ev.tenant, ev.record, ev.created_at),
            PolicyImpl::Double(p) => p.route_write(ev.tenant, ev.record, ev.created_at),
            PolicyImpl::Dynamic(p) => p.route_write(ev.tenant, ev.record, ev.created_at),
        }
    }

    fn read_span(&self, tenant: TenantId, now: TimestampMs) -> ShardSpan {
        match self {
            PolicyImpl::Hash(p) => p.read_span(tenant, now),
            PolicyImpl::Double(p) => p.read_span(tenant, now),
            PolicyImpl::Dynamic(p) => p.read_span(tenant, now),
        }
    }
}

/// The simulated cluster.
pub struct SimCluster {
    cfg: ClusterConfig,
    clock: SharedClock,
    clock_driver: Arc<ManualClock>,
    nodes: Vec<SimNode>,
    primary_node: Vec<u32>,
    replica_node: Vec<u32>,
    policy: PolicyImpl,
    /// One consensus participant per node; participant 0's rule list backs
    /// the router.
    participants: Vec<Participant>,
    master: Master,
    balancer: LoadBalancer,
    monitor: WorkloadMonitor,
    /// The unified fault plan: node, storage, and consensus faults all
    /// flow from this one seeded schedule (`set_fault_plan` is a shim
    /// writing its base consensus plan).
    chaos: ChaosSchedule,
    /// Node health, promotion tracking and recovery telemetry.
    controller: FailoverController,
    /// Shared metrics: the monitor, master, and dynamic router record
    /// into this registry; the sim adds per-node completion-delay
    /// histograms (`esdb_sim_write_delay_ms{node}`).
    telemetry: Arc<Telemetry>,
    /// Cached per-node delay histogram handles, indexed by node.
    node_delay_ms: Vec<Arc<Histogram>>,
    client_queue: VecDeque<WriteEvent>,
    isolated_queue: VecDeque<WriteEvent>,
    /// Writes backing off after hitting a dead or in-transition shard.
    retry_queue: VecDeque<RetryEntry>,
    /// Per-shard translog ops since the last simulated flush — what a
    /// promotion must replay.
    translog_tail_ops: Vec<u64>,
    last_flush_ms: TimestampMs,
    max_pending_work: f64,
    last_monitor_ms: TimestampMs,
    report: RunReport,
    /// Fault-path counters (satellite of the chaos PR: nothing fails
    /// silently).
    retries_total: Arc<Counter>,
    retries_exhausted: Arc<Counter>,
    degraded_reads: Arc<Counter>,
    replica_sync_skipped: Arc<Counter>,
    dispatch_blocked_consensus: Arc<Counter>,
    dispatch_blocked_busy: Arc<Counter>,
}

/// A write waiting out its backoff before re-dispatch.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    ev: WriteEvent,
    /// Index of the *next* backoff to use if this attempt fails too.
    attempt: u32,
    not_before: TimestampMs,
}

impl SimCluster {
    /// Builds a cluster per `cfg`, starting simulated time at 0.
    pub fn new(cfg: ClusterConfig) -> Self {
        let (clock, clock_driver) = SharedClock::manual(0);
        let n = cfg.n_shards;
        let nodes: Vec<SimNode> = (0..cfg.n_nodes)
            .map(|_| SimNode::new(cfg.node_capacity_per_sec * cfg.tick_ms as f64 / 1_000.0))
            .collect();
        // Placement: primary round-robin; replica on the next node —
        // "shards and replicas are randomly allocated to different nodes"
        // with the adjacency the paper observes in Fig. 13 ("neighboring
        // nodes have similar throughput ... because each shard has a
        // replica").
        let primary_node: Vec<u32> = (0..n).map(|s| s % cfg.n_nodes).collect();
        let replica_node: Vec<u32> = (0..n).map(|s| (s + 1) % cfg.n_nodes).collect();

        let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
        let node_delay_ms: Vec<Arc<Histogram>> = (0..cfg.n_nodes)
            .map(|i| {
                telemetry
                    .registry()
                    .histogram("esdb_sim_write_delay_ms", Labels::node(i))
            })
            .collect();
        let participants: Vec<Participant> = (0..cfg.n_nodes)
            .map(|i| Participant::new(NodeId(i)))
            .collect();
        let policy = match cfg.policy {
            PolicySpec::Hashing => PolicyImpl::Hash(HashRouting::new(n)),
            PolicySpec::DoubleHashing { s } => PolicyImpl::Double(DoubleHashRouting::new(n, s)),
            PolicySpec::Dynamic => PolicyImpl::Dynamic(
                DynamicRouting::with_rules(n, participants[0].rules())
                    .with_telemetry(telemetry.registry()),
            ),
        };
        let master = Master::new(
            clock.clone(),
            ConsensusConfig {
                interval_t_ms: cfg.consensus_t_ms,
            },
        )
        .with_telemetry(Arc::clone(telemetry.registry()));
        let balancer =
            LoadBalancer::new(cfg.balancer).with_journal(Arc::clone(telemetry.journal()));
        let controller = FailoverController::new(cfg.n_nodes, telemetry.registry())
            .with_journal(Arc::clone(telemetry.journal()));
        let max_pending_work = cfg.client.max_pending_secs * cfg.node_capacity_per_sec;
        let report = RunReport {
            per_node_completed: vec![0; cfg.n_nodes as usize],
            per_node_utilization: vec![0.0; cfg.n_nodes as usize],
            per_shard_writes: vec![0; n as usize],
            per_shard_arrivals: vec![0; n as usize],
            per_shard_bytes: vec![0; n as usize],
            per_tenant_docs: fast_map(),
            ..RunReport::default()
        };
        let registry = Arc::clone(telemetry.registry());
        let counter = |name: &'static str, labels: Labels| registry.counter(name, labels);
        SimCluster {
            clock,
            clock_driver,
            nodes,
            primary_node,
            replica_node,
            policy,
            participants,
            master,
            balancer,
            monitor: WorkloadMonitor::with_registry(Arc::clone(telemetry.registry())),
            chaos: ChaosSchedule::new(),
            controller,
            telemetry,
            node_delay_ms,
            client_queue: VecDeque::new(),
            isolated_queue: VecDeque::new(),
            retry_queue: VecDeque::new(),
            translog_tail_ops: vec![0; cfg.n_shards as usize],
            last_flush_ms: 0,
            max_pending_work,
            last_monitor_ms: 0,
            report,
            retries_total: counter("esdb_sim_write_retries_total", Labels::none()),
            retries_exhausted: counter("esdb_sim_write_retries_exhausted_total", Labels::none()),
            degraded_reads: counter("esdb_sim_degraded_reads_total", Labels::none()),
            replica_sync_skipped: counter("esdb_sim_replica_sync_skipped_total", Labels::none()),
            dispatch_blocked_consensus: counter(
                "esdb_sim_dispatch_blocked_total",
                Labels::stage("consensus"),
            ),
            dispatch_blocked_busy: counter(
                "esdb_sim_dispatch_blocked_total",
                Labels::stage("busy"),
            ),
            cfg,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> TimestampMs {
        self.clock.now()
    }

    /// Injects a consensus fault plan for subsequent balancer rounds.
    ///
    /// Thin shim kept for older callers: writes the base consensus plan of
    /// the unified [`ChaosSchedule`], which `Link` chaos events also
    /// mutate and down nodes overlay with partitions.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.chaos.set_consensus_plan(plan);
    }

    /// Installs the unified chaos schedule (replaces any previous one,
    /// including its base consensus plan).
    pub fn set_chaos_schedule(&mut self, schedule: ChaosSchedule) {
        self.chaos = schedule;
    }

    /// The chaos schedule driving this run.
    pub fn chaos(&self) -> &ChaosSchedule {
        &self.chaos
    }

    /// Whether `node` is currently serving.
    pub fn node_up(&self, node: u32) -> bool {
        self.controller.is_up(node)
    }

    /// The node that currently hosts `shard`'s primary.
    pub fn primary_of(&self, shard: ShardId) -> u32 {
        self.primary_node[shard.index()]
    }

    /// Read routing under failures (reads degrade gracefully): the
    /// primary when healthy; the surviving/promoting copy (counted in
    /// `esdb_sim_degraded_reads_total`) when the shard is mid-failover;
    /// `None` only when every copy is down.
    pub fn read_target(&mut self, shard: ShardId) -> Option<u32> {
        let s = shard.index();
        let primary = self.primary_node[s];
        if self.controller.is_up(primary) {
            if self.controller.is_in_transition(s as u32) {
                self.degraded_reads.inc();
            }
            return Some(primary);
        }
        let replica = self.replica_node[s];
        if self.controller.is_up(replica) {
            self.degraded_reads.inc();
            return Some(replica);
        }
        None
    }

    /// The tenant's current read span (for the query model).
    pub fn read_span(&self, tenant: TenantId) -> ShardSpan {
        self.policy.read_span(tenant, self.now())
    }

    /// Runs one tick with `events` arriving at the write clients.
    pub fn step(&mut self, events: Vec<WriteEvent>) {
        let now = self.now();
        let tick_end = now + self.cfg.tick_ms;
        // Chaos events due at this tick fire before anything else — a
        // crash at tick T affects tick T's dispatch and service.
        for ev in self.chaos.take_due(now) {
            self.apply_chaos_event(ev, now);
        }
        // Simulated flush cadence: rolling the translog generation bounds
        // the tail a later promotion must replay.
        if now.saturating_sub(self.last_flush_ms) >= self.cfg.failover.flush_interval_ms {
            self.last_flush_ms = now;
            self.translog_tail_ops.iter_mut().for_each(|c| *c = 0);
        }
        let mut stats = TickStats {
            time_ms: now,
            generated: events.len() as u64,
            ..TickStats::default()
        };
        // The monitor counts *arriving* workloads at the coordinator
        // (§3.2), not completions — a saturated node must not be able to
        // suppress its own hotspot signal by completing less.
        for ev in &events {
            let shard = self.policy.route(ev);
            let node = self.primary_node[shard.index()];
            self.report.per_shard_arrivals[shard.index()] += 1;
            self.monitor
                .record_write(ev.tenant, shard, NodeId(node), ev.bytes as u64);
        }
        self.client_queue.extend(events);

        // Backed-off writes whose delay expired re-enter dispatch first
        // (they are the oldest writes in the system).
        for _ in 0..self.retry_queue.len() {
            let Some(entry) = self.retry_queue.pop_front() else {
                break;
            };
            if entry.not_before > now {
                self.retry_queue.push_back(entry);
                continue;
            }
            match self.try_dispatch(&entry.ev) {
                Dispatch::Accepted => {}
                Dispatch::Busy | Dispatch::Unavailable => {
                    self.schedule_retry(entry.ev, entry.attempt, now);
                }
            }
        }

        // Client dispatch (one-hop routing, §3.1): FIFO with head-of-line
        // blocking on overloaded workers; hotspot isolation diverts instead.
        // A dead or in-transition shard never head-of-line blocks — its
        // writes back off individually (bounded retry).
        let isolation = self.cfg.client.hotspot_isolation;
        while let Some(ev) = self.client_queue.pop_front() {
            match self.try_dispatch(&ev) {
                Dispatch::Accepted => {}
                Dispatch::Unavailable => self.schedule_retry(ev, 0, now),
                Dispatch::Busy => {
                    if isolation {
                        self.isolated_queue.push_back(ev);
                    } else {
                        // Head-of-line blocked: put it back and stop.
                        self.client_queue.push_front(ev);
                        break;
                    }
                }
            }
        }
        // Isolated queue drains opportunistically without blocking anyone.
        // Retries are capped per tick (a few times the cluster's service
        // rate) so a deep backlog costs O(capacity), not O(backlog), per
        // tick — the real client retries in batches too.
        let max_retries = (4.0
            * self.cfg.node_capacity_per_sec
            * self.cfg.n_nodes as f64
            * self.cfg.tick_ms as f64
            / 1_000.0) as usize;
        for _ in 0..max_retries.min(self.isolated_queue.len()) {
            let Some(ev) = self.isolated_queue.pop_front() else {
                break;
            };
            match self.try_dispatch(&ev) {
                Dispatch::Accepted => {}
                Dispatch::Unavailable => self.schedule_retry(ev, 0, now),
                Dispatch::Busy => self.isolated_queue.push_back(ev),
            }
        }

        // Snapshot writes-in-system after dispatch, before service, so a
        // write that arrives and completes in the same tick still counts
        // one tick of sojourn (the Little's-law delay floor ≈ tick).
        stats.in_system =
            (self.client_queue.len() + self.isolated_queue.len() + self.retry_queue.len()) as u64
                + self.nodes.iter().map(|n| n.pending_primaries).sum::<u64>();

        // Node processing (down nodes serve nothing).
        let replica_cost = self.cfg.replica_cost;
        let mut replica_pushes: Vec<(u32, ShardId)> = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !self.controller.is_up(i as u32) {
                continue;
            }
            let mut completions: Vec<Task> = Vec::new();
            node.run_tick(replica_cost, |t| completions.push(t));
            for t in completions {
                match t {
                    Task::Primary { ev, shard } => {
                        let mut delay = tick_end.saturating_sub(ev.created_at);
                        if !self.cfg.client.one_hop {
                            // Two-hop routing pays the coordinator forward.
                            delay += self.cfg.client.hop_latency_ms;
                        }
                        stats.completed += 1;
                        stats.delay_sum_ms += delay;
                        stats.max_delay_ms = stats.max_delay_ms.max(delay);
                        self.node_delay_ms[i].record(delay);
                        self.report.per_node_completed[i] += 1;
                        self.report.per_shard_writes[shard.index()] += 1;
                        self.report.per_shard_bytes[shard.index()] += ev.bytes as u64;
                        *self.report.per_tenant_docs.entry(ev.tenant).or_insert(0) += 1;
                        self.translog_tail_ops[shard.index()] += 1;
                        self.participants[i].observe_executed(ev.created_at);
                        let replica = self.replica_node[shard.index()];
                        if replica != i as u32 && self.controller.is_up(replica) {
                            replica_pushes.push((replica, shard));
                        } else if replica != i as u32 {
                            // A dead replica can't sync; surfaced, not
                            // swallowed — the restart path resyncs it.
                            self.replica_sync_skipped.inc();
                        }
                    }
                    Task::Replica { .. } => {}
                    Task::Recovery {
                        shard,
                        ops,
                        promote,
                        cause,
                        ..
                    } => {
                        if promote {
                            if self
                                .controller
                                .complete_promotion(shard.index() as u32, tick_end, ops)
                                .is_some()
                            {
                                self.report.promotions += 1;
                                self.report.replayed_ops += ops;
                            }
                        } else {
                            self.controller.record_resync_caused_by(ops, cause);
                            self.report.resync_ops += ops;
                        }
                    }
                }
            }
        }
        for (node, shard) in replica_pushes {
            self.nodes[node as usize].enqueue(Task::Replica { shard }, replica_cost);
        }

        // Balancer period (runtime phase of Algorithm 1) — dynamic only.
        if matches!(self.cfg.policy, PolicySpec::Dynamic)
            && tick_end.saturating_sub(self.last_monitor_ms) >= self.cfg.monitor_period_ms
        {
            self.last_monitor_ms = tick_end;
            let period = self.monitor.take_period();
            let proposals = self.balancer.on_period(&period);
            // Down nodes are partitioned in the consensus overlay — a dead
            // participant must not silently ack rule rounds.
            let plan = self
                .controller
                .consensus_overlay(self.chaos.consensus_plan());
            for p in proposals {
                let body = RuleBody::single(p.tenant, p.offset);
                // Span in effect before the round, for the rule event's
                // old → new transition (participant 0 backs the router).
                let old_span = self.participants[0]
                    .rules()
                    .read()
                    .offset_for_write(p.tenant, tick_end);
                match self.master.run_round(&body, &mut self.participants, &plan) {
                    RoundOutcome::Committed { .. } => {
                        self.report.rules_committed += 1;
                        // commit_wait_ns stays 0 in the simulation: the
                        // round is instantaneous in sim time, and wall-ns
                        // would break same-seed bundle byte-identity.
                        self.telemetry.emit(
                            EventKind::RuleAppended {
                                tenant: p.tenant.0,
                                old_span,
                                new_span: p.offset,
                                commit_wait_ns: 0,
                            },
                            Labels::tenant(p.tenant.0),
                            p.detected_seq,
                        );
                    }
                    RoundOutcome::Aborted { .. } => self.balancer.on_abort(p.tenant, p.offset),
                }
            }
        }

        stats.client_backlog =
            (self.client_queue.len() + self.isolated_queue.len() + self.retry_queue.len()) as u64;
        self.report.ticks.push(stats);
        self.clock_driver.advance(self.cfg.tick_ms);
    }

    fn try_dispatch(&mut self, ev: &WriteEvent) -> Dispatch {
        let shard = self.policy.route(ev);
        let node_idx = self.primary_node[shard.index()] as usize;
        // Failover block: the shard's primary is down or still replaying
        // its translog tail. The write backs off with bounded retry rather
        // than head-of-line blocking healthy shards.
        if !self.controller.is_up(node_idx as u32)
            || self.controller.is_in_transition(shard.index() as u32)
        {
            return Dispatch::Unavailable;
        }
        // Consensus block: a pending rule holds writes created after its
        // effective time (§4.3). Treated like a busy worker by the client.
        if self.participants[node_idx]
            .check_admit(ev.created_at)
            .is_err()
        {
            self.dispatch_blocked_consensus.inc();
            return Dispatch::Busy;
        }
        let node = &mut self.nodes[node_idx];
        if node.pending_work >= self.max_pending_work {
            self.dispatch_blocked_busy.inc();
            return Dispatch::Busy;
        }
        node.enqueue(Task::Primary { ev: *ev, shard }, 1.0);
        Dispatch::Accepted
    }

    /// Journals a chaos firing; returns its seq so the resulting crash
    /// chain links back to the fault that caused it.
    fn journal_fault(&self, fault: &'static str, node: u32) -> u64 {
        self.telemetry.emit(
            EventKind::ChaosFaultInjected { fault, node },
            Labels::node(node),
            NO_PARENT,
        )
    }

    /// Applies one due chaos event at the start of a tick.
    fn apply_chaos_event(&mut self, ev: ChaosEvent, now: TimestampMs) {
        match ev {
            ChaosEvent::NodeCrash { node } => {
                let fault_seq = self.journal_fault("node_crash", node);
                self.crash_node(node, now, fault_seq);
            }
            ChaosEvent::NodeRestart { node } => {
                self.journal_fault("node_restart", node);
                self.restart_node(node, now);
            }
            ChaosEvent::SlowNode { node, factor } => {
                self.journal_fault("slow_node", node);
                let n = node as usize;
                if n < self.nodes.len() {
                    self.controller.set_slow_factor(node, factor);
                    self.nodes[n].set_capacity_factor(factor);
                }
            }
            // Link faults already folded into the base consensus plan by
            // `ChaosSchedule::take_due`.
            ChaosEvent::Link { .. } => {}
        }
    }

    fn crash_node(&mut self, node: u32, now: TimestampMs, fault_seq: u64) {
        if node as usize >= self.nodes.len()
            || !self.controller.on_crash_caused_by(node, now, fault_seq)
        {
            return;
        }
        self.report.node_crashes += 1;
        // Queued work dies with the node; unacknowledged client writes
        // re-enter routing through the retry path (the client never got an
        // ack, so it re-sends).
        for task in self.nodes[node as usize].crash() {
            if let Task::Primary { ev, .. } = task {
                self.schedule_retry(ev, 0, now);
            }
        }
        let replay_cost = self.cfg.failover.replay_cost;
        for s in 0..self.cfg.n_shards as usize {
            if self.primary_node[s] == node {
                let replica = self.replica_node[s];
                if replica != node && self.controller.is_up(replica) {
                    // Promote the replica: it becomes primary once it has
                    // replayed the translog tail it mirrored in real time.
                    self.primary_node[s] = replica;
                    let new_replica = self.pick_surviving_node(replica).unwrap_or(replica);
                    self.replica_node[s] = new_replica;
                    self.controller.begin_promotion(s as u32, node, now);
                    let ops = self.translog_tail_ops[s];
                    self.nodes[replica as usize].enqueue(
                        Task::Recovery {
                            shard: ShardId(s as u32),
                            ops,
                            work: (ops as f64 * replay_cost).max(1.0),
                            promote: true,
                            cause: self.controller.crash_seq_of(node),
                        },
                        (ops as f64 * replay_cost).max(1.0),
                    );
                } else {
                    // Primary and replica both down: every acknowledged
                    // write on the shard is gone (diskless restart model).
                    // The failover bench asserts this stays zero.
                    self.report.lost_acknowledged_writes += self.report.per_shard_writes[s];
                }
            } else if self.replica_node[s] == node {
                // The replica died; the primary serves alone until a
                // surviving node rebuilds the copy.
                let primary = self.primary_node[s];
                if let Some(new_replica) = self.pick_surviving_node(primary) {
                    self.replica_node[s] = new_replica;
                    let ops = self.translog_tail_ops[s];
                    if ops > 0 {
                        self.nodes[new_replica as usize].enqueue(
                            Task::Recovery {
                                shard: ShardId(s as u32),
                                ops,
                                work: (ops as f64 * replay_cost).max(1.0),
                                promote: false,
                                cause: self.controller.crash_seq_of(node),
                            },
                            (ops as f64 * replay_cost).max(1.0),
                        );
                    }
                } else {
                    self.replica_node[s] = primary;
                }
            }
        }
    }

    fn restart_node(&mut self, node: u32, now: TimestampMs) {
        if node as usize >= self.nodes.len() || self.controller.on_restart(node, now).is_none() {
            return;
        }
        self.report.node_restarts += 1;
        self.nodes[node as usize].set_capacity_factor(self.controller.slow_factor(node));
        let replay_cost = self.cfg.failover.replay_cost;
        for s in 0..self.cfg.n_shards as usize {
            let primary = self.primary_node[s];
            if !self.controller.is_up(primary) && !self.controller.is_in_transition(s as u32) {
                // Orphaned shard (every copy was down at crash time): the
                // restarted node adopts it with an empty store.
                self.primary_node[s] = node;
                self.controller.begin_promotion(s as u32, primary, now);
                self.nodes[node as usize].enqueue(
                    Task::Recovery {
                        shard: ShardId(s as u32),
                        ops: 0,
                        work: 1.0,
                        promote: true,
                        cause: self.controller.last_restart_seq(),
                    },
                    1.0,
                );
            } else if self.replica_node[s] == self.primary_node[s]
                || !self.controller.is_up(self.replica_node[s])
            {
                // Shard running without a live replica: the restarted node
                // takes the copy and resyncs the tail.
                if self.primary_node[s] != node {
                    self.replica_node[s] = node;
                    let ops = self.translog_tail_ops[s];
                    if ops > 0 {
                        self.nodes[node as usize].enqueue(
                            Task::Recovery {
                                shard: ShardId(s as u32),
                                ops,
                                work: (ops as f64 * replay_cost).max(1.0),
                                promote: false,
                                cause: self.controller.last_restart_seq(),
                            },
                            (ops as f64 * replay_cost).max(1.0),
                        );
                    }
                }
            }
        }
    }

    /// First up node scanning from `exclude + 1`, or `None` if `exclude`
    /// is the only survivor. Deterministic by construction.
    fn pick_surviving_node(&self, exclude: u32) -> Option<u32> {
        let n = self.cfg.n_nodes;
        (1..n)
            .map(|d| (exclude + d) % n)
            .find(|&c| self.controller.is_up(c))
    }

    /// Queues `ev` for re-dispatch after the `attempt`-th backoff, or
    /// fails the write once the retry budget is exhausted (both outcomes
    /// are surfaced — counters plus the run report, never a silent drop).
    fn schedule_retry(&mut self, ev: WriteEvent, attempt: u32, now: TimestampMs) {
        match self.cfg.failover.retry.backoff_ms(attempt) {
            Some(delay) => {
                self.retries_total.inc();
                self.report.write_retries += 1;
                self.retry_queue.push_back(RetryEntry {
                    ev,
                    attempt: attempt + 1,
                    not_before: now + delay,
                });
            }
            None => {
                self.retries_exhausted.inc();
                self.report.failed_writes += 1;
            }
        }
    }

    /// Lets in-flight work drain for `ms` without new arrivals.
    pub fn drain(&mut self, ms: u64) {
        let ticks = ms / self.cfg.tick_ms;
        for _ in 0..ticks {
            self.step(Vec::new());
        }
    }

    /// Finalizes and returns the run report.
    pub fn finish(mut self) -> RunReport {
        for (i, n) in self.nodes.iter().enumerate() {
            self.report.per_node_utilization[i] = n.utilization();
        }
        self.report.duration_ms = self.now();
        // Close open unavailability windows so the telemetry is complete
        // even when a node never restarted.
        self.controller.finish(self.now());
        self.report
    }

    /// Immutable peek at the report built so far.
    pub fn report_so_far(&self) -> &RunReport {
        &self.report
    }

    /// Number of writes currently waiting in client queues (including
    /// writes backing off after hitting a failed-over shard).
    pub fn backlog(&self) -> usize {
        self.client_queue.len() + self.isolated_queue.len() + self.retry_queue.len()
    }

    /// Writes anywhere in the system: client queues, retry backoff, and
    /// worker queues. Zero means every accepted write has completed.
    pub fn in_flight(&self) -> u64 {
        self.backlog() as u64 + self.nodes.iter().map(|n| n.pending_primaries).sum::<u64>()
    }

    /// The shared telemetry facade (monitor, consensus, routing, and
    /// per-node delay series all record into its registry).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Point-in-time snapshot of every metric the run has produced.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// One-call postmortem artifact for the simulated cluster: metrics,
    /// journal tail (the crash → promotion → replay → recovery chains),
    /// slow logs, simulation config, and the committed rule list. All
    /// payloads are simulation-time based, so same-seed runs render
    /// byte-identical bundles.
    pub fn debug_bundle(&self) -> DebugBundle {
        let mut bundle = DebugBundle::from_telemetry(&self.telemetry, 512);
        let c = &self.cfg;
        bundle.config = vec![
            ("n_nodes".to_string(), c.n_nodes.to_string()),
            ("n_shards".to_string(), c.n_shards.to_string()),
            ("tick_ms".to_string(), c.tick_ms.to_string()),
            (
                "node_capacity_per_sec".to_string(),
                c.node_capacity_per_sec.to_string(),
            ),
            (
                "monitor_period_ms".to_string(),
                c.monitor_period_ms.to_string(),
            ),
            ("consensus_t_ms".to_string(), c.consensus_t_ms.to_string()),
            (
                "flush_interval_ms".to_string(),
                c.failover.flush_interval_ms.to_string(),
            ),
        ];
        bundle.rules = {
            let rules = self.participants[0].rules();
            let rules = rules.read();
            let mut out = String::from("[");
            for (i, r) in rules.rules().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let tenants: Vec<String> = r.tenants.iter().map(|t| t.0.to_string()).collect();
                out.push_str(&format!(
                    "{{\"effective_time\": {}, \"offset\": {}, \"tenants\": [{}]}}",
                    r.effective_time,
                    r.offset,
                    tenants.join(", ")
                ));
            }
            out.push(']');
            out
        };
        bundle
    }

    /// Per-node completion-delay quantiles (ms), one row per node in
    /// node order — the per-node latency axis of Figs. 13/14.
    pub fn node_delay_quantiles(&self, qs: &[f64]) -> Vec<Vec<u64>> {
        self.node_delay_ms
            .iter()
            .map(|h| {
                let snap = h.snapshot();
                qs.iter().map(|&q| snap.quantile(q)).collect()
            })
            .collect()
    }
}

enum Dispatch {
    Accepted,
    /// The target worker is overloaded or consensus-blocked.
    Busy,
    /// The shard's primary is down or mid-promotion; back off and retry.
    Unavailable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use esdb_workload::{RateSchedule, TraceGenerator};

    fn run(
        policy: PolicySpec,
        theta: f64,
        rate: f64,
        secs: u64,
        tweak: impl Fn(&mut ClusterConfig),
    ) -> RunReport {
        let mut cfg = ClusterConfig::small(policy);
        tweak(&mut cfg);
        let mut cluster = SimCluster::new(cfg.clone());
        let mut gen = TraceGenerator::new(1_000, theta, RateSchedule::constant(rate), 42);
        let ticks = secs * 1_000 / cfg.tick_ms;
        for _ in 0..ticks {
            let now = cluster.now();
            let events = gen.tick(now, cfg.tick_ms);
            cluster.step(events);
        }
        cluster.finish()
    }

    #[test]
    fn uniform_load_under_capacity_completes_everything() {
        // 4 nodes × 1000 ops/s, replica cost 1 → ceiling 2000/s; run 1000/s.
        let r = run(PolicySpec::Hashing, 0.0, 1_000.0, 20, |_| {});
        let tput = r.throughput_tps(5_000);
        assert!((tput - 1_000.0).abs() < 100.0, "tput {tput}");
        let delay = r.avg_delay_ms(5_000);
        assert!(delay < 500.0, "uniform under-capacity delay {delay}");
    }

    #[test]
    fn skewed_hashing_saturates_below_balanced_policies() {
        let hash = run(PolicySpec::Hashing, 1.2, 1_800.0, 30, |_| {});
        let double = run(PolicySpec::DoubleHashing { s: 8 }, 1.2, 1_800.0, 30, |_| {});
        let t_hash = hash.throughput_tps(10_000);
        let t_double = double.throughput_tps(10_000);
        assert!(
            t_double > t_hash * 1.15,
            "double {t_double} should beat hashing {t_hash} under skew"
        );
    }

    #[test]
    fn dynamic_converges_to_double_hashing_throughput() {
        let double = run(PolicySpec::DoubleHashing { s: 8 }, 1.2, 1_800.0, 60, |_| {});
        let dynamic = run(PolicySpec::Dynamic, 1.2, 1_800.0, 60, |_| {});
        let t_double = double.throughput_tps(30_000);
        let t_dyn = dynamic.throughput_tps(30_000);
        assert!(
            t_dyn > t_double * 0.85,
            "dynamic {t_dyn} should approach double hashing {t_double}"
        );
        assert!(dynamic.rules_committed > 0, "balancer must have acted");
    }

    #[test]
    fn dynamic_reduces_node_stddev_vs_hashing() {
        let hash = run(PolicySpec::Hashing, 1.2, 1_500.0, 40, |_| {});
        let dynamic = run(PolicySpec::Dynamic, 1.2, 1_500.0, 40, |_| {});
        assert!(
            dynamic.node_throughput_stddev() < hash.node_throughput_stddev(),
            "dynamic stddev {} should be below hashing {}",
            dynamic.node_throughput_stddev(),
            hash.node_throughput_stddev()
        );
    }

    #[test]
    fn old_records_keep_routing_to_base_shard_after_rule() {
        // Directly exercise the read-your-writes path inside the sim: run
        // dynamic long enough to commit rules, then verify the span covers
        // all shards that received the hot tenant's writes.
        let mut cfg = ClusterConfig::small(PolicySpec::Dynamic);
        cfg.monitor_period_ms = 1_000;
        let mut cluster = SimCluster::new(cfg.clone());
        let mut gen = TraceGenerator::new(1_000, 1.5, RateSchedule::constant(1_500.0), 7);
        for _ in 0..400 {
            let now = cluster.now();
            let events = gen.tick(now, cfg.tick_ms);
            cluster.step(events);
        }
        let hot = gen.tenant_of_rank(1);
        let span = cluster.read_span(hot);
        assert!(
            span.len > 1,
            "hot tenant must have been split, span {span:?}"
        );
        let report = cluster.finish();
        // Every shard with a meaningful share of the hot tenant's traffic
        // must be inside the span. (We can't attribute shard writes to
        // tenants in the report, so check the span is where the mass is:
        // shards in the span hold more writes than the policy's base alone
        // could.)
        let in_span: u64 = span
            .iter()
            .map(|s| report.per_shard_writes[s.index()])
            .sum();
        assert!(in_span > 0);
    }

    #[test]
    fn hotspot_isolation_protects_other_tenants() {
        // Without isolation, a saturated hot node head-of-line blocks the
        // shared dispatch queue and tanks everyone's completions.
        let with = run(PolicySpec::Hashing, 1.5, 1_900.0, 30, |c| {
            c.client.hotspot_isolation = true;
        });
        let without = run(PolicySpec::Hashing, 1.5, 1_900.0, 30, |c| {
            c.client.hotspot_isolation = false;
        });
        assert!(
            with.throughput_tps(10_000) > without.throughput_tps(10_000) * 1.05,
            "isolation {} vs blocking {}",
            with.throughput_tps(10_000),
            without.throughput_tps(10_000)
        );
    }

    #[test]
    fn physical_replication_raises_ceiling() {
        let logical = run(PolicySpec::DoubleHashing { s: 8 }, 0.5, 2_500.0, 30, |c| {
            c.replica_cost = 1.0;
        });
        let physical = run(PolicySpec::DoubleHashing { s: 8 }, 0.5, 2_500.0, 30, |c| {
            c.replica_cost = 0.3;
        });
        let t_log = logical.throughput_tps(10_000);
        let t_phy = physical.throughput_tps(10_000);
        assert!(
            t_phy > t_log * 1.2,
            "physical {t_phy} should beat logical {t_log}"
        );
        // And at a fixed feasible rate, utilization is lower.
        let log_lo = run(PolicySpec::DoubleHashing { s: 8 }, 0.5, 1_200.0, 20, |c| {
            c.replica_cost = 1.0;
        });
        let phy_lo = run(PolicySpec::DoubleHashing { s: 8 }, 0.5, 1_200.0, 20, |c| {
            c.replica_cost = 0.3;
        });
        let u_log: f64 = log_lo.per_node_utilization.iter().sum();
        let u_phy: f64 = phy_lo.per_node_utilization.iter().sum();
        assert!(u_phy < u_log, "physical util {u_phy} < logical {u_log}");
    }

    #[test]
    fn delays_grow_when_over_capacity() {
        let under = run(PolicySpec::DoubleHashing { s: 8 }, 1.0, 1_200.0, 20, |_| {});
        let over = run(PolicySpec::DoubleHashing { s: 8 }, 1.0, 4_000.0, 20, |_| {});
        assert!(over.avg_delay_ms(10_000) > under.avg_delay_ms(10_000) * 3.0);
    }

    #[test]
    fn telemetry_tracks_completions_and_consensus() {
        let cfg = ClusterConfig::small(PolicySpec::Dynamic);
        let mut cluster = SimCluster::new(cfg.clone());
        let mut gen = TraceGenerator::new(1_000, 1.2, RateSchedule::constant(1_500.0), 42);
        for _ in 0..300 {
            let now = cluster.now();
            let events = gen.tick(now, cfg.tick_ms);
            cluster.step(events);
        }
        let snap = cluster.telemetry_snapshot();
        // Per-node delay histograms: one per node, counts matching the
        // report's completions exactly.
        let mut delay_counts = 0u64;
        let mut delay_nodes = 0usize;
        for (name, labels, h) in &snap.histograms {
            if name == "esdb_sim_write_delay_ms" {
                assert!(labels.node.is_some());
                delay_counts += h.count();
                delay_nodes += 1;
            }
        }
        assert_eq!(delay_nodes, cfg.n_nodes as usize);
        let completed: u64 = cluster
            .report_so_far()
            .ticks
            .iter()
            .map(|t| t.completed)
            .sum();
        assert_eq!(delay_counts, completed);
        // Quantiles are monotone in q and bounded by the recorded max.
        for row in cluster.node_delay_quantiles(&[0.5, 0.9, 0.99]) {
            assert!(row[0] <= row[1] && row[1] <= row[2]);
        }
        // The dynamic run committed rules through consensus, and the
        // monitor's series rode along in the same registry.
        assert!(cluster.report_so_far().rules_committed > 0);
        assert!(snap
            .counters
            .iter()
            .any(|(n, l, v)| n == "esdb_consensus_rounds_total"
                && l.stage == Some("committed")
                && *v > 0));
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, _)| n == "esdb_monitor_writes_total"));
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, v)| n == "esdb_routing_spread_writes_total" && *v > 0));
    }

    #[test]
    fn crash_promotes_replicas_and_conserves_writes() {
        use esdb_chaos::ChaosEvent;
        let cfg = ClusterConfig::small(PolicySpec::DoubleHashing { s: 4 });
        let mut cluster = SimCluster::new(cfg.clone());
        // Kill node 1 at 5s, restart it at 15s.
        cluster.set_chaos_schedule(
            ChaosSchedule::new()
                .at(5_000, ChaosEvent::NodeCrash { node: 1 })
                .at(15_000, ChaosEvent::NodeRestart { node: 1 }),
        );
        let mut gen = TraceGenerator::new(100, 0.8, RateSchedule::constant(600.0), 11);
        let mut generated = 0u64;
        for _ in 0..250 {
            let now = cluster.now();
            let events = gen.tick(now, cfg.tick_ms);
            generated += events.len() as u64;
            cluster.step(events);
        }
        assert!(!cluster.node_up(1) || cluster.now() > 15_000);
        cluster.drain(40_000);
        assert_eq!(cluster.backlog(), 0);
        let snap = cluster.telemetry_snapshot();
        let report = cluster.finish();
        assert_eq!(report.node_crashes, 1);
        assert_eq!(report.node_restarts, 1);
        // Every shard whose primary lived on node 1 promoted its replica
        // (node 1 owned at least one primary in round-robin placement).
        assert!(report.promotions > 0, "no promotions recorded");
        assert!(report.replayed_ops > 0, "promotions replayed nothing");
        assert_eq!(
            report.lost_acknowledged_writes, 0,
            "replica survived, nothing acknowledged may be lost"
        );
        assert!(
            report.write_retries > 0,
            "failover writes must have retried"
        );
        // Conservation with chaos: every generated write either completed
        // or failed back to the client after exhausting retries.
        let completed: u64 = report.ticks.iter().map(|t| t.completed).sum();
        assert_eq!(
            completed + report.failed_writes,
            generated,
            "writes are never silently dropped"
        );
        // Recovery telemetry made it into the shared registry.
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, v)| n == "esdb_failover_promotions_total" && *v == report.promotions));
        assert!(snap
            .histograms
            .iter()
            .any(|(n, _, h)| n == "esdb_failover_promotion_ms" && h.count() == report.promotions));
        assert!(snap
            .histograms
            .iter()
            .any(|(n, _, h)| n == "esdb_sim_node_unavailability_ms" && h.count() == 1));
    }

    #[test]
    fn node_up_gauge_tracks_health() {
        use esdb_chaos::ChaosEvent;
        let cfg = ClusterConfig::small(PolicySpec::Hashing);
        let mut cluster = SimCluster::new(cfg.clone());
        cluster.set_chaos_schedule(
            ChaosSchedule::new()
                .at(1_000, ChaosEvent::NodeCrash { node: 2 })
                .at(3_000, ChaosEvent::NodeRestart { node: 2 }),
        );
        let gauge_for = |snap: &TelemetrySnapshot, node: u32| {
            snap.gauges
                .iter()
                .find(|(n, l, _)| n == "esdb_sim_node_up" && l.node == Some(node))
                .map(|(_, _, v)| *v)
        };
        for _ in 0..15 {
            cluster.step(Vec::new());
        }
        assert!(!cluster.node_up(2));
        assert_eq!(gauge_for(&cluster.telemetry_snapshot(), 2), Some(0));
        assert_eq!(gauge_for(&cluster.telemetry_snapshot(), 0), Some(1));
        for _ in 0..20 {
            cluster.step(Vec::new());
        }
        assert!(cluster.node_up(2));
        assert_eq!(gauge_for(&cluster.telemetry_snapshot(), 2), Some(1));
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        use esdb_chaos::ChaosProfile;
        let run_once = || {
            let cfg = ClusterConfig::small(PolicySpec::DoubleHashing { s: 4 });
            let mut cluster = SimCluster::new(cfg.clone());
            let profile = ChaosProfile::mild(cfg.n_nodes, 20_000);
            cluster.set_chaos_schedule(ChaosSchedule::seeded(7, &profile));
            let mut gen = TraceGenerator::new(100, 1.0, RateSchedule::constant(700.0), 5);
            for _ in 0..200 {
                let now = cluster.now();
                let events = gen.tick(now, cfg.tick_ms);
                cluster.step(events);
            }
            cluster.drain(30_000);
            let r = cluster.finish();
            (
                r.ticks.iter().map(|t| t.completed).sum::<u64>(),
                r.promotions,
                r.replayed_ops,
                r.write_retries,
                r.failed_writes,
                r.per_shard_writes.clone(),
            )
        };
        assert_eq!(run_once(), run_once(), "same seed, same outcome");
    }

    #[test]
    fn reads_degrade_to_surviving_copy_during_failover() {
        use esdb_chaos::ChaosEvent;
        let cfg = ClusterConfig::small(PolicySpec::Hashing);
        let mut cluster = SimCluster::new(cfg.clone());
        cluster
            .set_chaos_schedule(ChaosSchedule::new().at(1_000, ChaosEvent::NodeCrash { node: 0 }));
        // Saturate the cluster so the promotion's recovery task queues
        // behind a backlog — the in-transition window stays observable.
        let mut gen = TraceGenerator::new(100, 0.5, RateSchedule::constant(6_000.0), 9);
        for _ in 0..11 {
            let now = cluster.now();
            let events = gen.tick(now, cfg.tick_ms);
            cluster.step(events);
        }
        // Shard 0's primary was node 0; after the crash its read target is
        // the promoted copy, never None (the replica survived).
        let target = cluster.read_target(ShardId(0));
        assert!(target.is_some());
        assert_ne!(target, Some(0));
        let snap = cluster.telemetry_snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, _, v)| n == "esdb_sim_degraded_reads_total" && *v > 0));
    }

    #[test]
    fn conservation_after_drain() {
        let cfg = ClusterConfig::small(PolicySpec::DoubleHashing { s: 4 });
        let mut cluster = SimCluster::new(cfg.clone());
        let mut gen = TraceGenerator::new(100, 1.0, RateSchedule::constant(800.0), 3);
        let mut generated = 0u64;
        for _ in 0..100 {
            let now = cluster.now();
            let events = gen.tick(now, cfg.tick_ms);
            generated += events.len() as u64;
            cluster.step(events);
        }
        cluster.drain(20_000);
        assert_eq!(cluster.backlog(), 0);
        let report = cluster.finish();
        let completed: u64 = report.ticks.iter().map(|t| t.completed).sum();
        assert_eq!(completed, generated, "every write eventually completes");
        let shard_total: u64 = report.per_shard_writes.iter().sum();
        assert_eq!(shard_total, generated);
    }
}
