//! Simulator configuration.

use esdb_balancer::BalancerConfig;
use esdb_chaos::FailoverConfig;

/// Which routing policy the cluster runs (the three lines in every figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// `h1(k1) mod N`.
    Hashing,
    /// Static double hashing with offset `s` (the paper's evaluation uses
    /// `s = 8`).
    DoubleHashing {
        /// Static maximum offset.
        s: u32,
    },
    /// Dynamic secondary hashing with the load balancer enabled.
    Dynamic,
}

impl PolicySpec {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            PolicySpec::Hashing => "Hashing",
            PolicySpec::DoubleHashing { .. } => "Double hashing",
            PolicySpec::Dynamic => "Dynamic secondary hashing",
        }
    }
}

/// Write-client behaviour (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Max outstanding tasks a worker accepts before the client considers
    /// it overloaded (bounded worker queue), in seconds of node capacity.
    pub max_pending_secs: f64,
    /// Hotspot isolation: divert workloads targeting overloaded workers to
    /// a side queue instead of head-of-line blocking the dispatch queue.
    pub hotspot_isolation: bool,
    /// One-hop routing (§3.1): routing-aware clients send straight to the
    /// worker. `false` models stock Elasticsearch transport clients, which
    /// round-robin to a coordinator first (client → coordinator → worker),
    /// paying an extra network hop per write.
    pub one_hop: bool,
    /// Latency of the extra coordinator hop when `one_hop` is false, ms.
    pub hop_latency_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_pending_secs: 2.0,
            hotspot_isolation: true,
            one_hop: true,
            hop_latency_ms: 2,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker nodes (paper: 8).
    pub n_nodes: u32,
    /// Shards (paper: 512).
    pub n_shards: u32,
    /// Per-node indexing capacity in work units/sec. One primary write =
    /// 1 unit; one replica execution = `replica_cost` units. 40_000 with
    /// `replica_cost = 1.0` gives the paper's ≈160K TPS balanced ceiling
    /// on 8 nodes.
    pub node_capacity_per_sec: f64,
    /// Replica execution cost relative to a primary (1.0 = logical
    /// replication; the physical-replication experiments use ≈0.3:
    /// translog append + segment install instead of re-indexing).
    pub replica_cost: f64,
    /// Simulation tick, ms.
    pub tick_ms: u64,
    /// Routing policy under test.
    pub policy: PolicySpec,
    /// Write-client behaviour.
    pub client: ClientConfig,
    /// Monitor reporting period, ms (runtime phase of Algorithm 1).
    pub monitor_period_ms: u64,
    /// Consensus commit-wait interval `T`, ms (§4.3).
    pub consensus_t_ms: u64,
    /// Load balancer settings (only used by `PolicySpec::Dynamic`).
    pub balancer: BalancerConfig,
    /// Failover behaviour under chaos (replay pricing, flush cadence,
    /// client retry backoff).
    pub failover: FailoverConfig,
}

impl ClusterConfig {
    /// The paper's testbed shape: 8 nodes, 512 shards, logical replication.
    pub fn paper(policy: PolicySpec) -> Self {
        let n_nodes = 8;
        let n_shards = 512;
        ClusterConfig {
            n_nodes,
            n_shards,
            node_capacity_per_sec: 40_000.0,
            replica_cost: 1.0,
            tick_ms: 100,
            policy,
            client: ClientConfig::default(),
            monitor_period_ms: 10_000,
            consensus_t_ms: 5_000,
            balancer: BalancerConfig::new(n_shards, n_nodes),
            failover: FailoverConfig::default(),
        }
    }

    /// A small cluster for fast unit tests.
    pub fn small(policy: PolicySpec) -> Self {
        let n_nodes = 4;
        let n_shards = 32;
        ClusterConfig {
            n_nodes,
            n_shards,
            node_capacity_per_sec: 1_000.0,
            replica_cost: 1.0,
            tick_ms: 100,
            policy,
            client: ClientConfig::default(),
            monitor_period_ms: 2_000,
            consensus_t_ms: 1_000,
            balancer: BalancerConfig::new(n_shards, n_nodes),
            failover: FailoverConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = ClusterConfig::paper(PolicySpec::Dynamic);
        assert_eq!(c.n_nodes, 8);
        assert_eq!(c.n_shards, 512);
        assert_eq!(c.policy.label(), "Dynamic secondary hashing");
        // T must sit between RTT/skew and the balancing period, §4.3.
        assert!(c.consensus_t_ms > 1_000 && c.consensus_t_ms < 60_000);
    }
}
