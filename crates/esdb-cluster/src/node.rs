//! Simulated worker nodes.

use esdb_common::{ShardId, TenantId, TimestampMs};
use std::collections::VecDeque;

/// A unit of work queued on a node.
#[derive(Debug, Clone, Copy)]
pub enum Task {
    /// Index a write on the primary shard (cost 1.0). Carries what the
    /// metrics layer needs at completion time.
    Primary {
        /// Tenant of the write.
        tenant: TenantId,
        /// Target shard.
        shard: ShardId,
        /// Record creation time (for delay measurement).
        created_at: TimestampMs,
        /// Row bytes (for storage accounting).
        bytes: u32,
    },
    /// Apply the write on a replica (cost = `replica_cost`).
    Replica {
        /// Replica shard.
        shard: ShardId,
    },
}

/// A worker node: fixed capacity per tick, FIFO queue.
#[derive(Debug)]
pub struct SimNode {
    /// Capacity in work units per tick.
    capacity_per_tick: f64,
    /// Unused budget carried across ticks (fractional capacities).
    budget: f64,
    queue: VecDeque<Task>,
    /// Work units queued but not yet executed.
    pub pending_work: f64,
    /// Work units executed in the current tick (reset each tick).
    pub work_this_tick: f64,
    /// Total work units executed.
    pub total_work: f64,
    /// Total primary completions.
    pub completed_primaries: u64,
    /// Primary tasks currently queued (for in-system accounting).
    pub pending_primaries: u64,
    /// Sum of capacity offered so far (for utilization).
    pub offered_capacity: f64,
}

impl SimNode {
    /// A node processing `capacity_per_tick` work units each tick.
    pub fn new(capacity_per_tick: f64) -> Self {
        SimNode {
            capacity_per_tick,
            budget: 0.0,
            queue: VecDeque::new(),
            pending_work: 0.0,
            work_this_tick: 0.0,
            total_work: 0.0,
            completed_primaries: 0,
            pending_primaries: 0,
            offered_capacity: 0.0,
        }
    }

    /// Queue length in tasks.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a task costing `cost` units.
    pub fn enqueue(&mut self, task: Task, cost: f64) {
        if matches!(task, Task::Primary { .. }) {
            self.pending_primaries += 1;
        }
        self.pending_work += cost;
        self.queue.push_back(task);
    }

    /// Runs one tick; completed primary tasks are passed to `on_primary`.
    /// `replica_cost` prices Replica tasks.
    pub fn run_tick<F: FnMut(Task)>(&mut self, replica_cost: f64, mut on_primary: F) {
        self.budget += self.capacity_per_tick;
        self.offered_capacity += self.capacity_per_tick;
        self.work_this_tick = 0.0;
        while let Some(task) = self.queue.front() {
            let cost = match task {
                Task::Primary { .. } => 1.0,
                Task::Replica { .. } => replica_cost,
            };
            if self.budget < cost {
                break;
            }
            self.budget -= cost;
            self.pending_work -= cost;
            self.work_this_tick += cost;
            self.total_work += cost;
            let task = self.queue.pop_front().expect("front checked");
            if let Task::Primary { .. } = task {
                self.completed_primaries += 1;
                self.pending_primaries -= 1;
                on_primary(task);
            }
        }
        // An idle node cannot bank more than one tick of capacity
        // (capacity is not storable in a real CPU).
        if self.queue.is_empty() {
            self.budget = self.budget.min(self.capacity_per_tick);
        }
    }

    /// Lifetime utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.offered_capacity == 0.0 {
            0.0
        } else {
            (self.total_work / self.offered_capacity).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn primary(shard: u32) -> Task {
        Task::Primary {
            tenant: TenantId(1),
            shard: ShardId(shard),
            created_at: 0,
            bytes: 100,
        }
    }

    #[test]
    fn processes_up_to_capacity() {
        let mut n = SimNode::new(5.0);
        for _ in 0..12 {
            n.enqueue(primary(0), 1.0);
        }
        let mut done = 0;
        n.run_tick(1.0, |_| done += 1);
        assert_eq!(done, 5);
        n.run_tick(1.0, |_| done += 1);
        assert_eq!(done, 10);
        n.run_tick(1.0, |_| done += 1);
        assert_eq!(done, 12);
        assert_eq!(n.queue_len(), 0);
    }

    #[test]
    fn replica_tasks_consume_budget_but_dont_complete() {
        let mut n = SimNode::new(4.0);
        n.enqueue(Task::Replica { shard: ShardId(0) }, 0.5);
        n.enqueue(Task::Replica { shard: ShardId(0) }, 0.5);
        n.enqueue(primary(0), 1.0);
        let mut done = 0;
        n.run_tick(0.5, |_| done += 1);
        assert_eq!(done, 1);
        assert_eq!(n.completed_primaries, 1);
        assert!((n.total_work - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_capacity_carries() {
        let mut n = SimNode::new(0.6);
        n.enqueue(primary(0), 1.0);
        let mut done = 0;
        n.run_tick(1.0, |_| done += 1);
        assert_eq!(done, 0, "0.6 < 1.0");
        n.run_tick(1.0, |_| done += 1);
        assert_eq!(done, 1, "1.2 >= 1.0");
    }

    #[test]
    fn idle_budget_does_not_accumulate() {
        let mut n = SimNode::new(10.0);
        for _ in 0..5 {
            n.run_tick(1.0, |_| {});
        }
        for _ in 0..25 {
            n.enqueue(primary(0), 1.0);
        }
        let mut done = 0;
        n.run_tick(1.0, |_| done += 1);
        // At most 2 ticks of budget (one banked + one fresh).
        assert!(done <= 20, "burst {done} exceeds banked+fresh capacity");
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut n = SimNode::new(10.0);
        for _ in 0..10 {
            n.enqueue(primary(0), 1.0);
        }
        n.run_tick(1.0, |_| {});
        n.run_tick(1.0, |_| {});
        assert!((n.utilization() - 0.5).abs() < 1e-9);
    }
}
