//! Simulated worker nodes.

use esdb_common::ShardId;
use esdb_workload::WriteEvent;
use std::collections::VecDeque;

/// A unit of work queued on a node.
#[derive(Debug, Clone, Copy)]
pub enum Task {
    /// Index a write on the primary shard (cost 1.0). Carries the original
    /// client event so a crashed node's unacknowledged work can re-enter
    /// routing, plus what the metrics layer needs at completion time.
    Primary {
        /// The client write this task executes.
        ev: WriteEvent,
        /// Target shard.
        shard: ShardId,
    },
    /// Apply the write on a replica (cost = `replica_cost`).
    Replica {
        /// Replica shard.
        shard: ShardId,
    },
    /// Replay a translog tail after a failover (cost = `work`, fixed at
    /// enqueue time). `promote: true` finishes a replica promotion;
    /// `promote: false` rebuilds a replica on a surviving node.
    Recovery {
        /// Recovering shard.
        shard: ShardId,
        /// Translog ops replayed.
        ops: u64,
        /// Total work units this replay costs.
        work: f64,
        /// Whether completion promotes the shard's new primary.
        promote: bool,
        /// Journal seq of the crash/restart that caused this recovery
        /// (`NO_PARENT` when the journal is disabled).
        cause: u64,
    },
}

/// A worker node: fixed capacity per tick, FIFO queue.
#[derive(Debug)]
pub struct SimNode {
    /// Capacity in work units per tick.
    capacity_per_tick: f64,
    /// Service-rate degradation multiplier in `(0, 1]` (chaos
    /// `SlowNode`); effective capacity is `capacity_per_tick * factor`.
    capacity_factor: f64,
    /// Unused budget carried across ticks (fractional capacities).
    budget: f64,
    queue: VecDeque<Task>,
    /// Work units queued but not yet executed.
    pub pending_work: f64,
    /// Work units executed in the current tick (reset each tick).
    pub work_this_tick: f64,
    /// Total work units executed.
    pub total_work: f64,
    /// Total primary completions.
    pub completed_primaries: u64,
    /// Primary tasks currently queued (for in-system accounting).
    pub pending_primaries: u64,
    /// Sum of capacity offered so far (for utilization).
    pub offered_capacity: f64,
}

impl SimNode {
    /// A node processing `capacity_per_tick` work units each tick.
    pub fn new(capacity_per_tick: f64) -> Self {
        SimNode {
            capacity_per_tick,
            capacity_factor: 1.0,
            budget: 0.0,
            queue: VecDeque::new(),
            pending_work: 0.0,
            work_this_tick: 0.0,
            total_work: 0.0,
            completed_primaries: 0,
            pending_primaries: 0,
            offered_capacity: 0.0,
        }
    }

    /// Queue length in tasks.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Sets the service-rate degradation multiplier (clamped to `(0, 1]`).
    pub fn set_capacity_factor(&mut self, factor: f64) {
        self.capacity_factor = factor.clamp(0.01, 1.0);
    }

    /// Kills the node: every queued task is lost (returned so the caller
    /// can re-drive unacknowledged work through the client) and all
    /// in-flight accounting resets. Cumulative totals survive — a crash
    /// does not erase work already done.
    pub fn crash(&mut self) -> Vec<Task> {
        self.budget = 0.0;
        self.pending_work = 0.0;
        self.pending_primaries = 0;
        self.work_this_tick = 0.0;
        self.queue.drain(..).collect()
    }

    /// Enqueues a task costing `cost` units.
    pub fn enqueue(&mut self, task: Task, cost: f64) {
        if matches!(task, Task::Primary { .. }) {
            self.pending_primaries += 1;
        }
        self.pending_work += cost;
        self.queue.push_back(task);
    }

    /// Runs one tick; every completed task is passed to `on_complete`.
    /// `replica_cost` prices Replica tasks; Recovery tasks carry their own
    /// cost.
    pub fn run_tick<F: FnMut(Task)>(&mut self, replica_cost: f64, mut on_complete: F) {
        let effective = self.capacity_per_tick * self.capacity_factor;
        self.budget += effective;
        self.offered_capacity += effective;
        self.work_this_tick = 0.0;
        while let Some(task) = self.queue.front() {
            let cost = match task {
                Task::Primary { .. } => 1.0,
                Task::Replica { .. } => replica_cost,
                Task::Recovery { work, .. } => *work,
            };
            if self.budget < cost {
                break;
            }
            self.budget -= cost;
            self.pending_work -= cost;
            self.work_this_tick += cost;
            self.total_work += cost;
            let task = self.queue.pop_front().expect("front checked");
            if let Task::Primary { .. } = task {
                self.completed_primaries += 1;
                self.pending_primaries -= 1;
            }
            on_complete(task);
        }
        // An idle node cannot bank more than one tick of capacity
        // (capacity is not storable in a real CPU).
        if self.queue.is_empty() {
            self.budget = self.budget.min(effective);
        }
    }

    /// Lifetime utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.offered_capacity == 0.0 {
            0.0
        } else {
            (self.total_work / self.offered_capacity).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::TenantId;

    fn primary(shard: u32) -> Task {
        Task::Primary {
            ev: WriteEvent {
                tenant: TenantId(1),
                record: esdb_common::RecordId(1),
                created_at: 0,
                bytes: 100,
            },
            shard: ShardId(shard),
        }
    }

    fn completed_primaries(n: &mut SimNode, replica_cost: f64) -> usize {
        let mut done = 0;
        n.run_tick(replica_cost, |t| {
            if matches!(t, Task::Primary { .. }) {
                done += 1;
            }
        });
        done
    }

    #[test]
    fn processes_up_to_capacity() {
        let mut n = SimNode::new(5.0);
        for _ in 0..12 {
            n.enqueue(primary(0), 1.0);
        }
        assert_eq!(completed_primaries(&mut n, 1.0), 5);
        assert_eq!(completed_primaries(&mut n, 1.0), 5);
        assert_eq!(completed_primaries(&mut n, 1.0), 2);
        assert_eq!(n.queue_len(), 0);
    }

    #[test]
    fn replica_tasks_consume_budget_but_dont_count_as_primaries() {
        let mut n = SimNode::new(4.0);
        n.enqueue(Task::Replica { shard: ShardId(0) }, 0.5);
        n.enqueue(Task::Replica { shard: ShardId(0) }, 0.5);
        n.enqueue(primary(0), 1.0);
        let mut all = 0;
        let mut primaries = 0;
        n.run_tick(0.5, |t| {
            all += 1;
            if matches!(t, Task::Primary { .. }) {
                primaries += 1;
            }
        });
        assert_eq!(all, 3, "every completion is reported");
        assert_eq!(primaries, 1);
        assert_eq!(n.completed_primaries, 1);
        assert!((n.total_work - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_tasks_cost_their_declared_work() {
        let mut n = SimNode::new(4.0);
        let recovery = Task::Recovery {
            shard: ShardId(3),
            ops: 20,
            work: 3.0,
            promote: true,
            cause: 0,
        };
        n.enqueue(recovery, 3.0);
        n.enqueue(primary(0), 1.0);
        let mut seen = Vec::new();
        n.run_tick(1.0, |t| seen.push(t));
        assert_eq!(seen.len(), 2, "3.0 + 1.0 fits the 4.0 budget");
        assert!(
            matches!(
                seen[0],
                Task::Recovery {
                    ops: 20,
                    promote: true,
                    ..
                }
            ),
            "recovery completes first (FIFO)"
        );
        assert!((n.total_work - 4.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_capacity_slows_service() {
        let mut n = SimNode::new(10.0);
        n.set_capacity_factor(0.5);
        for _ in 0..10 {
            n.enqueue(primary(0), 1.0);
        }
        assert_eq!(completed_primaries(&mut n, 1.0), 5, "half speed");
        n.set_capacity_factor(1.0);
        assert_eq!(completed_primaries(&mut n, 1.0), 5, "full speed restored");
    }

    #[test]
    fn crash_loses_queue_but_keeps_totals() {
        let mut n = SimNode::new(2.0);
        for _ in 0..6 {
            n.enqueue(primary(0), 1.0);
        }
        assert_eq!(completed_primaries(&mut n, 1.0), 2);
        let lost = n.crash();
        assert_eq!(lost.len(), 4);
        assert_eq!(n.queue_len(), 0);
        assert_eq!(n.pending_primaries, 0);
        assert!((n.pending_work).abs() < 1e-9);
        assert_eq!(n.completed_primaries, 2, "done work survives the crash");
    }

    #[test]
    fn fractional_capacity_carries() {
        let mut n = SimNode::new(0.6);
        n.enqueue(primary(0), 1.0);
        assert_eq!(completed_primaries(&mut n, 1.0), 0, "0.6 < 1.0");
        assert_eq!(completed_primaries(&mut n, 1.0), 1, "1.2 >= 1.0");
    }

    #[test]
    fn idle_budget_does_not_accumulate() {
        let mut n = SimNode::new(10.0);
        for _ in 0..5 {
            n.run_tick(1.0, |_| {});
        }
        for _ in 0..25 {
            n.enqueue(primary(0), 1.0);
        }
        let done = completed_primaries(&mut n, 1.0);
        // At most 2 ticks of budget (one banked + one fresh).
        assert!(done <= 20, "burst {done} exceeds banked+fresh capacity");
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut n = SimNode::new(10.0);
        for _ in 0..10 {
            n.enqueue(primary(0), 1.0);
        }
        n.run_tick(1.0, |_| {});
        n.run_tick(1.0, |_| {});
        assert!((n.utilization() - 0.5).abs() < 1e-9);
    }
}
