//! Discrete-event cluster simulator.
//!
//! The paper evaluates ESDB on 8 worker VMs hosting 512 shards (+1 replica
//! each) driven by 3 client machines (§6.1). This crate reproduces that
//! testbed as a deterministic discrete-event simulation:
//!
//! * [`node::SimNode`] — a worker with a fixed indexing capacity
//!   (work-units/sec) and a FIFO task queue; primaries cost 1 unit, replica
//!   executions cost `replica_cost` units (1.0 = logical replication,
//!   <1 = physical replication, §5.2).
//! * [`sim::SimCluster`] — write clients (one-hop routing, bounded worker
//!   queues with head-of-line blocking, optional hotspot isolation, §3.1),
//!   shard→node placement with replicas on distinct nodes, the routing
//!   policy under test, the workload monitor + load balancer (Algorithm 1)
//!   and the rule-commit consensus (§4.3) running in simulated time.
//! * [`query_model`] — the analytic query-throughput model used for the
//!   Fig. 16 reproduction: per-subquery cost grows with the tenant's data
//!   in the shard and the shard's total size; a query fans out to the
//!   tenant's shard span.
//!
//! What this preserves from the real system: queueing delay, saturation
//! points, per-node/per-shard load distribution, balancer reaction time
//! (detection period + commit-wait `T`), and replication CPU cost — the
//! quantities Figures 10–16 and 19 measure. What it abstracts away: x86
//! microarchitecture and JVM overheads, which shift absolute numbers only.

pub mod config;
pub mod node;
pub mod query_model;
pub mod sim;

pub use config::{ClientConfig, ClusterConfig, PolicySpec};
pub use node::SimNode;
pub use query_model::{QueryCostModel, QueryThroughputModel};
pub use sim::{RunReport, SimCluster, TickStats};
