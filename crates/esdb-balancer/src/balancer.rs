//! The ESDB load balancer — paper Algorithm 1.
//!
//! The balancer runs two phases:
//!
//! * **Initialization** (lines 5–10): from per-tenant *storage* proportions,
//!   assign every sufficiently large tenant an initial offset (storage is
//!   the best predictor of forthcoming load before any traffic is seen).
//! * **Runtime** (lines 11–21): each reporting period, compute per-tenant
//!   *throughput* proportions; tenants flagged by `CheckHotSpot` get a new
//!   offset from `ComputeOffsetSize`.
//!
//! The balancer does not mutate routing state directly: it emits
//! [`RuleProposal`]s. In the full system the coordinator forwards each
//! proposal to the master, which runs the commit protocol of §4.3
//! (`esdb-consensus`) and only then does the rule enter the replicated
//! [`esdb_routing::RuleList`]. Tests in this module commit proposals
//! directly to a local list.

use crate::monitor::{PeriodReport, WorkloadMonitor};
use crate::offset::OffsetPolicy;
use esdb_common::{TenantId, TimestampMs};
use esdb_routing::RuleList;
use esdb_telemetry::{EventKind, Journal, Labels, NO_PARENT};
use std::sync::Arc;

/// A proposed secondary hashing rule for one tenant, not yet committed.
#[derive(Debug, Clone)]
pub struct RuleProposal {
    /// The hot tenant.
    pub tenant: TenantId,
    /// Proposed maximum offset `s` (power of two).
    pub offset: u32,
    /// The throughput/storage proportion that triggered the proposal
    /// (kept for observability).
    pub proportion_ppm: u64,
    /// Journal sequence of the `hot_tenant_detected` event that produced
    /// this proposal ([`NO_PARENT`] when the journal is off), so the
    /// committed rule's journal entry links back causally.
    pub detected_seq: u64,
}

/// Equality ignores `detected_seq` — two proposals are the same decision
/// regardless of which journal entry recorded the detection.
impl PartialEq for RuleProposal {
    fn eq(&self, other: &Self) -> bool {
        self.tenant == other.tenant
            && self.offset == other.offset
            && self.proportion_ppm == other.proportion_ppm
    }
}

impl Eq for RuleProposal {}

/// Balancer configuration.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Offset policy (`CheckHotSpot` / `ComputeOffsetSize`).
    pub offset: OffsetPolicy,
    /// Ignore periods with fewer total writes than this (proportions from
    /// a near-idle period are noise).
    pub min_period_writes: u64,
    /// During initialization, only tenants with at least this storage
    /// proportion receive a rule (§4.1: most tenants keep `s = 1`).
    pub init_storage_floor: f64,
}

impl BalancerConfig {
    /// Defaults for an `n_shards` / `n_nodes` cluster.
    pub fn new(n_shards: u32, n_nodes: u32) -> Self {
        BalancerConfig {
            offset: OffsetPolicy::new(n_shards, n_nodes),
            min_period_writes: 100,
            init_storage_floor: 0.01,
        }
    }
}

/// The load balancer (Algorithm 1).
#[derive(Debug)]
pub struct LoadBalancer {
    config: BalancerConfig,
    /// Last offset proposed or known-committed per tenant; a new proposal is
    /// emitted only when it would *grow* the offset (re-proposing an equal
    /// or smaller `s` is useless: rule matching takes the max, §4.2).
    committed: esdb_common::fastmap::FastMap<TenantId, u32>,
    /// Flight-recorder journal for `hot_tenant_detected` events (`None`
    /// keeps the balancer telemetry-free).
    journal: Option<Arc<Journal>>,
}

impl LoadBalancer {
    /// New balancer with the given configuration.
    pub fn new(config: BalancerConfig) -> Self {
        LoadBalancer {
            config,
            committed: esdb_common::fastmap::fast_map(),
            journal: None,
        }
    }

    /// Attaches the flight-recorder journal: every proposal's detection
    /// is journaled and the proposal carries the event's sequence.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &BalancerConfig {
        &self.config
    }

    /// Journals a hot-tenant detection, returning the event sequence
    /// ([`NO_PARENT`] when no journal is attached).
    fn journal_detection(&self, tenant: TenantId, proportion_ppm: u64, offset: u32) -> u64 {
        self.journal.as_ref().map_or(NO_PARENT, |j| {
            j.emit(
                EventKind::HotTenantDetected {
                    tenant: tenant.0,
                    proportion_ppm,
                    proposed_offset: offset,
                },
                Labels::tenant(tenant.0),
                NO_PARENT,
            )
        })
    }

    /// Initialization phase (Algorithm 1 lines 5–10): propose offsets from
    /// storage proportions.
    pub fn initialize(&mut self, monitor: &WorkloadMonitor) -> Vec<RuleProposal> {
        let mut proposals = Vec::new();
        for (tenant, _) in monitor.storage_tenants() {
            let r = monitor.storage_proportion(tenant);
            if r < self.config.init_storage_floor {
                continue;
            }
            let s = self.config.offset.compute_offset_size(r);
            if self.would_grow(tenant, s) {
                self.committed.insert(tenant, s);
                let proportion_ppm = (r * 1e6) as u64;
                proposals.push(RuleProposal {
                    tenant,
                    offset: s,
                    proportion_ppm,
                    detected_seq: self.journal_detection(tenant, proportion_ppm, s),
                });
            }
        }
        proposals.sort_by_key(|p| p.tenant);
        proposals
    }

    /// Runtime phase for one period (Algorithm 1 lines 12–20): hotspot
    /// check on throughput proportions.
    pub fn on_period(&mut self, report: &PeriodReport) -> Vec<RuleProposal> {
        let mut proposals = Vec::new();
        if report.total < self.config.min_period_writes {
            return proposals;
        }
        for (&tenant, &count) in report.per_tenant.iter() {
            let r = count as f64 / report.total as f64;
            if !self.config.offset.check_hotspot(r) {
                continue;
            }
            let s = self.config.offset.compute_offset_size(r);
            if self.would_grow(tenant, s) {
                self.committed.insert(tenant, s);
                let proportion_ppm = (r * 1e6) as u64;
                proposals.push(RuleProposal {
                    tenant,
                    offset: s,
                    proportion_ppm,
                    detected_seq: self.journal_detection(tenant, proportion_ppm, s),
                });
            }
        }
        proposals.sort_by_key(|p| p.tenant);
        proposals
    }

    /// Records that a proposal failed to commit (consensus abort): forget
    /// the optimistic bookkeeping so it can be re-proposed next period.
    pub fn on_abort(&mut self, tenant: TenantId, offset: u32) {
        if self.committed.get(&tenant) == Some(&offset) {
            self.committed.remove(&tenant);
        }
    }

    /// Applies a batch of proposals directly to a rule list with a given
    /// effective time — the non-distributed path used by tests, examples,
    /// and single-process deployments.
    pub fn commit_direct(
        proposals: &[RuleProposal],
        rules: &mut RuleList,
        effective_time: TimestampMs,
    ) {
        for p in proposals {
            rules.update(effective_time, p.offset, p.tenant);
        }
    }

    fn would_grow(&self, tenant: TenantId, s: u32) -> bool {
        s > self.committed.get(&tenant).copied().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_common::{NodeId, ShardId};

    fn config() -> BalancerConfig {
        BalancerConfig::new(512, 8)
    }

    fn hot_period(hot: TenantId, hot_writes: u64, cold_tenants: u64) -> PeriodReport {
        let m = WorkloadMonitor::new();
        for i in 0..hot_writes {
            m.record_write(hot, ShardId((i % 4) as u32), NodeId(0), 100);
        }
        for t in 0..cold_tenants {
            m.record_write(TenantId(1000 + t), ShardId(5), NodeId(1), 100);
        }
        m.take_period()
    }

    #[test]
    fn detects_hotspot_and_proposes_power_of_two() {
        let mut b = LoadBalancer::new(config());
        // Tenant 1: 50% of traffic — far above 1/16 threshold.
        let report = hot_period(TenantId(1), 500, 500);
        let props = b.on_period(&report);
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].tenant, TenantId(1));
        assert!(props[0].offset.is_power_of_two());
        assert!(props[0].offset > 1);
    }

    #[test]
    fn cold_tenants_not_proposed() {
        let mut b = LoadBalancer::new(config());
        // 1000 tenants, 1 write each: all proportions are 0.1%.
        let m = WorkloadMonitor::new();
        for t in 0..1000u64 {
            m.record_write(TenantId(t), ShardId(0), NodeId(0), 10);
        }
        assert!(b.on_period(&m.take_period()).is_empty());
    }

    #[test]
    fn quiet_periods_ignored() {
        let mut b = LoadBalancer::new(config());
        let report = hot_period(TenantId(1), 50, 10); // < min_period_writes
        assert!(b.on_period(&report).is_empty());
    }

    #[test]
    fn no_reproposal_for_same_offset() {
        let mut b = LoadBalancer::new(config());
        let report = hot_period(TenantId(1), 500, 500);
        assert_eq!(b.on_period(&report).len(), 1);
        // Same traffic next period: offset unchanged, no new proposal.
        let report2 = hot_period(TenantId(1), 500, 500);
        assert!(b.on_period(&report2).is_empty());
    }

    #[test]
    fn growing_hotspot_reproposed_with_larger_offset() {
        // Widen the offset ceiling so growth is observable: with the
        // default max_offset any hot tenant saturates immediately.
        let mut cfg = config();
        cfg.offset.max_offset = 512;
        let mut b = LoadBalancer::new(cfg);
        // 8% of traffic → a moderate offset; later 50% → a larger one.
        let first = b.on_period(&hot_period(TenantId(1), 800, 9_200));
        assert_eq!(first.len(), 1);
        let grown = b.on_period(&hot_period(TenantId(1), 5_000, 5_000));
        assert_eq!(grown.len(), 1);
        assert!(grown[0].offset > first[0].offset);
    }

    #[test]
    fn abort_allows_reproposal() {
        let mut b = LoadBalancer::new(config());
        let p = b.on_period(&hot_period(TenantId(1), 500, 500));
        assert_eq!(p.len(), 1);
        b.on_abort(TenantId(1), p[0].offset);
        let retry = b.on_period(&hot_period(TenantId(1), 500, 500));
        assert_eq!(retry, p, "after abort the same proposal is re-emitted");
    }

    #[test]
    fn initialization_uses_storage_proportions() {
        let mut b = LoadBalancer::new(config());
        let m = WorkloadMonitor::new();
        m.load_storage([
            (TenantId(1), 400_000), // 40%
            (TenantId(2), 5_000),   // 0.5% — below floor
            (TenantId(3), 595_000), // 59.5%
        ]);
        let props = b.initialize(&m);
        let tenants: Vec<TenantId> = props.iter().map(|p| p.tenant).collect();
        assert_eq!(tenants, vec![TenantId(1), TenantId(3)]);
        assert!(props.iter().all(|p| p.offset.is_power_of_two()));
    }

    #[test]
    fn commit_direct_updates_rule_list() {
        let mut b = LoadBalancer::new(config());
        let props = b.on_period(&hot_period(TenantId(1), 900, 100));
        let mut rules = RuleList::new();
        LoadBalancer::commit_direct(&props, &mut rules, 1000);
        assert_eq!(rules.offset_for_write(TenantId(1), 1001), props[0].offset);
        assert_eq!(rules.offset_for_write(TenantId(1), 999), 1);
    }
}
