//! ESDB's load balancer (paper §3.2 "Load balancer", §4.1, Algorithm 1).
//!
//! The balancer watches per-tenant write throughput (and, at initialization,
//! per-tenant storage), detects hotspots, computes a new secondary-hashing
//! offset `s = L(k1)` for each hot tenant, and emits *rule proposals* that
//! the consensus layer commits into every coordinator's
//! [`esdb_routing::RuleList`].
//!
//! * [`monitor::WorkloadMonitor`] — the "Monitor" box of Fig. 3: sliding
//!   per-period counters of tenant/shard/node write throughput.
//! * [`offset::OffsetPolicy`] — `ComputeOffsetSize` and `CheckHotSpot` from
//!   Algorithm 1; offsets are powers of two (§4.2 "we choose s among
//!   exponents of 2 ... to limit the number of secondary hashing rules").
//! * [`balancer::LoadBalancer`] — Algorithm 1 itself: the storage-driven
//!   initialization phase and the throughput-driven runtime phase.

pub mod balancer;
pub mod monitor;
pub mod offset;

pub use balancer::{BalancerConfig, LoadBalancer, RuleProposal};
pub use monitor::{PeriodReport, WorkloadMonitor};
pub use offset::OffsetPolicy;
