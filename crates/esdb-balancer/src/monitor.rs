//! The workload monitor (the "Monitor" component on the control layer of
//! Fig. 3): collects per-tenant, per-shard and per-node write counters over
//! a reporting period, and per-tenant storage totals.

use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{NodeId, ShardId, TenantId};

/// A snapshot of one reporting period.
#[derive(Debug, Clone, Default)]
pub struct PeriodReport {
    /// Writes per tenant during the period.
    pub per_tenant: FastMap<TenantId, u64>,
    /// Writes per shard during the period.
    pub per_shard: FastMap<ShardId, u64>,
    /// Writes per node during the period.
    pub per_node: FastMap<NodeId, u64>,
    /// Total writes during the period.
    pub total: u64,
}

impl PeriodReport {
    /// Throughput proportion `r = T(k) / ΣT` of one tenant (Algorithm 1
    /// line 15). Returns 0 when the period saw no writes.
    pub fn tenant_proportion(&self, k: TenantId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.per_tenant.get(&k).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Tenants ranked by write count, descending.
    pub fn top_tenants(&self, limit: usize) -> Vec<(TenantId, u64)> {
        let mut v: Vec<(TenantId, u64)> = self.per_tenant.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }
}

/// Accumulates write events and storage sizes; `take_period` harvests and
/// resets the periodic counters while storage totals persist.
#[derive(Debug, Default)]
pub struct WorkloadMonitor {
    current: PeriodReport,
    /// Cumulative storage bytes per tenant (Algorithm 1 line 5, `S(K)`).
    storage: FastMap<TenantId, u64>,
    storage_total: u64,
}

impl WorkloadMonitor {
    /// Empty monitor.
    pub fn new() -> Self {
        WorkloadMonitor {
            current: PeriodReport::default(),
            storage: fast_map(),
            storage_total: 0,
        }
    }

    /// Records one write routed to `shard` on `node`, adding `bytes` to the
    /// tenant's storage.
    pub fn record_write(&mut self, tenant: TenantId, shard: ShardId, node: NodeId, bytes: u64) {
        *self.current.per_tenant.entry(tenant).or_insert(0) += 1;
        *self.current.per_shard.entry(shard).or_insert(0) += 1;
        *self.current.per_node.entry(node).or_insert(0) += 1;
        self.current.total += 1;
        *self.storage.entry(tenant).or_insert(0) += bytes;
        self.storage_total += bytes;
    }

    /// Harvests the current period's counters, resetting them for the next
    /// period (Algorithm 1 line 13: "collect periodic write throughput").
    pub fn take_period(&mut self) -> PeriodReport {
        std::mem::take(&mut self.current)
    }

    /// Read-only view of the running period.
    pub fn current(&self) -> &PeriodReport {
        &self.current
    }

    /// Storage proportion `r = S(k) / ΣS` (Algorithm 1 line 7).
    pub fn storage_proportion(&self, k: TenantId) -> f64 {
        if self.storage_total == 0 {
            return 0.0;
        }
        *self.storage.get(&k).unwrap_or(&0) as f64 / self.storage_total as f64
    }

    /// All tenants with recorded storage.
    pub fn storage_tenants(&self) -> impl Iterator<Item = (TenantId, u64)> + '_ {
        self.storage.iter().map(|(k, v)| (*k, *v))
    }

    /// Total storage bytes.
    pub fn storage_total(&self) -> u64 {
        self.storage_total
    }

    /// Bulk-loads a storage snapshot (used to seed the initialization phase
    /// from an existing cluster's state).
    pub fn load_storage(&mut self, sizes: impl IntoIterator<Item = (TenantId, u64)>) {
        for (k, b) in sizes {
            *self.storage.entry(k).or_insert(0) += b;
            self.storage_total += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_harvests_periods() {
        let mut m = WorkloadMonitor::new();
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 100);
        m.record_write(TenantId(1), ShardId(1), NodeId(0), 100);
        m.record_write(TenantId(2), ShardId(2), NodeId(1), 50);
        let p = m.take_period();
        assert_eq!(p.total, 3);
        assert_eq!(p.per_tenant[&TenantId(1)], 2);
        assert_eq!(p.per_node[&NodeId(0)], 2);
        assert!((p.tenant_proportion(TenantId(1)) - 2.0 / 3.0).abs() < 1e-12);
        // Period counters reset, storage persists.
        assert_eq!(m.current().total, 0);
        assert!((m.storage_proportion(TenantId(1)) - 200.0 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn top_tenants_ranked() {
        let mut m = WorkloadMonitor::new();
        for _ in 0..5 {
            m.record_write(TenantId(7), ShardId(0), NodeId(0), 1);
        }
        for _ in 0..2 {
            m.record_write(TenantId(8), ShardId(0), NodeId(0), 1);
        }
        m.record_write(TenantId(9), ShardId(0), NodeId(0), 1);
        let top = m.current().top_tenants(2);
        assert_eq!(top, vec![(TenantId(7), 5), (TenantId(8), 2)]);
    }

    #[test]
    fn empty_proportions_are_zero() {
        let m = WorkloadMonitor::new();
        assert_eq!(m.current().tenant_proportion(TenantId(1)), 0.0);
        assert_eq!(m.storage_proportion(TenantId(1)), 0.0);
    }

    #[test]
    fn load_storage_seeds_initialization() {
        let mut m = WorkloadMonitor::new();
        m.load_storage([(TenantId(1), 900), (TenantId(2), 100)]);
        assert!((m.storage_proportion(TenantId(1)) - 0.9).abs() < 1e-12);
        assert_eq!(m.storage_total(), 1000);
    }
}
