//! The workload monitor (the "Monitor" component on the control layer of
//! Fig. 3): collects per-tenant, per-shard and per-node write counters over
//! a reporting period, and per-tenant storage totals.
//!
//! Counters live in an `esdb-telemetry` [`MetricsRegistry`] — by default a
//! private one, or (via [`WorkloadMonitor::with_registry`]) the same
//! registry the rest of the stack exposes through
//! `Esdb::telemetry_snapshot()`, so the balancing loop's inputs are
//! observable as `esdb_monitor_*` series. Period harvesting diffs the
//! cumulative counters against a baseline taken at the previous harvest,
//! which is what makes the counters double as externally-scrapeable
//! monotone series.

use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{NodeId, ShardId, TenantId};
use esdb_telemetry::{Counter, Labels, MetricsRegistry};
use std::sync::Arc;

/// Cumulative writes per tenant.
const TENANT_WRITES: &str = "esdb_monitor_tenant_writes_total";
/// Cumulative writes per shard.
const SHARD_WRITES: &str = "esdb_monitor_shard_writes_total";
/// Cumulative writes per node.
const NODE_WRITES: &str = "esdb_monitor_node_writes_total";
/// Cumulative writes overall.
const WRITES: &str = "esdb_monitor_writes_total";
/// Cumulative storage bytes per tenant (Algorithm 1 line 5, `S(K)`).
const TENANT_STORAGE: &str = "esdb_monitor_tenant_storage_bytes";
/// Cumulative storage bytes overall.
const STORAGE: &str = "esdb_monitor_storage_bytes_total";

/// A snapshot of one reporting period.
#[derive(Debug, Clone, Default)]
pub struct PeriodReport {
    /// Writes per tenant during the period.
    pub per_tenant: FastMap<TenantId, u64>,
    /// Writes per shard during the period.
    pub per_shard: FastMap<ShardId, u64>,
    /// Writes per node during the period.
    pub per_node: FastMap<NodeId, u64>,
    /// Total writes during the period.
    pub total: u64,
}

impl PeriodReport {
    /// Throughput proportion `r = T(k) / ΣT` of one tenant (Algorithm 1
    /// line 15). Returns 0 when the period saw no writes.
    pub fn tenant_proportion(&self, k: TenantId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.per_tenant.get(&k).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Tenants ranked by write count, descending.
    pub fn top_tenants(&self, limit: usize) -> Vec<(TenantId, u64)> {
        let mut v: Vec<(TenantId, u64)> = self.per_tenant.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }
}

/// Accumulates write events and storage sizes; `take_period` harvests the
/// delta since the previous harvest while storage totals persist.
#[derive(Debug)]
pub struct WorkloadMonitor {
    registry: Arc<MetricsRegistry>,
    /// Cached handles for the unlabeled totals (hot-path: one atomic
    /// add, no registry probe).
    writes_total: Arc<Counter>,
    storage_total: Arc<Counter>,
    /// Counter values at the last `take_period`, so period reports are
    /// deltas over monotone series.
    base_tenant: FastMap<TenantId, u64>,
    base_shard: FastMap<ShardId, u64>,
    base_node: FastMap<NodeId, u64>,
    base_total: u64,
}

impl Default for WorkloadMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadMonitor {
    /// Empty monitor over a private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Monitor recording into a shared registry (its `esdb_monitor_*`
    /// series then appear in telemetry snapshots).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        let writes_total = registry.counter(WRITES, Labels::none());
        let storage_total = registry.counter(STORAGE, Labels::none());
        WorkloadMonitor {
            registry,
            writes_total,
            storage_total,
            base_tenant: fast_map(),
            base_shard: fast_map(),
            base_node: fast_map(),
            base_total: 0,
        }
    }

    /// The registry the monitor records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records one write routed to `shard` on `node`, adding `bytes` to the
    /// tenant's storage.
    pub fn record_write(&mut self, tenant: TenantId, shard: ShardId, node: NodeId, bytes: u64) {
        self.registry
            .add(TENANT_WRITES, Labels::tenant(tenant.0), 1);
        self.registry.add(SHARD_WRITES, Labels::shard(shard.0), 1);
        self.registry.add(NODE_WRITES, Labels::node(node.0), 1);
        self.writes_total.inc();
        self.registry
            .add(TENANT_STORAGE, Labels::tenant(tenant.0), bytes);
        self.storage_total.add(bytes);
    }

    /// The running period's counters as deltas over `base`, without
    /// touching the baselines.
    fn period_since_base(&self) -> PeriodReport {
        let mut report = PeriodReport {
            total: self.writes_total.get() - self.base_total,
            ..PeriodReport::default()
        };
        for (labels, v) in self.registry.counters_with(TENANT_WRITES) {
            let tenant = TenantId(labels.tenant.expect("tenant-labeled series"));
            let delta = v - self.base_tenant.get(&tenant).copied().unwrap_or(0);
            if delta > 0 {
                report.per_tenant.insert(tenant, delta);
            }
        }
        for (labels, v) in self.registry.counters_with(SHARD_WRITES) {
            let shard = ShardId(labels.shard.expect("shard-labeled series"));
            let delta = v - self.base_shard.get(&shard).copied().unwrap_or(0);
            if delta > 0 {
                report.per_shard.insert(shard, delta);
            }
        }
        for (labels, v) in self.registry.counters_with(NODE_WRITES) {
            let node = NodeId(labels.node.expect("node-labeled series"));
            let delta = v - self.base_node.get(&node).copied().unwrap_or(0);
            if delta > 0 {
                report.per_node.insert(node, delta);
            }
        }
        report
    }

    /// Harvests the current period's counters, resetting the period for
    /// the next harvest (Algorithm 1 line 13: "collect periodic write
    /// throughput"). The underlying counters stay monotone; only the
    /// baselines move.
    pub fn take_period(&mut self) -> PeriodReport {
        let report = self.period_since_base();
        for (labels, v) in self.registry.counters_with(TENANT_WRITES) {
            self.base_tenant
                .insert(TenantId(labels.tenant.expect("tenant-labeled series")), v);
        }
        for (labels, v) in self.registry.counters_with(SHARD_WRITES) {
            self.base_shard
                .insert(ShardId(labels.shard.expect("shard-labeled series")), v);
        }
        for (labels, v) in self.registry.counters_with(NODE_WRITES) {
            self.base_node
                .insert(NodeId(labels.node.expect("node-labeled series")), v);
        }
        self.base_total = self.writes_total.get();
        report
    }

    /// Snapshot of the running period (deltas since the last harvest).
    pub fn current(&self) -> PeriodReport {
        self.period_since_base()
    }

    /// Storage proportion `r = S(k) / ΣS` (Algorithm 1 line 7).
    pub fn storage_proportion(&self, k: TenantId) -> f64 {
        let total = self.storage_total.get();
        if total == 0 {
            return 0.0;
        }
        self.registry
            .counter_value(TENANT_STORAGE, Labels::tenant(k.0)) as f64
            / total as f64
    }

    /// All tenants with recorded storage.
    pub fn storage_tenants(&self) -> impl Iterator<Item = (TenantId, u64)> + '_ {
        self.registry
            .counters_with(TENANT_STORAGE)
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .map(|(labels, v)| (TenantId(labels.tenant.expect("tenant-labeled series")), v))
    }

    /// Total storage bytes.
    pub fn storage_total(&self) -> u64 {
        self.storage_total.get()
    }

    /// Bulk-loads a storage snapshot (used to seed the initialization phase
    /// from an existing cluster's state).
    pub fn load_storage(&mut self, sizes: impl IntoIterator<Item = (TenantId, u64)>) {
        for (k, b) in sizes {
            self.registry.add(TENANT_STORAGE, Labels::tenant(k.0), b);
            self.storage_total.add(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_harvests_periods() {
        let mut m = WorkloadMonitor::new();
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 100);
        m.record_write(TenantId(1), ShardId(1), NodeId(0), 100);
        m.record_write(TenantId(2), ShardId(2), NodeId(1), 50);
        let p = m.take_period();
        assert_eq!(p.total, 3);
        assert_eq!(p.per_tenant[&TenantId(1)], 2);
        assert_eq!(p.per_node[&NodeId(0)], 2);
        assert!((p.tenant_proportion(TenantId(1)) - 2.0 / 3.0).abs() < 1e-12);
        // Period counters reset, storage persists.
        assert_eq!(m.current().total, 0);
        assert!((m.storage_proportion(TenantId(1)) - 200.0 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn top_tenants_ranked() {
        let mut m = WorkloadMonitor::new();
        for _ in 0..5 {
            m.record_write(TenantId(7), ShardId(0), NodeId(0), 1);
        }
        for _ in 0..2 {
            m.record_write(TenantId(8), ShardId(0), NodeId(0), 1);
        }
        m.record_write(TenantId(9), ShardId(0), NodeId(0), 1);
        let top = m.current().top_tenants(2);
        assert_eq!(top, vec![(TenantId(7), 5), (TenantId(8), 2)]);
    }

    #[test]
    fn empty_proportions_are_zero() {
        let m = WorkloadMonitor::new();
        assert_eq!(m.current().tenant_proportion(TenantId(1)), 0.0);
        assert_eq!(m.storage_proportion(TenantId(1)), 0.0);
    }

    #[test]
    fn load_storage_seeds_initialization() {
        let mut m = WorkloadMonitor::new();
        m.load_storage([(TenantId(1), 900), (TenantId(2), 100)]);
        assert!((m.storage_proportion(TenantId(1)) - 0.9).abs() < 1e-12);
        assert_eq!(m.storage_total(), 1000);
    }

    #[test]
    fn counters_stay_monotone_across_harvests() {
        let mut m = WorkloadMonitor::new();
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 10);
        assert_eq!(m.take_period().total, 1);
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 10);
        m.record_write(TenantId(2), ShardId(1), NodeId(1), 10);
        let p = m.take_period();
        assert_eq!(p.total, 2, "second period sees only its own writes");
        assert_eq!(p.per_tenant[&TenantId(1)], 1);
        assert!(!p.per_shard.contains_key(&ShardId(2)));
        // The registry series kept counting from the start.
        assert_eq!(
            m.registry().counter_value(TENANT_WRITES, Labels::tenant(1)),
            2
        );
        assert_eq!(m.take_period().total, 0, "drained");
    }

    #[test]
    fn shared_registry_exposes_monitor_series() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut m = WorkloadMonitor::with_registry(Arc::clone(&registry));
        m.record_write(TenantId(3), ShardId(1), NodeId(0), 64);
        assert_eq!(registry.counter_value(WRITES, Labels::none()), 1);
        assert_eq!(
            registry.counter_value(TENANT_STORAGE, Labels::tenant(3)),
            64
        );
    }
}
