//! The workload monitor (the "Monitor" component on the control layer of
//! Fig. 3): collects per-tenant, per-shard and per-node write counters over
//! a reporting period, and per-tenant storage totals.
//!
//! Counters live in an `esdb-telemetry` [`MetricsRegistry`] — by default a
//! private one, or (via [`WorkloadMonitor::with_registry`]) the same
//! registry the rest of the stack exposes through
//! `Esdb::telemetry_snapshot()`, so the balancing loop's inputs are
//! observable as `esdb_monitor_*` series. Period harvesting diffs the
//! cumulative counters against a baseline taken at the previous harvest,
//! which is what makes the counters double as externally-scrapeable
//! monotone series.

use esdb_common::fastmap::{fast_map, FastMap};
use esdb_common::{NodeId, ShardId, TenantId};
use esdb_telemetry::{Counter, Labels, MetricsRegistry};
use std::sync::{Arc, Mutex, RwLock};

/// Cumulative writes per tenant.
const TENANT_WRITES: &str = "esdb_monitor_tenant_writes_total";
/// Cumulative writes per shard.
const SHARD_WRITES: &str = "esdb_monitor_shard_writes_total";
/// Cumulative writes per node.
const NODE_WRITES: &str = "esdb_monitor_node_writes_total";
/// Cumulative writes overall.
const WRITES: &str = "esdb_monitor_writes_total";
/// Cumulative storage bytes per tenant (Algorithm 1 line 5, `S(K)`).
const TENANT_STORAGE: &str = "esdb_monitor_tenant_storage_bytes";
/// Cumulative storage bytes overall.
const STORAGE: &str = "esdb_monitor_storage_bytes_total";

/// A snapshot of one reporting period.
#[derive(Debug, Clone, Default)]
pub struct PeriodReport {
    /// Writes per tenant during the period.
    pub per_tenant: FastMap<TenantId, u64>,
    /// Writes per shard during the period.
    pub per_shard: FastMap<ShardId, u64>,
    /// Writes per node during the period.
    pub per_node: FastMap<NodeId, u64>,
    /// Total writes during the period.
    pub total: u64,
}

impl PeriodReport {
    /// Throughput proportion `r = T(k) / ΣT` of one tenant (Algorithm 1
    /// line 15). Returns 0 when the period saw no writes.
    pub fn tenant_proportion(&self, k: TenantId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.per_tenant.get(&k).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Tenants ranked by write count, descending.
    pub fn top_tenants(&self, limit: usize) -> Vec<(TenantId, u64)> {
        let mut v: Vec<(TenantId, u64)> = self.per_tenant.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }
}

/// Stripes in the per-tenant handle cache (power of two). Writers on
/// different tenants contend on different stripes; within a stripe the
/// steady state is a read-lock probe plus relaxed atomic adds.
const TENANT_STRIPES: usize = 16;

/// Cached counter handles for one tenant's write + storage series.
#[derive(Debug)]
struct TenantHandles {
    writes: Arc<Counter>,
    storage: Arc<Counter>,
}

/// Counter values at the last `take_period`, so period reports are
/// deltas over monotone series.
#[derive(Debug, Default)]
struct Baselines {
    tenant: FastMap<TenantId, u64>,
    shard: FastMap<ShardId, u64>,
    node: FastMap<NodeId, u64>,
    total: u64,
}

/// Accumulates write events and storage sizes; `take_period` harvests the
/// delta since the previous harvest while storage totals persist.
///
/// Recording is `&self` and safe from any number of writer threads: the
/// hot path is cached `Arc<Counter>` handles (relaxed atomic adds) found
/// through striped read-mostly caches — a registry probe happens only the
/// first time a tenant/shard/node is seen. Harvesting serializes on a
/// baselines mutex, off the write path.
#[derive(Debug)]
pub struct WorkloadMonitor {
    registry: Arc<MetricsRegistry>,
    /// Cached handles for the unlabeled totals (hot-path: one atomic
    /// add, no registry probe).
    writes_total: Arc<Counter>,
    storage_total: Arc<Counter>,
    /// Striped per-tenant handle cache (tenant ids are unbounded).
    tenant_handles: Vec<RwLock<FastMap<u64, TenantHandles>>>,
    /// Dense handle caches indexed by shard / node id (ids are small and
    /// contiguous; a read-locked `Vec` index is the whole lookup).
    shard_handles: RwLock<Vec<Arc<Counter>>>,
    node_handles: RwLock<Vec<Arc<Counter>>>,
    baselines: Mutex<Baselines>,
}

impl Default for WorkloadMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadMonitor {
    /// Empty monitor over a private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Monitor recording into a shared registry (its `esdb_monitor_*`
    /// series then appear in telemetry snapshots).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        let writes_total = registry.counter(WRITES, Labels::none());
        let storage_total = registry.counter(STORAGE, Labels::none());
        WorkloadMonitor {
            registry,
            writes_total,
            storage_total,
            tenant_handles: (0..TENANT_STRIPES)
                .map(|_| RwLock::new(fast_map()))
                .collect(),
            shard_handles: RwLock::new(Vec::new()),
            node_handles: RwLock::new(Vec::new()),
            baselines: Mutex::new(Baselines::default()),
        }
    }

    /// The registry the monitor records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records one write routed to `shard` on `node`, adding `bytes` to the
    /// tenant's storage. Safe to call concurrently from any thread; the
    /// steady state is six relaxed atomic adds behind read-locked handle
    /// caches.
    pub fn record_write(&self, tenant: TenantId, shard: ShardId, node: NodeId, bytes: u64) {
        self.record_tenant(tenant, bytes);
        Self::add_indexed(
            &self.shard_handles,
            &self.registry,
            SHARD_WRITES,
            Labels::shard,
            shard.0,
        );
        Self::add_indexed(
            &self.node_handles,
            &self.registry,
            NODE_WRITES,
            Labels::node,
            node.0,
        );
        self.writes_total.inc();
        self.storage_total.add(bytes);
    }

    /// Bumps the tenant's write + storage counters through the striped
    /// handle cache, probing the registry only on first sight.
    fn record_tenant(&self, tenant: TenantId, bytes: u64) {
        // splitmix-style finalizer so consecutive tenant ids land on
        // different stripes.
        let mut x = tenant.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        let stripe = &self.tenant_handles[(x as usize) & (TENANT_STRIPES - 1)];
        {
            let map = stripe.read().expect("tenant stripe poisoned");
            if let Some(h) = map.get(&tenant.0) {
                h.writes.inc();
                h.storage.add(bytes);
                return;
            }
        }
        // First sight of this tenant on this stripe: resolve the handles
        // outside the write lock (the registry is itself thread-safe and
        // dedups by name+labels, so racing resolvers get the same
        // counters).
        let writes = self
            .registry
            .counter(TENANT_WRITES, Labels::tenant(tenant.0));
        let storage = self
            .registry
            .counter(TENANT_STORAGE, Labels::tenant(tenant.0));
        let mut map = stripe.write().expect("tenant stripe poisoned");
        let h = map
            .entry(tenant.0)
            .or_insert(TenantHandles { writes, storage });
        h.writes.inc();
        h.storage.add(bytes);
    }

    /// Bumps a dense-id counter (shard/node) through `cache`, growing it
    /// under the write lock on first sight of a new id.
    fn add_indexed(
        cache: &RwLock<Vec<Arc<Counter>>>,
        registry: &MetricsRegistry,
        name: &'static str,
        labels: impl Fn(u32) -> Labels,
        idx: u32,
    ) {
        {
            let v = cache.read().expect("handle cache poisoned");
            if let Some(c) = v.get(idx as usize) {
                c.inc();
                return;
            }
        }
        let mut v = cache.write().expect("handle cache poisoned");
        while v.len() <= idx as usize {
            let next = v.len() as u32;
            v.push(registry.counter(name, labels(next)));
        }
        v[idx as usize].inc();
    }

    /// The running period's counters as deltas over `base`, without
    /// touching the baselines.
    fn period_since_base(&self, base: &Baselines) -> PeriodReport {
        let mut report = PeriodReport {
            total: self.writes_total.get() - base.total,
            ..PeriodReport::default()
        };
        for (labels, v) in self.registry.counters_with(TENANT_WRITES) {
            let tenant = TenantId(labels.tenant.expect("tenant-labeled series"));
            let delta = v - base.tenant.get(&tenant).copied().unwrap_or(0);
            if delta > 0 {
                report.per_tenant.insert(tenant, delta);
            }
        }
        for (labels, v) in self.registry.counters_with(SHARD_WRITES) {
            let shard = ShardId(labels.shard.expect("shard-labeled series"));
            let delta = v - base.shard.get(&shard).copied().unwrap_or(0);
            if delta > 0 {
                report.per_shard.insert(shard, delta);
            }
        }
        for (labels, v) in self.registry.counters_with(NODE_WRITES) {
            let node = NodeId(labels.node.expect("node-labeled series"));
            let delta = v - base.node.get(&node).copied().unwrap_or(0);
            if delta > 0 {
                report.per_node.insert(node, delta);
            }
        }
        report
    }

    /// Harvests the current period's counters, resetting the period for
    /// the next harvest (Algorithm 1 line 13: "collect periodic write
    /// throughput"). The underlying counters stay monotone; only the
    /// baselines move. Concurrent harvesters serialize on the baselines
    /// mutex; concurrent recorders are unaffected.
    pub fn take_period(&self) -> PeriodReport {
        let mut base = self.baselines.lock().expect("baselines poisoned");
        let report = self.period_since_base(&base);
        for (labels, v) in self.registry.counters_with(TENANT_WRITES) {
            base.tenant
                .insert(TenantId(labels.tenant.expect("tenant-labeled series")), v);
        }
        for (labels, v) in self.registry.counters_with(SHARD_WRITES) {
            base.shard
                .insert(ShardId(labels.shard.expect("shard-labeled series")), v);
        }
        for (labels, v) in self.registry.counters_with(NODE_WRITES) {
            base.node
                .insert(NodeId(labels.node.expect("node-labeled series")), v);
        }
        base.total = self.writes_total.get();
        report
    }

    /// Snapshot of the running period (deltas since the last harvest).
    pub fn current(&self) -> PeriodReport {
        let base = self.baselines.lock().expect("baselines poisoned");
        self.period_since_base(&base)
    }

    /// Storage proportion `r = S(k) / ΣS` (Algorithm 1 line 7).
    pub fn storage_proportion(&self, k: TenantId) -> f64 {
        let total = self.storage_total.get();
        if total == 0 {
            return 0.0;
        }
        self.registry
            .counter_value(TENANT_STORAGE, Labels::tenant(k.0)) as f64
            / total as f64
    }

    /// All tenants with recorded storage.
    pub fn storage_tenants(&self) -> impl Iterator<Item = (TenantId, u64)> + '_ {
        self.registry
            .counters_with(TENANT_STORAGE)
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .map(|(labels, v)| (TenantId(labels.tenant.expect("tenant-labeled series")), v))
    }

    /// Total storage bytes.
    pub fn storage_total(&self) -> u64 {
        self.storage_total.get()
    }

    /// Bulk-loads a storage snapshot (used to seed the initialization phase
    /// from an existing cluster's state).
    pub fn load_storage(&self, sizes: impl IntoIterator<Item = (TenantId, u64)>) {
        for (k, b) in sizes {
            self.registry.add(TENANT_STORAGE, Labels::tenant(k.0), b);
            self.storage_total.add(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_harvests_periods() {
        let m = WorkloadMonitor::new();
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 100);
        m.record_write(TenantId(1), ShardId(1), NodeId(0), 100);
        m.record_write(TenantId(2), ShardId(2), NodeId(1), 50);
        let p = m.take_period();
        assert_eq!(p.total, 3);
        assert_eq!(p.per_tenant[&TenantId(1)], 2);
        assert_eq!(p.per_node[&NodeId(0)], 2);
        assert!((p.tenant_proportion(TenantId(1)) - 2.0 / 3.0).abs() < 1e-12);
        // Period counters reset, storage persists.
        assert_eq!(m.current().total, 0);
        assert!((m.storage_proportion(TenantId(1)) - 200.0 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn top_tenants_ranked() {
        let m = WorkloadMonitor::new();
        for _ in 0..5 {
            m.record_write(TenantId(7), ShardId(0), NodeId(0), 1);
        }
        for _ in 0..2 {
            m.record_write(TenantId(8), ShardId(0), NodeId(0), 1);
        }
        m.record_write(TenantId(9), ShardId(0), NodeId(0), 1);
        let top = m.current().top_tenants(2);
        assert_eq!(top, vec![(TenantId(7), 5), (TenantId(8), 2)]);
    }

    #[test]
    fn empty_proportions_are_zero() {
        let m = WorkloadMonitor::new();
        assert_eq!(m.current().tenant_proportion(TenantId(1)), 0.0);
        assert_eq!(m.storage_proportion(TenantId(1)), 0.0);
    }

    #[test]
    fn load_storage_seeds_initialization() {
        let m = WorkloadMonitor::new();
        m.load_storage([(TenantId(1), 900), (TenantId(2), 100)]);
        assert!((m.storage_proportion(TenantId(1)) - 0.9).abs() < 1e-12);
        assert_eq!(m.storage_total(), 1000);
    }

    #[test]
    fn counters_stay_monotone_across_harvests() {
        let m = WorkloadMonitor::new();
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 10);
        assert_eq!(m.take_period().total, 1);
        m.record_write(TenantId(1), ShardId(0), NodeId(0), 10);
        m.record_write(TenantId(2), ShardId(1), NodeId(1), 10);
        let p = m.take_period();
        assert_eq!(p.total, 2, "second period sees only its own writes");
        assert_eq!(p.per_tenant[&TenantId(1)], 1);
        assert!(!p.per_shard.contains_key(&ShardId(2)));
        // The registry series kept counting from the start.
        assert_eq!(
            m.registry().counter_value(TENANT_WRITES, Labels::tenant(1)),
            2
        );
        assert_eq!(m.take_period().total, 0, "drained");
    }

    #[test]
    fn concurrent_recording_totals_match_sequential_sum() {
        let m = WorkloadMonitor::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.record_write(
                            TenantId(t % 3),
                            ShardId((i % 4) as u32),
                            NodeId((i % 2) as u32),
                            8,
                        );
                    }
                });
            }
        });
        let p = m.take_period();
        assert_eq!(p.total, 2000);
        assert_eq!(p.per_tenant.values().sum::<u64>(), 2000);
        assert_eq!(p.per_shard.values().sum::<u64>(), 2000);
        assert_eq!(p.per_node.values().sum::<u64>(), 2000);
        assert_eq!(m.storage_total(), 16_000);
        assert_eq!(m.current().total, 0, "harvest reset the period");
    }

    #[test]
    fn shared_registry_exposes_monitor_series() {
        let registry = Arc::new(MetricsRegistry::new());
        let m = WorkloadMonitor::with_registry(Arc::clone(&registry));
        m.record_write(TenantId(3), ShardId(1), NodeId(0), 64);
        assert_eq!(registry.counter_value(WRITES, Labels::none()), 1);
        assert_eq!(
            registry.counter_value(TENANT_STORAGE, Labels::tenant(3)),
            64
        );
    }
}
