//! `CheckHotSpot` and `ComputeOffsetSize` (paper Algorithm 1, lines 8/16/17).
//!
//! The paper leaves both as deployment-tuned functions; this module encodes
//! the policy the rest of the repo (and the figure harness) is calibrated
//! with:
//!
//! * a tenant is *hot* when its throughput proportion exceeds a multiple of
//!   the fair share `1/N_nodes` (a tenant confined to one shard saturates
//!   its node once it exceeds roughly one node's worth of the cluster),
//! * the offset dilutes the tenant back to fair share:
//!   `s ≈ r · N_shards · headroom`, rounded **up to a power of two** (§4.2)
//!   and clamped to `[1, max_offset]`.

/// Offset policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct OffsetPolicy {
    /// Total shards `N`.
    pub shard_count: u32,
    /// A tenant is a hotspot when `r > hot_factor / node_count`
    /// (`CheckHotSpot`).
    pub hot_factor: f64,
    /// Worker node count (sets the fair-share scale).
    pub node_count: u32,
    /// Dilution headroom: >1 spreads hot tenants slightly wider than fair
    /// share so a rule survives moderate growth without re-proposal.
    pub headroom: f64,
    /// Upper bound on `s` (≤ shard_count). With consecutive shards placed
    /// on consecutive nodes, a span of `2·n_nodes` already covers every
    /// node twice; wider spreads only add query fan-out (§4.1's trade-off,
    /// and Fig. 4 shows spans up to 16).
    pub max_offset: u32,
}

impl OffsetPolicy {
    /// Policy for an `n_shards`-shard, `n_nodes`-node cluster with the
    /// defaults used by the figure harness.
    pub fn new(n_shards: u32, n_nodes: u32) -> Self {
        assert!(n_shards > 0 && n_nodes > 0);
        OffsetPolicy {
            shard_count: n_shards,
            hot_factor: 0.1,
            node_count: n_nodes,
            headroom: 1.5,
            max_offset: (2 * n_nodes).max(8).min(n_shards),
        }
    }

    /// `CheckHotSpot(r)`: is a tenant with throughput/storage proportion
    /// `r` a hotspot?
    pub fn check_hotspot(&self, r: f64) -> bool {
        r > self.hot_factor / self.node_count as f64
    }

    /// `ComputeOffsetSize(r)`: the power-of-two offset for proportion `r`.
    pub fn compute_offset_size(&self, r: f64) -> u32 {
        if r.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 1;
        }
        let ideal = (r * self.shard_count as f64 * self.headroom).ceil();
        let ideal = ideal.clamp(1.0, self.max_offset as f64) as u32;
        ideal.next_power_of_two().min(self.max_offset.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn policy() -> OffsetPolicy {
        OffsetPolicy::new(512, 8)
    }

    #[test]
    fn hotspot_threshold_scales_with_nodes() {
        let p = policy();
        // Fair share per node is 1/8; hot_factor 0.1 → threshold 1/80.
        // (Calibrated against Fig. 13d: tenants above ~1% of traffic must
        // split for shard sizes to flatten the way the paper reports.)
        assert!(!p.check_hotspot(0.01));
        assert!(p.check_hotspot(0.02));
    }

    #[test]
    fn offsets_are_powers_of_two() {
        let p = policy();
        for r in [0.001, 0.01, 0.02, 0.05, 0.1, 0.3, 0.9] {
            let s = p.compute_offset_size(r);
            assert!(s.is_power_of_two(), "s={s} for r={r}");
            assert!(s >= 1 && s <= p.max_offset);
        }
    }

    #[test]
    fn offset_grows_with_proportion() {
        let p = policy();
        assert!(p.compute_offset_size(0.10) >= p.compute_offset_size(0.01));
        assert_eq!(p.compute_offset_size(0.0), 1);
        assert_eq!(p.compute_offset_size(-1.0), 1);
    }

    #[test]
    fn small_tenants_stay_on_one_shard() {
        // §4.1: "we set s = 1 for most of the tenants who have a small
        // storage proportion".
        let p = policy();
        assert_eq!(p.compute_offset_size(0.0005), 1);
    }

    #[test]
    fn default_max_offset_reasonable() {
        let p = OffsetPolicy::new(512, 8);
        assert_eq!(p.max_offset, 16);
        let tiny = OffsetPolicy::new(4, 2);
        assert_eq!(tiny.max_offset, 4, "max offset clamped to shard count");
    }

    proptest! {
        #[test]
        fn prop_offset_monotone_and_bounded(r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
            let p = policy();
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let s_lo = p.compute_offset_size(lo);
            let s_hi = p.compute_offset_size(hi);
            prop_assert!(s_lo <= s_hi);
            prop_assert!(s_hi <= p.max_offset);
            prop_assert!(s_lo >= 1);
        }
    }
}
