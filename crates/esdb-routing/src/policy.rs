//! The three routing policies compared throughout the paper's evaluation.

use crate::rules::RuleList;
use crate::span::ShardSpan;
use esdb_common::hash::{h1, h2};
use esdb_common::{RecordId, ShardId, TenantId, TimestampMs};
use esdb_telemetry::{Counter, Labels, MetricsRegistry};
use parking_lot::RwLock;
use std::sync::Arc;

/// Identifies a policy in reports and figure output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// `p = h1(k1) mod N` — the no-balancing baseline.
    Hashing,
    /// `p = (h1(k1) + h2(k2) mod s) mod N` with static `s`.
    DoubleHashing,
    /// Eq. 2 with the workload-adaptive `L(k1)`.
    DynamicSecondaryHashing,
}

impl PolicyKind {
    /// Human-readable name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Hashing => "Hashing",
            PolicyKind::DoubleHashing => "Double hashing",
            PolicyKind::DynamicSecondaryHashing => "Dynamic secondary hashing",
        }
    }
}

/// A routing policy: maps writes to shards and reads to shard spans.
pub trait RoutingPolicy: Send + Sync {
    /// Routes a write identified by `(k1, k2, tc)` to a shard.
    fn route_write(&self, k1: TenantId, k2: RecordId, tc: TimestampMs) -> ShardId;

    /// The consecutive shard span a read for tenant `k1` at time `now` must
    /// cover.
    fn read_span(&self, k1: TenantId, now: TimestampMs) -> ShardSpan;

    /// Which of the paper's policies this is.
    fn kind(&self) -> PolicyKind;

    /// Ring size.
    fn shard_count(&self) -> u32;
}

/// Base shard of tenant `k1` on a ring of `n` shards.
#[inline]
pub fn base_shard(k1: TenantId, n: u32) -> u32 {
    h1(k1.raw()) % n
}

/// The double-hashing placement of Eq. 1/2 given maximum offset `s`.
#[inline]
pub fn place(k1: TenantId, k2: RecordId, s: u32, n: u32) -> ShardId {
    let offset = if s <= 1 { 0 } else { h2(k2.raw()) % s };
    ShardId((base_shard(k1, n) + offset) % n)
}

/// Plain hashing (Fig. 2a).
#[derive(Debug, Clone)]
pub struct HashRouting {
    n: u32,
}

impl HashRouting {
    /// Routing over `n` shards.
    pub fn new(n: u32) -> Self {
        assert!(n > 0);
        HashRouting { n }
    }
}

impl RoutingPolicy for HashRouting {
    fn route_write(&self, k1: TenantId, _k2: RecordId, _tc: TimestampMs) -> ShardId {
        ShardId(base_shard(k1, self.n))
    }

    fn read_span(&self, k1: TenantId, _now: TimestampMs) -> ShardSpan {
        ShardSpan::new(base_shard(k1, self.n), 1, self.n)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Hashing
    }

    fn shard_count(&self) -> u32 {
        self.n
    }
}

/// Double hashing with a static maximum offset `s` (Fig. 2b). The paper's
/// evaluation uses `s = 8` ("distributes data of each tenant to 8 shards").
#[derive(Debug, Clone)]
pub struct DoubleHashRouting {
    n: u32,
    s: u32,
}

impl DoubleHashRouting {
    /// Routing over `n` shards with static offset `s` (clamped to `1..=n`).
    pub fn new(n: u32, s: u32) -> Self {
        assert!(n > 0);
        DoubleHashRouting {
            n,
            s: s.clamp(1, n),
        }
    }

    /// The static offset.
    pub fn s(&self) -> u32 {
        self.s
    }
}

impl RoutingPolicy for DoubleHashRouting {
    fn route_write(&self, k1: TenantId, k2: RecordId, _tc: TimestampMs) -> ShardId {
        place(k1, k2, self.s, self.n)
    }

    fn read_span(&self, k1: TenantId, _now: TimestampMs) -> ShardSpan {
        ShardSpan::new(base_shard(k1, self.n), self.s, self.n)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::DoubleHashing
    }

    fn shard_count(&self) -> u32 {
        self.n
    }
}

/// Telemetry handles for the dynamic router: how many writes stayed on
/// the tenant's base shard versus being spread by an active rule — the
/// most direct observable of how much secondary hashing is doing.
#[derive(Debug)]
struct RouteCounters {
    base: Arc<Counter>,
    spread: Arc<Counter>,
}

/// Dynamic secondary hashing (Fig. 2c): the offset is looked up in the
/// shared, consensus-replicated [`RuleList`].
#[derive(Clone)]
pub struct DynamicRouting {
    n: u32,
    rules: Arc<RwLock<RuleList>>,
    counters: Option<Arc<RouteCounters>>,
}

impl DynamicRouting {
    /// Routing over `n` shards with an initially-empty rule list.
    pub fn new(n: u32) -> Self {
        assert!(n > 0);
        DynamicRouting {
            n,
            rules: Arc::new(RwLock::new(RuleList::new())),
            counters: None,
        }
    }

    /// Routing over `n` shards sharing an existing rule list (e.g. the copy
    /// a coordinator maintains from committed consensus decisions).
    pub fn with_rules(n: u32, rules: Arc<RwLock<RuleList>>) -> Self {
        assert!(n > 0);
        DynamicRouting {
            n,
            rules,
            counters: None,
        }
    }

    /// Enables `esdb_routing_{base,spread}_writes_total` counters in
    /// `registry` (handles are cached; per-write cost is one atomic add).
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.counters = Some(Arc::new(RouteCounters {
            base: registry.counter("esdb_routing_base_writes_total", Labels::none()),
            spread: registry.counter("esdb_routing_spread_writes_total", Labels::none()),
        }));
        self
    }

    /// Shared handle to the rule list (the balancer writes through this).
    pub fn rules(&self) -> Arc<RwLock<RuleList>> {
        self.rules.clone()
    }

    /// The offset `L(k1)` a new write created at `tc` would use.
    pub fn offset_for_write(&self, k1: TenantId, tc: TimestampMs) -> u32 {
        self.rules.read().offset_for_write(k1, tc)
    }

    /// The rule-list mutation counter (see [`RuleList::version`]).
    pub fn rules_version(&self) -> u64 {
        self.rules.read().version()
    }

    /// Rule-version-aware span resolution: the tenant's read span plus
    /// the rule-list version it was computed under, read atomically under
    /// one lock hold. A query that observes a different version after its
    /// fan-out gathered knows it straddled a rule commit or a migration
    /// cutover and can re-resolve.
    ///
    /// The span itself is already the union of every historical placement
    /// (`offset_for_read` takes the max `s`, and same-base spans nest),
    /// so "old ∪ new" needs no second span — the version is what tells
    /// the caller the boundary moved under it.
    pub fn read_span_versioned(&self, k1: TenantId, now: TimestampMs) -> (ShardSpan, u64) {
        let rules = self.rules.read();
        let s = rules.offset_for_read(k1, now);
        (
            ShardSpan::new(base_shard(k1, self.n), s.min(self.n), self.n),
            rules.version(),
        )
    }
}

impl RoutingPolicy for DynamicRouting {
    fn route_write(&self, k1: TenantId, k2: RecordId, tc: TimestampMs) -> ShardId {
        let s = self.rules.read().offset_for_write(k1, tc);
        if let Some(c) = &self.counters {
            if s > 1 {
                c.spread.inc();
            } else {
                c.base.inc();
            }
        }
        place(k1, k2, s.min(self.n), self.n)
    }

    fn read_span(&self, k1: TenantId, now: TimestampMs) -> ShardSpan {
        let s = self.rules.read().offset_for_read(k1, now);
        ShardSpan::new(base_shard(k1, self.n), s.min(self.n), self.n)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::DynamicSecondaryHashing
    }

    fn shard_count(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hashing_is_stable_per_tenant() {
        let p = HashRouting::new(512);
        let a = p.route_write(TenantId(1), RecordId(1), 0);
        let b = p.route_write(TenantId(1), RecordId(999), 123);
        assert_eq!(a, b, "hashing ignores record id and time");
        assert_eq!(p.read_span(TenantId(1), 0).len, 1);
    }

    #[test]
    fn double_hashing_spreads_within_span() {
        let p = DoubleHashRouting::new(512, 8);
        let span = p.read_span(TenantId(42), 0);
        assert_eq!(span.len, 8);
        let mut seen = std::collections::HashSet::new();
        for k2 in 0..1000u64 {
            let s = p.route_write(TenantId(42), RecordId(k2), 0);
            assert!(span.contains(s), "write outside read span");
            seen.insert(s.0);
        }
        assert_eq!(seen.len(), 8, "1000 records should hit all 8 shards");
    }

    #[test]
    fn double_hashing_s1_equals_hashing() {
        let dh = DoubleHashRouting::new(64, 1);
        let h = HashRouting::new(64);
        for k in 0..100u64 {
            assert_eq!(
                dh.route_write(TenantId(k), RecordId(k * 7), 0),
                h.route_write(TenantId(k), RecordId(k * 7), 0)
            );
        }
    }

    #[test]
    fn telemetry_counts_base_vs_spread_routing() {
        let registry = MetricsRegistry::new();
        let p = DynamicRouting::new(64).with_telemetry(&registry);
        p.route_write(TenantId(9), RecordId(1), 100);
        p.rules().write().update(50, 8, TenantId(9));
        p.route_write(TenantId(9), RecordId(2), 100);
        p.route_write(TenantId(10), RecordId(3), 100);
        assert_eq!(
            registry.counter_value("esdb_routing_base_writes_total", Labels::none()),
            2
        );
        assert_eq!(
            registry.counter_value("esdb_routing_spread_writes_total", Labels::none()),
            1
        );
    }

    #[test]
    fn dynamic_grows_with_rules() {
        let p = DynamicRouting::new(64);
        assert_eq!(p.read_span(TenantId(9), 100).len, 1);
        p.rules().write().update(50, 8, TenantId(9));
        assert_eq!(p.read_span(TenantId(9), 100).len, 8);
        // Another tenant is unaffected.
        assert_eq!(p.read_span(TenantId(10), 100).len, 1);
    }

    #[test]
    fn dynamic_routes_old_records_with_old_rules() {
        let p = DynamicRouting::new(64);
        p.rules().write().update(100, 8, TenantId(3));
        // Record created before the rule must land on the base shard.
        let old = p.route_write(TenantId(3), RecordId(77), 90);
        assert_eq!(old.0, base_shard(TenantId(3), 64));
        // Records created after may spread.
        let span = p.read_span(TenantId(3), 200);
        let newer = p.route_write(TenantId(3), RecordId(78), 150);
        assert!(span.contains(newer));
    }

    #[test]
    fn offset_larger_than_ring_is_clamped() {
        let p = DynamicRouting::new(4);
        p.rules().write().update(0, 1024, TenantId(1));
        let span = p.read_span(TenantId(1), 10);
        assert_eq!(span.len, 4);
        let s = p.route_write(TenantId(1), RecordId(5), 10);
        assert!(span.contains(s));
    }

    proptest! {
        /// The fundamental safety property (read-your-writes, §4.2): any
        /// write routed at any time is inside the read span computed at any
        /// later time, for any sequence of committed rules.
        #[test]
        fn prop_reads_cover_writes(
            n in 1u32..256,
            updates in proptest::collection::vec((0u64..500, 0u32..8), 0..12),
            k1 in 0u64..50,
            k2 in 0u64..10_000,
            tc in 0u64..600,
            delay in 0u64..300,
        ) {
            let p = DynamicRouting::new(n);
            {
                let rules = p.rules();
                let mut g = rules.write();
                for (t, se) in updates {
                    g.update(t, 1 << se, TenantId(k1));
                }
            }
            let shard = p.route_write(TenantId(k1), RecordId(k2), tc);
            let span = p.read_span(TenantId(k1), tc + delay);
            prop_assert!(span.contains(shard),
                "write shard {shard:?} outside read span {span:?}");
        }

        /// Same property for static double hashing (sanity baseline).
        #[test]
        fn prop_double_hashing_reads_cover_writes(
            n in 1u32..256, s in 1u32..16, k1 in 0u64..100, k2 in 0u64..10_000
        ) {
            let p = DoubleHashRouting::new(n, s);
            let shard = p.route_write(TenantId(k1), RecordId(k2), 0);
            prop_assert!(p.read_span(TenantId(k1), 0).contains(shard));
        }
    }
}
